#!/usr/bin/env bash
# Reproduce every table, figure, and extension experiment.
#
#   scripts/reproduce_all.sh            # paper scale (500 consumers, ~5 min)
#   SCALE="--consumers 100 --vectors 10" scripts/reproduce_all.sh   # quick pass
set -euo pipefail
cd "$(dirname "$0")/.."
SCALE="${SCALE:-}"
OUT="${OUT:-repro_outputs}"
mkdir -p "$OUT"

run() {
    local name="$1" ext="${2:-txt}"
    echo "=== $name ==="
    # shellcheck disable=SC2086
    cargo run --release -p fdeta-bench --bin "$name" -- $SCALE > "$OUT/$name.$ext"
    echo "    -> $OUT/$name.$ext"
}

cargo build --release -p fdeta-bench

run table1
run repro            # Tables II & III + headline improvements
run fig2 dot
run fig3 csv
run fig4 csv
run ablate_bins
run ablate_alpha
run ablate_train
run ttd
run class4b
run multi_victim
run pca_compare
run sim_campaign
run roc csv
run diagnose

echo "all outputs in $OUT/"
