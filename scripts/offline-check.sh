#!/usr/bin/env sh
# Type-check (and optionally test) the workspace without network access.
#
# The container that grows this repo has no route to the crates registry,
# so real dependencies cannot be downloaded. devstubs/ carries minimal
# API-compatible stand-ins for every external dependency; this script
# wires them in via [patch.crates-io] WITHOUT touching the committed
# manifests, so CI and normal developer builds still use the real crates.
#
# Usage:
#   scripts/offline-check.sh            # cargo check --workspace --all-targets
#   scripts/offline-check.sh test       # cargo test  --workspace (stub RNG!)
#   scripts/offline-check.sh <cargo-subcommand> [args...]
#
# NOTE: stub RNG streams differ from the real crates, so numeric results
# under `test` are not representative — treat failures as signal only for
# logic that does not depend on exact random draws.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

subcommand=${1:-check}
[ "$#" -gt 0 ] && shift

if [ "$subcommand" = "check" ] && [ "$#" -eq 0 ]; then
    set -- --workspace --all-targets
fi

exec cargo --config devstubs/patch.toml "$subcommand" --offline "$@"
