//! Offline stand-in for `proptest`: a functional-but-minimal property
//! testing harness. Strategies sample deterministically from a SplitMix64
//! stream; there is no shrinking and no persistence. Streams are NOT
//! compatible with the real crate — it exists so property tests
//! type-check and run offline. See `devstubs/README.md`.

pub mod test_runner {
    //! Test configuration and the deterministic RNG.

    /// Stand-in for `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic SplitMix64 stream used by the stub harness.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed RNG every stub property test uses.
        pub fn deterministic() -> Self {
            Self {
                state: 0x50C1_AB1E_CAFE_F00D,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// A uniform index in `0..n` (`n > 0`).
        pub fn index(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;

    /// Stand-in for `proptest::strategy::Strategy`: a sampleable value
    /// source. `Value` is the produced type, as in proptest 1.x.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `f` (resamples; gives up after 1000
        /// consecutive rejections).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }

        /// Derives a second strategy from each produced value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let value = self.inner.sample(rng);
                if (self.f)(&value) {
                    return value;
                }
            }
            panic!("prop_filter rejected 1000 consecutive samples: {}", self.reason)
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn sample(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A type-erased strategy (used by `prop_oneof!`).
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<T, S: Strategy<Value = T>> DynStrategy<T> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> T {
            self.sample(rng)
        }
    }

    /// Uniform choice among type-erased strategies (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
            let index = rng.index(self.0.len());
            self.0[index].sample(rng)
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty f64 strategy range");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Stand-in for `proptest::collection::SizeRange` (inclusive bounds).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// A strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Stand-in for `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.index(self.size.hi - self.size.lo + 1)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for a few primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical stub strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<A>(core::marker::PhantomData<A>);

    /// Stand-in for `proptest::arbitrary::any`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy(core::marker::PhantomData)
    }

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary_sample(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut TestRng) -> f64 {
            // Finite, moderately sized values; the real crate also emits
            // NaN/inf but the stub keeps logic tests meaningful.
            (rng.unit_f64() - 0.5) * 2e6
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod prelude {
    //! One-line import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Stand-in for `proptest::proptest!`: runs each property `cases` times
/// over the deterministic stub RNG.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__cfg.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                // Real proptest bodies may `return Ok(())` early; give them
                // a Result-returning scope like the real macro does.
                let __outcome: ::core::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                if let Err(__msg) = __outcome {
                    panic!("property case failed: {}", __msg);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Stand-in for `prop_assert!`: a plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Stand-in for `prop_assert_eq!`: a plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Stand-in for `prop_assert_ne!`: a plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Stand-in for `prop_oneof!`: uniform choice among the strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..9.0, n in 3usize..7, flag in any::<bool>()) {
            prop_assert!((1.5..9.0).contains(&x));
            prop_assert!((3..7).contains(&n));
            let _ = flag;
        }

        #[test]
        fn combinators_compose(v in crate::collection::vec(0u64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_and_flat_map_sample() {
        let strat = prop_oneof![Just(1u32), Just(2u32)]
            .prop_flat_map(|n| (Just(n), 0u32..10))
            .prop_map(|(n, m)| n * 100 + m)
            .prop_filter("any", |_| true);
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..32 {
            let v = strat.sample(&mut rng);
            assert!(v >= 100 && v < 300);
        }
    }
}
