//! Offline stand-in for `serde`: type-checks, does not serialise.
//!
//! Both traits are blanket-implemented for every type, so the derive
//! macros (re-exported from the stub `serde_derive`) expand to nothing
//! and `#[derive(Serialize, Deserialize)]` still compiles. See
//! `devstubs/README.md`.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub mod de {
    //! Deserialisation traits.

    pub use crate::Deserialize;

    /// Stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}

    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

pub mod ser {
    //! Serialisation traits.

    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
