//! Offline stand-in for the `rand` crate. Functional (deterministic
//! SplitMix64 streams) but NOT stream-compatible with upstream `rand`:
//! never assert exact drawn values in committed tests. Only reachable
//! through `devstubs/patch.toml`; see `devstubs/README.md`.

/// Core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that can be sampled from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete RNGs.

    /// Stand-in for `rand::rngs::StdRng`: SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers, mirroring `rand::seq`.

    use crate::RngCore;

    /// Stand-in for `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let index = (rng.next_u64() % self.len() as u64) as usize;
                self.get(index)
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
            assert_eq!(x, b.gen_range(0.25f64..0.75));
            let n = a.gen_range(3usize..9);
            assert!((3..9).contains(&n));
            assert_eq!(n, b.gen_range(3usize..9));
        }
    }
}
