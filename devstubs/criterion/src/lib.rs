//! Offline stand-in for `criterion`: runs each benchmark routine once
//! (no measurement, no reports) so benches type-check and smoke-run
//! offline. See `devstubs/README.md`.

pub use std::hint::black_box;

/// Stand-in for `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Runs the routine once.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        eprintln!("criterion stub: {id}");
        f(&mut Bencher);
        self
    }

    /// A named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("criterion stub group: {name}");
        BenchmarkGroup {
            _criterion: self,
        }
    }
}

/// Stand-in for `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Ignored (stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs the routine once.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        eprintln!("criterion stub:   {id}");
        f(&mut Bencher);
        self
    }

    /// Ignored (stub).
    pub fn finish(self) {}
}

/// Stand-in for `criterion::Bencher`.
pub struct Bencher;

impl Bencher {
    /// Runs the routine once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }

    /// Runs setup + routine once.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
    }

    /// Runs setup + routine once with a mutable input reference.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        black_box(routine(&mut input));
    }
}

/// Stand-in for `criterion::BatchSize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Stand-in for `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = { let _ = $config; $crate::Criterion::default() };
            $($target(&mut criterion);)+
        }
    };
}

/// Stand-in for `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
