//! Offline stand-in for `serde_derive`: the stub `serde` traits are
//! blanket-implemented, so both derives expand to nothing. Registering
//! `attributes(serde)` keeps field-level `#[serde(...)]` attributes
//! legal. See `devstubs/README.md`.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
