//! Offline stand-in for `serde_json`: type-checks only. `to_string`
//! returns an empty string and `from_str` always errors, so JSON
//! round-trip tests fail offline and pass in CI with the real crate.
//! See `devstubs/README.md`.

use std::fmt;

/// Stand-in for `serde_json::Error`.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub: no real serialisation offline")
    }
}

impl std::error::Error for Error {}

/// Stand-in result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Returns an empty string (stub).
pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Ok(String::new())
}

/// Returns an empty string (stub).
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Ok(String::new())
}

/// Returns an empty vector (stub).
pub fn to_vec<T: ?Sized + serde::Serialize>(_value: &T) -> Result<Vec<u8>> {
    Ok(Vec::new())
}

/// Always errors (stub).
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error)
}

/// Always errors (stub).
pub fn from_slice<'a, T: serde::Deserialize<'a>>(_v: &'a [u8]) -> Result<T> {
    Err(Error)
}
