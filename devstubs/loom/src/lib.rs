//! Offline resolution stand-in for `loom`. The real dependency is only
//! compiled under `RUSTFLAGS="--cfg loom"`, but cargo still resolves it
//! for every build; this empty crate satisfies that resolution offline.
//! Model-check runs require the real crate. See `devstubs/README.md`.
