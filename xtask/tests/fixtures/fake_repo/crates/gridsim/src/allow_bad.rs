// Fixture: malformed lint:allow annotations at known lines.

pub fn missing_reason(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(no-panic-in-lib)
}

// lint:allow(no-such-rule, reasons do not save a bad rule name)
pub fn unknown_rule() {}
