// Fixture: lossy-cast-in-datapath violations at known lines.

pub fn narrow(x: f64) -> f32 {
    x as f32
}

pub fn widen(x: u32) -> u64 {
    x as u64
}

pub fn allowed(x: f64) -> f32 {
    x as f32 // lint:allow(lossy-cast-in-datapath, fixture: display precision only)
}
