//! Transitive-scope fixture: `StreamScorer::ingest` is itself clean, but
//! it calls `accumulate`, whose name matches no hot-fn naming pattern —
//! only the call-graph closure flags its allocation.

pub struct StreamScorer {
    total: f64,
}

impl StreamScorer {
    pub fn ingest(&mut self, reading: f64) -> f64 {
        self.total += accumulate(reading);
        self.total
    }
}

fn accumulate(reading: f64) -> f64 {
    let staged: Vec<f64> = (0..4).map(|i| reading * i as f64).collect();
    staged.iter().fold(0.0, |a, b| a + b)
}
