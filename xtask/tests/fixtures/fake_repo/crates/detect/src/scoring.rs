//! Scoring-path fixture: hot-path allocations at known lines.

pub fn score_week(values: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(values.len());
    out.extend(values.iter().map(|v| v * 2.0));
    out
}

pub fn try_band_scores(values: &[f64]) -> Vec<f64> {
    values.iter().map(|v| v + 1.0).collect()
}

pub fn score_masked(len: usize) -> Vec<f64> {
    // lint:allow(vec-alloc-in-score-path, fixture: deliberate cold allocation)
    vec![0.0; len]
}

pub fn train_scratch() -> Vec<f64> {
    Vec::new()
}
