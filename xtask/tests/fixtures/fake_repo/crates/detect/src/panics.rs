// Fixture: no-panic-in-lib violations at known lines.

pub fn unwrap_site(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn expect_site(x: Option<u32>) -> u32 {
    x.expect("fixture")
}

pub fn panic_site() {
    panic!("fixture");
}

pub fn unreachable_site() {
    unreachable!()
}

pub fn allowed_site(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(no-panic-in-lib, fixture: validated by caller)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
