// Fixture: nan-unsafe-sort violations at known lines.

pub fn bad_sort(values: &mut [f64]) {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn bad_max(values: &[f64]) -> Option<&f64> {
    values
        .iter()
        .max_by(|a, b| a.partial_cmp(b).expect("finite"))
}

pub fn good_sort(values: &mut [f64]) {
    values.sort_by(|a, b| a.total_cmp(b));
}
