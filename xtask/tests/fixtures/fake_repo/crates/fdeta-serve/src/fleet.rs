//! Serving-tick fixture: determinism and panic hazards reachable from
//! `Fleet::drain_round` are reported with their full call chains.

use std::collections::HashMap;

pub struct Fleet {
    bins: [f64; 4],
}

impl Fleet {
    pub fn drain_round(&mut self, weights: &[(u32, f64)]) -> f64 {
        let staged: HashMap<u32, f64> = weights.iter().copied().collect();
        let total = staged.values().sum::<f64>();
        bin_of(&self.bins, total) + latest(total)
    }
}

fn bin_of(bins: &[f64; 4], total: f64) -> f64 {
    bins[(total % 4.0) as usize]
}

fn latest(total: f64) -> f64 {
    Some(total).unwrap()
}
