// Fixture: nondeterministic-iteration violations at known lines.
use std::collections::BTreeMap;
use std::collections::HashMap;

pub fn hash_order(monitors: &HashMap<u32, f64>) -> Vec<u32> {
    monitors.keys().copied().collect()
}

pub fn tree_order(monitors: &BTreeMap<u32, f64>) -> Vec<u32> {
    monitors.keys().copied().collect()
}
