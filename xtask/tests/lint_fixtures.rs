//! End-to-end lint tests over `tests/fixtures/fake_repo/` — a miniature
//! repo tree with violations at known lines. Asserts the exact
//! (rule, file, line) triples, `lint:allow` suppression, baseline
//! semantics, and the CLI's exit codes / JSON output.

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::baseline::Baseline;
use xtask::lints::{lint_file, LintConfig, Rule};
use xtask::run_lints;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("fake_repo")
}

fn fixture_findings() -> Vec<(Rule, String, usize)> {
    run_lints(&fixture_root(), &LintConfig::default())
        .expect("fixture walk")
        .into_iter()
        .map(|f| (f.rule, f.path, f.line))
        .collect()
}

#[test]
fn fixtures_report_exact_rule_file_line() {
    let expected: Vec<(Rule, &str, usize)> = vec![
        (
            Rule::NanUnsafeSort,
            "crates/attacks/src/nan_sort.rs",
            4, // sort_by(partial_cmp().unwrap())
        ),
        (
            Rule::NanUnsafeSort,
            "crates/attacks/src/nan_sort.rs",
            10, // max_by(partial_cmp().expect())
        ),
        (Rule::NoPanicInLib, "crates/detect/src/panics.rs", 4), // x.unwrap()
        (Rule::NoPanicInLib, "crates/detect/src/panics.rs", 8), // x.expect()
        (Rule::NoPanicInLib, "crates/detect/src/panics.rs", 12), // panic!
        (Rule::NoPanicInLib, "crates/detect/src/panics.rs", 16), // unreachable!
        (
            Rule::VecAllocInScorePath,
            "crates/detect/src/scoring.rs",
            4, // Vec::with_capacity in score_week
        ),
        (
            Rule::VecAllocInScorePath,
            "crates/detect/src/scoring.rs",
            10, // .collect() in try_band_scores
        ),
        (
            Rule::VecAllocInScorePath,
            "crates/detect/src/stream.rs",
            17, // .collect() in accumulate, reachable from StreamScorer::ingest
        ),
        (
            Rule::HashIterInHotPath,
            "crates/fdeta-serve/src/fleet.rs",
            12, // HashMap inside Fleet::drain_round
        ),
        (
            Rule::UnorderedFloatReduction,
            "crates/fdeta-serve/src/fleet.rs",
            13, // .values().sum() inside Fleet::drain_round
        ),
        (
            Rule::CastIndexInDatapath,
            "crates/fdeta-serve/src/fleet.rs",
            19, // bins[.. as usize] in bin_of, reachable from drain_round
        ),
        (
            Rule::NoPanicInLib,
            "crates/fdeta-serve/src/fleet.rs",
            23, // .unwrap() in latest (plain lib scope)
        ),
        (
            Rule::PanicInTickPath,
            "crates/fdeta-serve/src/fleet.rs",
            23, // same .unwrap(), reachable from the tick loop
        ),
        (
            Rule::NondeterministicIteration,
            "crates/fdeta/src/pipeline.rs",
            3, // use ... HashMap
        ),
        (
            Rule::NondeterministicIteration,
            "crates/fdeta/src/pipeline.rs",
            5, // &HashMap<u32, f64> param
        ),
        (Rule::NoPanicInLib, "crates/gridsim/src/allow_bad.rs", 4), // unsuppressed unwrap
        (
            Rule::LintAllowMissingReason,
            "crates/gridsim/src/allow_bad.rs",
            4,
        ),
        (
            Rule::LintAllowUnknownRule,
            "crates/gridsim/src/allow_bad.rs",
            7,
        ),
        (Rule::LossyCastInDatapath, "crates/tsdata/src/cast.rs", 4), // x as f32
    ];
    let expected: Vec<(Rule, String, usize)> = expected
        .into_iter()
        .map(|(r, p, l)| (r, p.to_owned(), l))
        .collect();
    assert_eq!(fixture_findings(), expected);
}

#[test]
fn lint_allow_with_reason_suppresses_fixture_sites() {
    let findings = fixture_findings();
    // panics.rs:20 and cast.rs:12 carry well-formed lint:allow annotations.
    assert!(!findings
        .iter()
        .any(|(_, p, l)| p.ends_with("panics.rs") && *l == 20));
    assert!(!findings
        .iter()
        .any(|(_, p, l)| p.ends_with("cast.rs") && *l == 12));
}

#[test]
fn test_modules_are_exempt_in_fixtures() {
    // panics.rs has an unwrap inside #[cfg(test)] mod tests (line 27).
    assert!(!fixture_findings()
        .iter()
        .any(|(_, p, l)| p.ends_with("panics.rs") && *l > 22));
}

#[test]
fn transitive_closure_flags_what_the_per_name_scan_misses() {
    let root = fixture_root();
    let path = "crates/detect/src/stream.rs";
    let source = std::fs::read_to_string(root.join(path)).expect("read stream fixture");
    // The single-file scan sees a clean file: `accumulate` matches no
    // hot-fn naming pattern, and `ingest` itself does not allocate.
    let old = lint_file(path, &source, &LintConfig::default());
    assert!(old.is_empty(), "per-name scan should be clean: {old:?}");
    // The workspace pass reaches `accumulate` through `StreamScorer::ingest`
    // and reports the allocation with the chain that proves hotness.
    let findings = run_lints(&root, &LintConfig::default()).expect("fixture walk");
    let f = findings
        .iter()
        .find(|f| f.path == path)
        .expect("transitive finding in stream.rs");
    assert_eq!(f.rule, Rule::VecAllocInScorePath);
    assert!(
        f.message
            .contains("(reachable via StreamScorer::ingest → accumulate)"),
        "chain missing: {}",
        f.message
    );
}

#[test]
fn tick_path_findings_carry_full_call_chains() {
    let findings = run_lints(&fixture_root(), &LintConfig::default()).expect("fixture walk");
    let fleet = "crates/fdeta-serve/src/fleet.rs";
    let panic = findings
        .iter()
        .find(|f| f.rule == Rule::PanicInTickPath && f.path == fleet)
        .expect("panic-in-tick-path finding");
    assert!(
        panic
            .message
            .contains("(reachable via Fleet::drain_round → latest)"),
        "chain missing: {}",
        panic.message
    );
    let cast = findings
        .iter()
        .find(|f| f.rule == Rule::CastIndexInDatapath && f.path == fleet)
        .expect("cast-index finding");
    assert!(
        cast.message
            .contains("(reachable via Fleet::drain_round → bin_of)"),
        "chain missing: {}",
        cast.message
    );
    // The seed fn's own findings carry no chain suffix: the fn is the chain.
    let hash = findings
        .iter()
        .find(|f| f.rule == Rule::HashIterInHotPath && f.path == fleet)
        .expect("hash-iter finding");
    assert!(
        !hash.message.contains("reachable via"),
        "seed fn should not cite a chain: {}",
        hash.message
    );
}

#[test]
fn baseline_roundtrip_over_fixtures() {
    let findings = run_lints(&fixture_root(), &LintConfig::default()).expect("fixture walk");
    let baseline = Baseline::from_findings(&findings);
    assert_eq!(baseline.total(), findings.len());
    // Everything baselined: clean.
    let cmp = baseline.compare(&findings);
    assert!(cmp.new.is_empty());
    assert!(cmp.stale.is_empty());
    // Re-parse of the rendered file is identity.
    let reparsed = Baseline::parse(&baseline.render()).expect("reparse");
    assert!(reparsed.compare(&findings).new.is_empty());
    // Dropping one finding marks its baseline slot stale, never new.
    let cmp = baseline.compare(&findings[1..]);
    assert!(cmp.new.is_empty());
    assert_eq!(cmp.stale.len(), 1);
}

fn xtask_cmd(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("spawn xtask binary")
}

#[test]
fn cli_exit_codes_and_json() {
    let root = fixture_root();
    let root_arg = root.to_str().expect("utf8 fixture path");

    // New violations with no baseline: exit 1.
    let out = xtask_cmd(&["lint", "--root", root_arg, "--no-baseline"]);
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("error[no-panic-in-lib]"));
    assert!(text.contains("crates/detect/src/panics.rs:4"));

    // JSON format: machine-readable findings with rule/path/line.
    let out = xtask_cmd(&[
        "lint",
        "--root",
        root_arg,
        "--no-baseline",
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8(out.stdout).expect("utf8");
    assert!(json.contains("\"rule\":\"nan-unsafe-sort\""));
    assert!(json.contains("\"path\":\"crates/attacks/src/nan_sort.rs\""));
    assert!(json.contains("\"line\":4"));
    assert!(json.contains("\"summary\":{\"total\":20,\"new\":20,\"baselined\":0,\"stale\":0}"));

    // Update the baseline, then lint against it: exit 0.
    let baseline_path =
        std::env::temp_dir().join(format!("xtask-fixture-baseline-{}.tsv", std::process::id()));
    let baseline_arg = baseline_path.to_str().expect("utf8 temp path");
    let out = xtask_cmd(&[
        "lint",
        "--root",
        root_arg,
        "--baseline",
        baseline_arg,
        "--update-baseline",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let out = xtask_cmd(&["lint", "--root", root_arg, "--baseline", baseline_arg]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("clean"));
    std::fs::remove_file(&baseline_path).ok();

    // Unknown flag: usage error, exit 2.
    let out = xtask_cmd(&["lint", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn lint_output_is_byte_deterministic() {
    let root = fixture_root();
    let root_arg = root.to_str().expect("utf8 fixture path");
    for format in ["text", "json"] {
        let a = xtask_cmd(&[
            "lint",
            "--root",
            root_arg,
            "--no-baseline",
            "--format",
            format,
        ]);
        let b = xtask_cmd(&[
            "lint",
            "--root",
            root_arg,
            "--no-baseline",
            "--format",
            format,
        ]);
        assert_eq!(a.status.code(), b.status.code(), "{format}");
        assert_eq!(a.stdout, b.stdout, "{format} output must be byte-stable");
    }
}
