//! A minimal Rust lexer — just enough structure for the repo lints.
//!
//! The full-fidelity route would be a `syn` AST visitor, but the lint
//! driver must build with **zero external dependencies** so it works on
//! offline runners. The lints only need token-level facts (identifier
//! chains like `.partial_cmp(..).unwrap()`, `#[cfg(test)]` block extents,
//! `as <ty>` casts), and a hand-rolled lexer provides those exactly, while
//! correctly skipping the places regexes get wrong: string literals, raw
//! strings, char-vs-lifetime ambiguity, and nested block comments.

/// What a token is, at the granularity the lints care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `as`, `mod`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `(`, `!`, ...).
    Punct(char),
    /// A string / char / byte literal (contents dropped).
    Literal,
    /// A numeric literal.
    Number,
    /// A lifetime (`'a`).
    Lifetime,
}

/// One token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// Whether this token is the given identifier.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
}

/// A comment found during lexing (kept for `lint:allow` parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// The comment text without the `//` / `/*` markers.
    pub text: String,
}

/// The lexer's output: the token stream plus every comment.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// All non-trivia tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Scans a cooked (escape-processing) string body starting just past the
/// opening quote; returns the index just past the closing quote. Keeps
/// `line` exact even when an escape skips a newline (`"a\` + newline
/// continuation) so tokens after multi-line strings keep true positions.
fn scan_cooked_string(chars: &[char], start: usize, line: &mut usize) -> usize {
    let n = chars.len();
    let mut i = start;
    while i < n {
        match chars[i] {
            '\\' => {
                // The escaped character may itself be a newline (string
                // continuation) — it still ends a source line.
                if let Some('\n') = chars.get(i + 1) {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    n
}

/// Lexes `source` into tokens and comments. Unknown bytes are skipped —
/// the lints prefer resilience over strictness (a file that fails real
/// compilation will be reported by `cargo build`, not by us).
pub fn lex(source: &str) -> LexOutput {
    let chars: Vec<char> = source.chars().collect();
    let mut out = LexOutput::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = chars.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_continue = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            // Line or block comment.
            '/' if i + 1 < n && (chars[i + 1] == '/' || chars[i + 1] == '*') => {
                if chars[i + 1] == '/' {
                    let start = i + 2;
                    let mut j = start;
                    while j < n && chars[j] != '\n' {
                        j += 1;
                    }
                    out.comments.push(Comment {
                        line,
                        text: chars[start..j].iter().collect(),
                    });
                    i = j;
                } else {
                    // Nested block comment.
                    let comment_line = line;
                    let start = i + 2;
                    let mut depth = 1usize;
                    let mut j = start;
                    while j < n && depth > 0 {
                        if chars[j] == '\n' {
                            line += 1;
                            j += 1;
                        } else if j + 1 < n && chars[j] == '/' && chars[j + 1] == '*' {
                            depth += 1;
                            j += 2;
                        } else if j + 1 < n && chars[j] == '*' && chars[j + 1] == '/' {
                            depth -= 1;
                            j += 2;
                        } else {
                            j += 1;
                        }
                    }
                    let end = j.saturating_sub(2).max(start);
                    out.comments.push(Comment {
                        line: comment_line,
                        text: chars[start..end].iter().collect(),
                    });
                    i = j;
                }
            }
            // Cooked string literal (b"..." routes here via the ident path).
            '"' => {
                let tok_line = line;
                i = scan_cooked_string(&chars, i + 1, &mut line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line: tok_line,
                });
            }
            // Char literal or lifetime.
            '\'' => {
                let tok_line = line;
                // Lifetime: 'ident NOT followed by a closing quote.
                if i + 1 < n && is_ident_start(chars[i + 1]) {
                    let mut j = i + 2;
                    while j < n && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    if j < n && chars[j] == '\'' {
                        // 'a' — a char literal.
                        out.tokens.push(Token {
                            kind: TokenKind::Literal,
                            line: tok_line,
                        });
                        i = j + 1;
                    } else {
                        out.tokens.push(Token {
                            kind: TokenKind::Lifetime,
                            line: tok_line,
                        });
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: scan to closing quote.
                    let mut j = i + 1;
                    while j < n {
                        match chars[j] {
                            '\\' => j += 2,
                            '\'' => {
                                j += 1;
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        line: tok_line,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let tok_line = line;
                let mut j = i + 1;
                while j < n && (is_ident_continue(chars[j])) {
                    j += 1;
                }
                // A single decimal point, but never the `..` range operator.
                if j < n && chars[j] == '.' && j + 1 < n && chars[j + 1].is_ascii_digit() {
                    j += 1;
                    while j < n && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    line: tok_line,
                });
                i = j;
            }
            c if is_ident_start(c) => {
                let tok_line = line;
                let mut j = i + 1;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                // Cooked byte / C strings: b"..", c".." — escapes apply, so
                // they must NOT take the raw-string scan below (a `\"`
                // inside would otherwise terminate the literal early).
                if (text == "b" || text == "c") && j < n && chars[j] == '"' {
                    i = scan_cooked_string(&chars, j + 1, &mut line);
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        line: tok_line,
                    });
                    continue;
                }
                // Raw string prefixes: r"..", r#".."#, br#".."#, cr#".."#.
                if (text == "r" || text == "br" || text == "cr")
                    && j < n
                    && (chars[j] == '"' || chars[j] == '#')
                {
                    // Count hashes, then scan to the matching close.
                    let mut hashes = 0usize;
                    let mut k = j;
                    while k < n && chars[k] == '#' {
                        hashes += 1;
                        k += 1;
                    }
                    if k < n && chars[k] == '"' {
                        k += 1;
                        'scan: while k < n {
                            if chars[k] == '\n' {
                                line += 1;
                                k += 1;
                            } else if chars[k] == '"' {
                                let mut h = 0usize;
                                while k + 1 + h < n && h < hashes && chars[k + 1 + h] == '#' {
                                    h += 1;
                                }
                                if h == hashes {
                                    k += 1 + hashes;
                                    break 'scan;
                                }
                                k += 1;
                            } else {
                                k += 1;
                            }
                        }
                        out.tokens.push(Token {
                            kind: TokenKind::Literal,
                            line: tok_line,
                        });
                        i = k;
                        continue;
                    }
                    // `r#ident` raw identifier: fall through as ident.
                    if hashes == 1 && k < n && is_ident_start(chars[k]) {
                        let mut m = k + 1;
                        while m < n && is_ident_continue(chars[m]) {
                            m += 1;
                        }
                        out.tokens.push(Token {
                            kind: TokenKind::Ident(chars[k..m].iter().collect()),
                            line: tok_line,
                        });
                        i = m;
                        continue;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    line: tok_line,
                });
                i = j;
            }
            other => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct(other),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn identifiers_and_punct() {
        let out = lex("x.unwrap()");
        assert_eq!(out.tokens.len(), 5);
        assert!(out.tokens[0].is_ident("x"));
        assert!(out.tokens[1].is_punct('.'));
        assert!(out.tokens[2].is_ident("unwrap"));
        assert!(out.tokens[3].is_punct('('));
        assert!(out.tokens[4].is_punct(')'));
    }

    #[test]
    fn strings_hide_their_contents() {
        let out = lex(r#"let s = "a.unwrap() // not a comment";"#);
        assert_eq!(idents(r#"let s = "x.unwrap()";"#), vec!["let", "s"]);
        assert!(out.comments.is_empty());
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"quote " inside"#; y.unwrap()"##;
        let ids = idents(src);
        assert!(ids.contains(&"unwrap".to_owned()));
        assert!(!ids.contains(&"quote".to_owned()));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let out = lex("fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\''; }");
        let lifetimes = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
        let literals = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(literals, 2);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let out = lex("let a = 1;\n// lint:allow(rule, why)\nlet b = 2; /* block */");
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].line, 2);
        assert!(out.comments[0].text.contains("lint:allow"));
        assert_eq!(out.comments[1].line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* outer /* inner */ still comment */ x");
        assert_eq!(out.tokens.len(), 1);
        assert!(out.tokens[0].is_ident("x"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let out = lex("for i in 0..n { let f = 1.5e3; }");
        let dots = out.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "0..n keeps both range dots");
        let numbers = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .count();
        assert_eq!(numbers, 2);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let out = lex("let s = \"line1\nline2\";\nx.unwrap()");
        let unwrap = out.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 3);
    }

    #[test]
    fn byte_strings_process_escapes() {
        // Regression: `b"..."` is a *cooked* literal — a `\"` inside must
        // not terminate it (the raw-string scan used to swallow the rest
        // of the line into code position).
        let src = r#"let b = b"quote \" inside"; x.unwrap()"#;
        let ids = idents(src);
        assert!(ids.contains(&"unwrap".to_owned()), "{ids:?}");
        assert!(!ids.contains(&"inside".to_owned()), "{ids:?}");
    }

    #[test]
    fn string_continuation_keeps_line_numbers() {
        // Regression: the `\` + newline continuation escape used to skip
        // the newline without counting the line.
        let out = lex("let s = \"a\\\nb\";\nx.unwrap()");
        let unwrap = out.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 3);
    }

    #[test]
    fn raw_strings_with_many_hashes_and_partial_closers() {
        // `"#` inside an `r##` string is content, not a terminator.
        let src = "let s = r##\"has \"# inside\"##;\ny.unwrap()";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap".to_owned()), "{ids:?}");
        assert!(!ids.contains(&"inside".to_owned()), "{ids:?}");
        let out = lex(src);
        let unwrap = out.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 2);
    }

    #[test]
    fn multiline_raw_strings_keep_line_numbers() {
        let out = lex("let s = r#\"l1\nl2\nl3\"#;\nx.unwrap()");
        let unwrap = out.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 4);
    }

    #[test]
    fn nested_block_comments_keep_line_numbers_and_resume_code() {
        let out = lex("/* l1\n /* l3? no: l2 */\n still comment */ x.unwrap()");
        let unwrap = out.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!(unwrap.line, 3);
        assert_eq!(out.comments.len(), 1);
    }

    #[test]
    fn unterminated_nested_comment_is_resilient() {
        // A file that fails to close an inner comment must not panic or
        // loop; everything to EOF is comment.
        let out = lex("/* outer /* inner */ x");
        assert!(out.tokens.is_empty());
        assert_eq!(out.comments.len(), 1);
    }

    #[test]
    fn lifetime_and_char_torture() {
        let src = "fn f<'a>(x: &'a str) -> char { let t = ('a', 'b'); \
                   let q = '\\''; let l: &'static str = \"s\"; \
                   'outer: loop { break 'outer; } 'x' }";
        let out = lex(src);
        let lifetimes = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        // 'a (decl), 'a (ref), 'static, 'outer (label), 'outer (break).
        assert_eq!(lifetimes, 5);
        let literals = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        // 'a' 'b' '\'' "s" 'x' = 5 literals.
        assert_eq!(literals, 5);
    }
}
