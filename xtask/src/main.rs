//! `cargo xtask` — repo-local task runner. Currently one task: `lint`.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use xtask::baseline::Baseline;
use xtask::lints::{LintConfig, Rule};
use xtask::{build_graph, find_repo_root, report, run_lints};

const USAGE: &str = "\
usage: cargo xtask lint [OPTIONS]

Enforce workspace invariants (panic-freedom, NaN-safe ordering,
deterministic iteration, lossless datapath casts) over crates/*/src.
Hot-path rules are transitive over the workspace call graph.

options:
  --format <text|json>   output format (default: text)
  --baseline <FILE>      baseline file (default: <repo>/lint-baseline.tsv)
  --no-baseline          report every finding; any finding fails
  --update-baseline      rewrite the baseline from current findings
  --explain <rule|all>   print what a rule checks and why, then exit
  --graph <fn>           print the call-graph closure of <fn> (suffix
                         spec, e.g. StreamScorer::ingest), then exit
  --root <DIR>           repo root (default: discovered from cwd)
  -h, --help             show this help

exit status: 0 clean (vs baseline), 1 new violations, 2 usage/io error";

struct Options {
    format: Format,
    baseline_path: Option<PathBuf>,
    use_baseline: bool,
    update_baseline: bool,
    explain: Option<String>,
    graph: Option<String>,
    root: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Text,
        baseline_path: None,
        use_baseline: true,
        update_baseline: false,
        explain: None,
        graph: None,
        root: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => {
                opts.format = match iter.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => return Err(format!("--format expects text|json, got {other:?}")),
                }
            }
            "--baseline" => {
                let path = iter.next().ok_or("--baseline expects a path")?;
                opts.baseline_path = Some(PathBuf::from(path));
            }
            "--no-baseline" => opts.use_baseline = false,
            "--update-baseline" => opts.update_baseline = true,
            "--explain" => {
                let rule = iter
                    .next()
                    .ok_or("--explain expects a rule name (or `all`)")?;
                opts.explain = Some(rule.clone());
            }
            "--graph" => {
                let spec = iter
                    .next()
                    .ok_or("--graph expects a fn spec, e.g. StreamScorer::ingest")?;
                opts.graph = Some(spec.clone());
            }
            "--root" => {
                let path = iter.next().ok_or("--root expects a directory")?;
                opts.root = Some(PathBuf::from(path));
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn run_lint(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if let Some(spec) = &opts.explain {
        return explain_rules(spec);
    }

    let root = match opts
        .root
        .or_else(|| env::current_dir().ok().and_then(|cwd| find_repo_root(&cwd)))
    {
        Some(root) => root,
        None => {
            eprintln!("error: could not find the repo root (Cargo.toml + crates/); use --root");
            return ExitCode::from(2);
        }
    };

    let config = LintConfig::default();

    if let Some(spec) = &opts.graph {
        return print_graph(&root, &config, spec);
    }
    let findings = match run_lints(&root, &config) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("error: lint walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline_path
        .unwrap_or_else(|| root.join("lint-baseline.tsv"));

    if opts.update_baseline {
        let baseline = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(&baseline_path, baseline.render()) {
            eprintln!("error: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "lint: baseline updated — {} violation(s) recorded in {}",
            baseline.total(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.use_baseline {
        match Baseline::load(&baseline_path) {
            Ok(Ok(baseline)) => baseline,
            Ok(Err(parse)) => {
                eprintln!("error: {}: {parse}", baseline_path.display());
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!("error: reading {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let comparison = baseline.compare(&findings);
    let output = match opts.format {
        Format::Json => report::render_json(&findings, &comparison, baseline.total()),
        Format::Text => report::render_text(&findings, &comparison, baseline.total()),
    };
    print!("{output}");

    if comparison.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Prints the long-form documentation for one rule, or for every rule
/// when `spec` is `all`.
fn explain_rules(spec: &str) -> ExitCode {
    if spec == "all" {
        for (i, rule) in Rule::all().iter().enumerate() {
            if i > 0 {
                println!();
            }
            println!("## {}\n\n{}", rule.name(), rule.explain());
        }
        return ExitCode::SUCCESS;
    }
    match Rule::from_name(spec) {
        Some(rule) => {
            println!("## {}\n\n{}", rule.name(), rule.explain());
            ExitCode::SUCCESS
        }
        None => {
            let known: Vec<&str> = Rule::all().iter().map(|r| r.name()).collect();
            eprintln!(
                "error: no rule named `{spec}`; known rules: {}",
                known.join(", ")
            );
            ExitCode::from(2)
        }
    }
}

/// Prints the transitive closure of `spec` over the workspace call
/// graph: every reachable fn with its location and one shortest chain.
fn print_graph(root: &std::path::Path, config: &LintConfig, spec: &str) -> ExitCode {
    let graph = match build_graph(root, config) {
        Ok(graph) => graph,
        Err(e) => {
            eprintln!("error: building call graph: {e}");
            return ExitCode::from(2);
        }
    };
    let reach = graph.reach(&[spec.to_owned()]);
    if reach.members.is_empty() {
        eprintln!(
            "error: `{spec}` matches no fn in the workspace \
             (specs are qualified-name suffixes, e.g. StreamScorer::ingest)"
        );
        return ExitCode::from(2);
    }
    println!("{} fn(s) reachable from `{spec}`:", reach.members.len());
    for &i in &reach.members {
        let node = &graph.nodes[i];
        println!(
            "  {}  [{}:{}]  via {}",
            node.key(),
            node.path,
            node.line,
            reach.chain(&graph, i).join(" → ")
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("-h") | Some("--help") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown task `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
