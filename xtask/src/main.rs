//! `cargo xtask` — repo-local task runner. Currently one task: `lint`.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use xtask::baseline::Baseline;
use xtask::lints::LintConfig;
use xtask::{find_repo_root, report, run_lints};

const USAGE: &str = "\
usage: cargo xtask lint [OPTIONS]

Enforce workspace invariants (panic-freedom, NaN-safe ordering,
deterministic iteration, lossless datapath casts) over crates/*/src.

options:
  --format <text|json>   output format (default: text)
  --baseline <FILE>      baseline file (default: <repo>/lint-baseline.tsv)
  --no-baseline          report every finding; any finding fails
  --update-baseline      rewrite the baseline from current findings
  --root <DIR>           repo root (default: discovered from cwd)
  -h, --help             show this help

exit status: 0 clean (vs baseline), 1 new violations, 2 usage/io error";

struct Options {
    format: Format,
    baseline_path: Option<PathBuf>,
    use_baseline: bool,
    update_baseline: bool,
    root: Option<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Text,
        baseline_path: None,
        use_baseline: true,
        update_baseline: false,
        root: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--format" => {
                opts.format = match iter.next().map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => return Err(format!("--format expects text|json, got {other:?}")),
                }
            }
            "--baseline" => {
                let path = iter.next().ok_or("--baseline expects a path")?;
                opts.baseline_path = Some(PathBuf::from(path));
            }
            "--no-baseline" => opts.use_baseline = false,
            "--update-baseline" => opts.update_baseline = true,
            "--root" => {
                let path = iter.next().ok_or("--root expects a directory")?;
                opts.root = Some(PathBuf::from(path));
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn run_lint(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = match opts
        .root
        .or_else(|| env::current_dir().ok().and_then(|cwd| find_repo_root(&cwd)))
    {
        Some(root) => root,
        None => {
            eprintln!("error: could not find the repo root (Cargo.toml + crates/); use --root");
            return ExitCode::from(2);
        }
    };

    let config = LintConfig::default();
    let findings = match run_lints(&root, &config) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("error: lint walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline_path
        .unwrap_or_else(|| root.join("lint-baseline.tsv"));

    if opts.update_baseline {
        let baseline = Baseline::from_findings(&findings);
        if let Err(e) = std::fs::write(&baseline_path, baseline.render()) {
            eprintln!("error: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "lint: baseline updated — {} violation(s) recorded in {}",
            baseline.total(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if opts.use_baseline {
        match Baseline::load(&baseline_path) {
            Ok(Ok(baseline)) => baseline,
            Ok(Err(parse)) => {
                eprintln!("error: {}: {parse}", baseline_path.display());
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!("error: reading {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Baseline::default()
    };

    let comparison = baseline.compare(&findings);
    let output = match opts.format {
        Format::Json => report::render_json(&findings, &comparison, baseline.total()),
        Format::Text => report::render_text(&findings, &comparison, baseline.total()),
    };
    print!("{output}");

    if comparison.new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("-h") | Some("--help") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown task `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
