//! The repo's invariant lints.
//!
//! Each lint is a named, configurable rule over the token stream of one
//! source file. The rules encode invariants PR 1 made load-bearing:
//!
//! * [`Rule::NoPanicInLib`] — library code paths must not contain
//!   `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`;
//!   fleet-scale evaluation surfaces failures as typed errors, and a panic
//!   mid-fleet is exactly the "robust deployment" failure the framework is
//!   meant to prevent. Escape hatch: `// lint:allow(no-panic-in-lib,
//!   <reason>)` on the same line or the line above — the reason is
//!   mandatory.
//! * [`Rule::NanUnsafeSort`] — `partial_cmp(..).unwrap()` inside a
//!   `sort_by`/`max_by`/`min_by` comparator panics on NaN and, worse,
//!   *silently reorders* under `sort_unstable_by` implementations that
//!   tolerate inconsistent comparators. Detector verdicts must not depend
//!   on NaN luck: use `f64::total_cmp`.
//! * [`Rule::NondeterministicIteration`] — `HashMap`/`HashSet` in files
//!   that feed serialized or ordered output (reports, persisted pipelines,
//!   engine results). Iteration order varies per process *and* per map, so
//!   byte-identical JSON — PR 1's determinism contract — silently breaks.
//! * [`Rule::LossyCastInDatapath`] — truncating `as` casts to narrow
//!   numeric types in the reading datapath (`tsdata`, `detect`) can drop
//!   precision on meter readings and scores.
//! * [`Rule::VecAllocInScorePath`] — heap allocation (`Vec::new`,
//!   `Vec::with_capacity`, `vec!`, `.collect()`) inside a detector scoring
//!   function. The scoring hot path is allocation-free by design (reused
//!   [`HistScratch`] buffers); a fleet loop scores hundreds of thousands of
//!   weeks, so one stray allocation per score undoes the whole perf
//!   architecture. Escape hatch: `// lint:allow(vec-alloc-in-score-path,
//!   <reason>)` for cold, deliberate allocations (e.g. building the result
//!   vector of a non-hot convenience wrapper).
//! * [`Rule::VecAllocInFitPath`] — heap allocation inside an ARIMA
//!   fitting-path function (`crates/arima/src/{fit,linalg,select}.rs`).
//!   Training fits a full `(p, q)` grid per consumer; the hot path
//!   threads a `FitScratch`/`LsScratch` through every fit, so a stray
//!   allocation per candidate multiplies across the fleet. Stricter than
//!   the scoring rule: `.to_vec()` counts too, because the fit path's
//!   scratch discipline is exactly about not cloning slices per
//!   candidate. Escape hatch: `// lint:allow(vec-alloc-in-fit-path,
//!   <reason>)` for allocations that are part of a result's ownership
//!   contract or provably never touch the heap.

use std::collections::BTreeMap;
use std::fmt;

use crate::lexer::{lex, Comment, Token, TokenKind};

/// A named lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Panicking constructs in library code.
    NoPanicInLib,
    /// NaN-unsafe comparator in a sort/min/max context.
    NanUnsafeSort,
    /// Hash-order iteration feeding ordered output.
    NondeterministicIteration,
    /// Truncating numeric cast in the reading datapath.
    LossyCastInDatapath,
    /// Heap allocation inside a detector scoring hot path.
    VecAllocInScorePath,
    /// Heap allocation inside an ARIMA fitting hot path.
    VecAllocInFitPath,
    /// `HashMap`/`HashSet` inside a function reachable from a hot entry.
    HashIterInHotPath,
    /// Float reduction over unordered (hash-map) iteration in a hot fn.
    UnorderedFloatReduction,
    /// An `as` cast used directly as a slice index in the datapath.
    CastIndexInDatapath,
    /// A panicking construct reachable from the serving tick loop.
    PanicInTickPath,
    /// A `lint:allow` annotation without a reason.
    LintAllowMissingReason,
    /// A `lint:allow` annotation naming no known rule.
    LintAllowUnknownRule,
}

impl Rule {
    /// The rule's kebab-case name (used in output and `lint:allow`).
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanicInLib => "no-panic-in-lib",
            Rule::NanUnsafeSort => "nan-unsafe-sort",
            Rule::NondeterministicIteration => "nondeterministic-iteration",
            Rule::LossyCastInDatapath => "lossy-cast-in-datapath",
            Rule::VecAllocInScorePath => "vec-alloc-in-score-path",
            Rule::VecAllocInFitPath => "vec-alloc-in-fit-path",
            Rule::HashIterInHotPath => "hash-iter-in-hot-path",
            Rule::UnorderedFloatReduction => "unordered-float-reduction",
            Rule::CastIndexInDatapath => "cast-index-in-datapath",
            Rule::PanicInTickPath => "panic-in-tick-path",
            Rule::LintAllowMissingReason => "lint-allow-missing-reason",
            Rule::LintAllowUnknownRule => "lint-allow-unknown-rule",
        }
    }

    /// Every rule, in output order.
    pub fn all() -> &'static [Rule] {
        &[
            Rule::NoPanicInLib,
            Rule::NanUnsafeSort,
            Rule::NondeterministicIteration,
            Rule::LossyCastInDatapath,
            Rule::VecAllocInScorePath,
            Rule::VecAllocInFitPath,
            Rule::HashIterInHotPath,
            Rule::UnorderedFloatReduction,
            Rule::CastIndexInDatapath,
            Rule::PanicInTickPath,
            Rule::LintAllowMissingReason,
            Rule::LintAllowUnknownRule,
        ]
    }

    /// Parses a rule name as written in a `lint:allow`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "no-panic-in-lib" => Some(Rule::NoPanicInLib),
            "nan-unsafe-sort" => Some(Rule::NanUnsafeSort),
            "nondeterministic-iteration" => Some(Rule::NondeterministicIteration),
            "lossy-cast-in-datapath" => Some(Rule::LossyCastInDatapath),
            "vec-alloc-in-score-path" => Some(Rule::VecAllocInScorePath),
            "vec-alloc-in-fit-path" => Some(Rule::VecAllocInFitPath),
            "hash-iter-in-hot-path" => Some(Rule::HashIterInHotPath),
            "unordered-float-reduction" => Some(Rule::UnorderedFloatReduction),
            "cast-index-in-datapath" => Some(Rule::CastIndexInDatapath),
            "panic-in-tick-path" => Some(Rule::PanicInTickPath),
            "lint-allow-missing-reason" => Some(Rule::LintAllowMissingReason),
            "lint-allow-unknown-rule" => Some(Rule::LintAllowUnknownRule),
            _ => None,
        }
    }

    /// A one-line help string rendered under each finding.
    pub fn help(self) -> &'static str {
        match self {
            Rule::NoPanicInLib => {
                "return a typed error (TrainError/EvalError/GridError/TsError) or add \
                 `// lint:allow(no-panic-in-lib, <reason>)` if provably unreachable"
            }
            Rule::NanUnsafeSort => "use f64::total_cmp for a total, NaN-safe ordering",
            Rule::NondeterministicIteration => {
                "use BTreeMap/BTreeSet, or collect and sort keys before iterating"
            }
            Rule::LossyCastInDatapath => {
                "widen the type, or annotate with `// lint:allow(lossy-cast-in-datapath, <reason>)`"
            }
            Rule::VecAllocInScorePath => {
                "reuse a HistScratch / out-buffer instead, or annotate a cold allocation with \
                 `// lint:allow(vec-alloc-in-score-path, <reason>)`"
            }
            Rule::VecAllocInFitPath => {
                "thread a FitScratch/LsScratch buffer instead, or annotate a deliberate \
                 allocation with `// lint:allow(vec-alloc-in-fit-path, <reason>)`"
            }
            Rule::HashIterInHotPath => {
                "use BTreeMap/BTreeSet so fanned-out hot-path results stay deterministic"
            }
            Rule::UnorderedFloatReduction => {
                "iterate a BTreeMap (or sort keys first) so the float summation order is fixed"
            }
            Rule::CastIndexInDatapath => {
                "bound-check the cast (clamp/try_into) before indexing, or annotate with \
                 `// lint:allow(cast-index-in-datapath, <reason>)`"
            }
            Rule::PanicInTickPath => {
                "return a typed error so the serving daemon degrades instead of dying, or \
                 annotate with `// lint:allow(panic-in-tick-path, <reason>)`"
            }
            Rule::LintAllowMissingReason => {
                "write `// lint:allow(<rule>, <reason>)` — the reason is mandatory"
            }
            Rule::LintAllowUnknownRule => "the rule name must match a lint exactly",
        }
    }

    /// The long-form rule documentation printed by `cargo xtask lint
    /// --explain <rule>`: what the rule matches, where it applies, and why
    /// the invariant is load-bearing.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::NoPanicInLib => {
                "Flags `.unwrap()`, `.expect(..)`, and the panic macro family (`panic!`, \
                 `unreachable!`, `todo!`, `unimplemented!`) anywhere in library crate code.\n\
                 \n\
                 Fleet-scale evaluation surfaces failures as typed errors \
                 (TrainError/EvalError/GridError/TsError); a panic mid-fleet is exactly the \
                 robust-deployment failure the framework exists to prevent. Test code \
                 (`#[cfg(test)]` extents) is exempt. Suppress a provably unreachable site with \
                 `// lint:allow(no-panic-in-lib, <reason>)` on the same line or the line above."
            }
            Rule::NanUnsafeSort => {
                "Flags `.partial_cmp(..).unwrap()` / `.expect(..)` inside a \
                 sort/min/max/binary-search comparator.\n\
                 \n\
                 NaN input panics mid-sort, and `sort_unstable_by` implementations that \
                 tolerate inconsistent comparators silently reorder instead — detector \
                 verdicts must not depend on NaN luck. Use `f64::total_cmp`."
            }
            Rule::NondeterministicIteration => {
                "Flags `HashMap`/`HashSet` in the files that feed serialized or ordered \
                 output (reports, persisted pipelines, engine results).\n\
                 \n\
                 Hash iteration order varies per process and per map, so byte-identical \
                 JSON — the determinism contract every CI diff gate relies on — silently \
                 breaks. Use BTreeMap/BTreeSet, or collect and sort keys before iterating."
            }
            Rule::LossyCastInDatapath => {
                "Flags truncating `as` casts to narrow numeric types (u8/i8/u16/i16/u32/\
                 i32/f32) in the reading datapath (`tsdata`, `detect`).\n\
                 \n\
                 Meter readings and scores are f64 end to end; a narrowing cast drops \
                 precision silently. Widen the type, or annotate a provably-safe cast with \
                 `// lint:allow(lossy-cast-in-datapath, <reason>)`."
            }
            Rule::VecAllocInScorePath => {
                "Flags heap allocation (`Vec::new`, `Vec::with_capacity`, `vec!`, \
                 `.collect()`) inside the detector scoring hot path.\n\
                 \n\
                 A function is on the scoring path if its name marks it so (`score*`, \
                 `*band_scores*`, `ingest*`, `close_window`, `kld_score*` under \
                 `crates/detect/src`) OR if the workspace call graph proves it reachable \
                 from a scoring seed (`StreamScorer::ingest`, `StreamScorer::close_window`, \
                 `KldDetector::score`) — transitive findings carry the full call chain. \
                 The hot path is allocation-free by design (reused HistScratch buffers); a \
                 fleet loop scores hundreds of thousands of weeks, so one stray allocation \
                 per score undoes the perf architecture. Suppress a cold, deliberate \
                 allocation with `// lint:allow(vec-alloc-in-score-path, <reason>)`."
            }
            Rule::VecAllocInFitPath => {
                "Flags heap allocation (including `.to_vec()`) inside the ARIMA fitting \
                 hot path.\n\
                 \n\
                 A function is on the fitting path if its name marks it so (`fit*`, \
                 `hannan_rissanen*`, `select_order*`, `conditional_sigma2*`, `solve*`, \
                 `least_squares*` in `crates/arima/src/{fit,linalg,select}.rs`) OR if the \
                 call graph proves it reachable from the `hannan_rissanen` seed — \
                 transitive findings carry the full call chain. Training fits a full \
                 (p, q) grid per consumer over a FitScratch/LsScratch threading \
                 discipline; `.to_vec()` counts because cloning slices per candidate is \
                 exactly what that discipline removed. Suppress with \
                 `// lint:allow(vec-alloc-in-fit-path, <reason>)`."
            }
            Rule::HashIterInHotPath => {
                "Flags `HashMap`/`HashSet` inside any function on a hot path — named \
                 scoring/fitting functions and everything the call graph proves reachable \
                 from the scoring, fitting, or serving-tick seeds (chains reported).\n\
                 \n\
                 Streamed scores must be bit-identical to the batch engine before the \
                 fleet can fan out across shards; hash iteration order varies per process \
                 and per map, so any hash-ordered traversal on a hot path can silently \
                 break that equivalence. Use BTreeMap/BTreeSet."
            }
            Rule::UnorderedFloatReduction => {
                "Flags float reductions (`.sum()`, `.product()`, `.fold(..)`) chained \
                 within reach of a map-iteration source (`.values()`, `.keys()`, \
                 `.into_values()`, `.into_keys()`) inside a hot-path function of a file \
                 that uses `HashMap`/`HashSet`.\n\
                 \n\
                 Float addition is not associative: reducing over an unordered iterator \
                 makes the result depend on hash order, which varies per process — the \
                 summation itself becomes nondeterministic even when the element set is \
                 identical. Iterate a BTreeMap, or collect and sort before reducing."
            }
            Rule::CastIndexInDatapath => {
                "Flags `[.. as usize]` — an `as` cast used directly as a slice index — \
                 inside hot-path functions of datapath files (`tsdata`, `detect`) and \
                 inside anything reachable from the serving tick loop.\n\
                 \n\
                 A float→int or wide→usize cast saturates/wraps instead of failing, so a \
                 corrupted reading turns into a silent wrong-slot read or an \
                 out-of-bounds panic at serve time. Compute the index into a named local \
                 with an explicit bound check (clamp, `min`, or `try_into`) before \
                 indexing; the guess-and-fixup histogram kernels document their bound \
                 proof with `// lint:allow(cast-index-in-datapath, <reason>)`."
            }
            Rule::PanicInTickPath => {
                "Flags `.unwrap()`, `.expect(..)`, and panic macros in any function the \
                 call graph proves reachable from `fdeta-serve`'s tick loop \
                 (`Fleet::ingest_tick`, `Fleet::ingest_round`, `Fleet::drain_round`) — \
                 findings carry the full call chain from the seed. Cast-indexing on the \
                 tick path is reported separately by cast-index-in-datapath.\n\
                 \n\
                 A serving daemon must degrade, not die: one poisoned meter's reading \
                 must quarantine that consumer (PR 3's philosophy), not take down the \
                 fleet tick. This is stricter than no-panic-in-lib: a site whose \
                 no-panic allow argues local unreachability still needs a tick-path \
                 justification, because the serving loop cannot afford to be wrong."
            }
            Rule::LintAllowMissingReason => {
                "Flags `// lint:allow(<rule>)` annotations with no reason.\n\
                 \n\
                 An allow is a reviewed claim that a flagged site is sound; the reason is \
                 the reviewable part. Write \
                 `// lint:allow(<rule>, <why this is sound>)`."
            }
            Rule::LintAllowUnknownRule => {
                "Flags `// lint:allow(..)` annotations naming no known rule.\n\
                 \n\
                 A typo in the rule name would silently suppress nothing; the annotation \
                 must name a lint exactly (see `cargo xtask lint --explain` for the \
                 list)."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line of the violation.
    pub line: usize,
    /// The trimmed source line (rendered, and part of the baseline key).
    pub snippet: String,
    /// Human-readable description of this specific violation.
    pub message: String,
}

impl Finding {
    /// The baseline key: stable under unrelated line drift.
    pub fn key(&self) -> (String, String, String) {
        (
            self.rule.name().to_owned(),
            self.path.clone(),
            self.snippet.clone(),
        )
    }
}

/// Which rules run over which files; paths are repo-relative.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Crates whose `src/` trees are library code paths (no-panic scope).
    pub lib_crates: Vec<String>,
    /// Files that feed serialized or ordered output.
    pub ordered_output_files: Vec<String>,
    /// Path prefixes forming the reading datapath (lossy-cast scope).
    pub datapath_prefixes: Vec<String>,
    /// Path prefixes holding detector scoring hot paths (vec-alloc scope).
    pub score_path_prefixes: Vec<String>,
    /// Exact files forming the ARIMA fitting hot path (fit-alloc scope).
    pub fit_path_files: Vec<String>,
    /// Scoring entry points the call graph closes over (`Type::fn` or
    /// bare `fn` suffixes, matched against qualified fn paths).
    pub score_seeds: Vec<String>,
    /// Fitting entry points the call graph closes over.
    pub fit_seeds: Vec<String>,
    /// Serving tick-loop entry points the call graph closes over.
    pub tick_seeds: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            lib_crates: [
                "tsdata",
                "gridsim",
                "arima",
                "attacks",
                "detect",
                "kernels",
                "fdeta",
                "fdeta-serve",
            ]
            .iter()
            .map(|s| format!("crates/{s}/src"))
            .collect(),
            ordered_output_files: [
                "crates/fdeta/src/pipeline.rs",
                "crates/fdeta/src/report.rs",
                "crates/detect/src/engine.rs",
                "crates/detect/src/eval.rs",
                "crates/detect/src/roc.rs",
                "crates/gridsim/src/balance.rs",
                "crates/gridsim/src/dot.rs",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
            datapath_prefixes: vec![
                "crates/tsdata/src".to_owned(),
                "crates/detect/src".to_owned(),
                "crates/kernels/src".to_owned(),
            ],
            score_path_prefixes: vec![
                "crates/detect/src".to_owned(),
                "crates/kernels/src".to_owned(),
            ],
            fit_path_files: [
                "crates/arima/src/fit.rs",
                "crates/arima/src/linalg.rs",
                "crates/arima/src/select.rs",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
            score_seeds: [
                "StreamScorer::ingest",
                "StreamScorer::ingest_gap",
                "StreamScorer::close_window",
                "KldDetector::score",
                "hist_count",
                "guess_bin",
                "dot4",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
            fit_seeds: ["hannan_rissanen", "lag_quad_sums"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect(),
            tick_seeds: [
                "Fleet::ingest_tick",
                "Fleet::ingest_round",
                "Fleet::ingest_round_observed",
                "Fleet::drain_round",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
        }
    }
}

/// Per-file hot-path context derived from the workspace call graph: for
/// each rule family, the line of every reachable `fn` keyword mapped to
/// its call chain from a seed entry point. [`lint_file`] uses an empty
/// context (name-based hotness only); `run_lints` builds the real one.
#[derive(Debug, Clone, Default)]
pub struct FileHot {
    /// Scoring closure (`StreamScorer::ingest`, `KldDetector::score`, ...).
    pub score: BTreeMap<usize, Vec<String>>,
    /// Fitting closure (`hannan_rissanen`).
    pub fit: BTreeMap<usize, Vec<String>>,
    /// Serving tick closure (`Fleet::drain_round` and friends).
    pub tick: BTreeMap<usize, Vec<String>>,
}

impl LintConfig {
    /// Whether `path` (repo-relative, `/`-separated) is library code.
    pub fn is_lib_path(&self, path: &str) -> bool {
        self.lib_crates.iter().any(|p| path.starts_with(p.as_str()))
    }

    /// Whether `path` feeds ordered output.
    pub fn is_ordered_output(&self, path: &str) -> bool {
        self.ordered_output_files.iter().any(|p| p == path)
    }

    /// Whether `path` is in the reading datapath.
    pub fn is_datapath(&self, path: &str) -> bool {
        self.datapath_prefixes
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }

    /// Whether `path` may contain detector scoring hot paths.
    pub fn is_score_path(&self, path: &str) -> bool {
        self.score_path_prefixes
            .iter()
            .any(|p| path.starts_with(p.as_str()))
    }

    /// Whether `path` is part of the ARIMA fitting hot path.
    pub fn is_fit_path(&self, path: &str) -> bool {
        self.fit_path_files.iter().any(|p| p == path)
    }
}

/// A parsed `lint:allow(rule, reason)` annotation.
#[derive(Debug, Clone)]
struct Allow {
    line: usize,
    rule_name: String,
    reason: String,
}

/// Extracts `lint:allow(...)` annotations from comments.
fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for comment in comments {
        let mut rest = comment.text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            let after = &rest[pos + "lint:allow(".len()..];
            let Some(close) = after.find(')') else { break };
            let inside = &after[..close];
            let (rule_name, reason) = match inside.split_once(',') {
                Some((r, why)) => (r.trim().to_owned(), why.trim().to_owned()),
                None => (inside.trim().to_owned(), String::new()),
            };
            allows.push(Allow {
                line: comment.line,
                rule_name,
                reason,
            });
            rest = &after[close..];
        }
    }
    allows
}

/// Marks every token index that lies inside a `#[cfg(test)]`-gated item
/// (including `#[cfg(all(test, ..))]` and friends): lints only govern the
/// code that ships.
pub(crate) fn test_extent_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && i + 1 < tokens.len() && tokens[i + 1].is_punct('[') {
            // Find the matching ']' of the attribute.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut is_test_cfg = false;
            let mut saw_cfg = false;
            while j < tokens.len() {
                match &tokens[j].kind {
                    TokenKind::Punct('[') | TokenKind::Punct('(') => depth += 1,
                    TokenKind::Punct(']') | TokenKind::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenKind::Ident(name) if name == "cfg" => saw_cfg = true,
                    TokenKind::Ident(name) if name == "test" && saw_cfg => is_test_cfg = true,
                    _ => {}
                }
                j += 1;
            }
            let attr_end = j; // index of closing ']'
            if is_test_cfg && attr_end < tokens.len() {
                // Skip any further attributes, then blank out the item:
                // either up to a top-level ';' or over the brace-matched
                // body of the first '{'.
                let mut k = attr_end + 1;
                while k + 1 < tokens.len() && tokens[k].is_punct('#') && tokens[k + 1].is_punct('[')
                {
                    let mut d = 0usize;
                    let mut m = k + 1;
                    while m < tokens.len() {
                        match &tokens[m].kind {
                            TokenKind::Punct('[') => d += 1,
                            TokenKind::Punct(']') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    k = m + 1;
                }
                let body_start = k;
                let mut brace_depth = 0usize;
                let mut end = tokens.len();
                let mut m = body_start;
                while m < tokens.len() {
                    match &tokens[m].kind {
                        TokenKind::Punct('{') => brace_depth += 1,
                        TokenKind::Punct('}') => {
                            brace_depth = brace_depth.saturating_sub(1);
                            if brace_depth == 0 {
                                end = m + 1;
                                break;
                            }
                        }
                        TokenKind::Punct(';') if brace_depth == 0 => {
                            end = m + 1;
                            break;
                        }
                        _ => {}
                    }
                    m += 1;
                }
                for slot in mask.iter_mut().take(end.min(tokens.len())).skip(i) {
                    *slot = true;
                }
                i = end;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Identifiers that establish a sort/min/max comparator context.
const SORT_CONTEXT: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "sort_by_cached_key",
    "max_by",
    "min_by",
    "binary_search_by",
];

/// How far back (in tokens) a comparator looks for its sort context.
const SORT_LOOKBACK: usize = 100;

/// Narrow numeric targets flagged by `lossy-cast-in-datapath`.
const NARROW_CASTS: &[&str] = &["u8", "i8", "u16", "i16", "u32", "i32", "f32"];

/// Panicking macro names flagged by `no-panic-in-lib`.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Float reducers whose result depends on operand order (fp addition and
/// multiplication are not associative).
const FLOAT_REDUCERS: &[&str] = &["sum", "product", "fold"];

/// Iterator sources over `HashMap`/`HashSet` whose order varies per
/// process (SipHash keys are randomized at startup).
const UNORDERED_SOURCES: &[&str] = &["values", "keys", "into_values", "into_keys"];

/// How many tokens back from a reducer to look for an unordered source
/// feeding it (enough for a `.values().map(|x| ...)` chain with a small
/// closure, short enough not to bridge unrelated statements).
const REDUCTION_LOOKBACK: usize = 40;

/// Whether a function name marks a detector scoring hot path: the
/// `score*` family (including the `_with` scratch-explicit variants), the
/// banded `*band_scores*` family, and the streaming tick path
/// (`ingest*`, `close_window`, `kld_score*`) that runs per half-hour
/// reading in the serving layer.
fn is_scoring_fn(name: &str) -> bool {
    name.starts_with("score")
        || name.contains("band_scores")
        || name.starts_with("ingest")
        || name == "close_window"
        || name.starts_with("kld_score")
}

/// Whether a function name marks an ARIMA fitting hot path: the fit
/// drivers (`fit*`, `hannan_rissanen*`), the per-candidate grid search
/// (`select_order*`), the innovation-variance kernels
/// (`conditional_sigma2*`), and the least-squares layer under them
/// (`solve*`, `least_squares*`).
fn is_fitting_fn(name: &str) -> bool {
    name.starts_with("fit")
        || name.starts_with("hannan_rissanen")
        || name.starts_with("select_order")
        || name.starts_with("conditional_sigma2")
        || name.starts_with("solve")
        || name.starts_with("least_squares")
}

/// One `fn` item's extent in the token stream: its name, the line of the
/// `fn` keyword, and the `[start, end)` token range of its braced body.
struct FnSpan {
    name: String,
    line: usize,
    body: (usize, usize),
}

/// Collects every non-test `fn` with a body (trait signatures end at `;`
/// and are skipped), including nested ones — sites are attributed to the
/// *innermost* enclosing fn.
fn fn_spans(tokens: &[Token], in_test: &[bool]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if in_test[i] || !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = tokens.get(i + 1).and_then(|t| t.ident()) else {
            i += 1;
            continue;
        };
        // Find the body's opening `{` (a trait signature ends at `;`).
        let mut j = i + 2;
        let mut paren = 0usize;
        let mut body_start = None;
        while j < tokens.len() {
            if tokens[j].is_punct('(') {
                paren += 1;
            } else if tokens[j].is_punct(')') {
                paren = paren.saturating_sub(1);
            } else if paren == 0 && tokens[j].is_punct('{') {
                body_start = Some(j);
                break;
            } else if paren == 0 && tokens[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(start) = body_start else {
            i = j + 1;
            continue;
        };
        // Brace-match to the body's closing `}`.
        let mut depth = 0usize;
        let mut end = tokens.len();
        let mut m = start;
        while m < tokens.len() {
            if tokens[m].is_punct('{') {
                depth += 1;
            } else if tokens[m].is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    end = m + 1;
                    break;
                }
            }
            m += 1;
        }
        spans.push(FnSpan {
            name: name.to_owned(),
            line: tokens[i].line,
            body: (start, end),
        });
        // Resume inside the body so nested fns get their own spans.
        i = start + 1;
    }
    spans
}

/// Why a fn is on a hot path: by its own name (the pre-graph, per-file
/// contract) or by call-graph reachability from a seed entry point.
enum Hotness<'a> {
    Cold,
    ByName,
    ByReach(&'a [String]),
}

impl Hotness<'_> {
    fn is_hot(&self) -> bool {
        !matches!(self, Hotness::Cold)
    }

    /// The ` (reachable via a → b → c)` message suffix; empty for
    /// name-based hotness and for the seed fns themselves.
    fn via(&self) -> String {
        match self {
            Hotness::ByReach(chain) if chain.len() > 1 => {
                format!(" (reachable via {})", chain.join(" → "))
            }
            _ => String::new(),
        }
    }
}

/// The allocating construct at token `k`, if any: the rendered name and
/// whether it is a `.to_vec()` (only the fit rule bans those).
fn alloc_at(tokens: &[Token], k: usize) -> Option<(String, bool)> {
    let id = tokens[k].ident()?;
    if id == "Vec"
        && tokens.get(k + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(k + 2).is_some_and(|t| t.is_punct(':'))
        && tokens
            .get(k + 3)
            .is_some_and(|t| t.is_ident("new") || t.is_ident("with_capacity"))
    {
        return Some((
            format!("`Vec::{}`", tokens[k + 3].ident().unwrap_or_default()),
            false,
        ));
    }
    if id == "vec" && tokens.get(k + 1).is_some_and(|t| t.is_punct('!')) {
        return Some(("`vec!`".to_owned(), false));
    }
    if id == "collect"
        && k > 0
        && tokens[k - 1].is_punct('.')
        && tokens
            .get(k + 1)
            .is_some_and(|t| t.is_punct('(') || t.is_punct(':'))
    {
        return Some(("`.collect()`".to_owned(), false));
    }
    if id == "to_vec"
        && k > 0
        && tokens[k - 1].is_punct('.')
        && tokens.get(k + 1).is_some_and(|t| t.is_punct('('))
    {
        return Some(("`.to_vec()`".to_owned(), true));
    }
    None
}

/// Finds the index of the token closing the paren opened at `open`
/// (which must be `(`), or `None` if unbalanced.
fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, token) in tokens.iter().enumerate().skip(open) {
        match token.kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Lints one file with no cross-file reachability context: only the
/// name-based hot-path rules fire. `path` must be repo-relative with `/`
/// separators.
pub fn lint_file(path: &str, source: &str, config: &LintConfig) -> Vec<Finding> {
    lint_file_with(path, source, config, &FileHot::default())
}

/// Lints one file. `hot` carries the workspace call-graph verdicts for
/// this file: which fn definitions (by `fn` keyword line) are reachable
/// from the score/fit/tick seed entry points, and via what chain.
pub fn lint_file_with(
    path: &str,
    source: &str,
    config: &LintConfig,
    hot: &FileHot,
) -> Vec<Finding> {
    let lexed = lex(source);
    let tokens = &lexed.tokens;
    let lines: Vec<&str> = source.lines().collect();
    let snippet_of = |line: usize| -> String {
        lines
            .get(line.saturating_sub(1))
            .map(|l| l.split_whitespace().collect::<Vec<_>>().join(" "))
            .unwrap_or_default()
    };
    let in_test = test_extent_mask(tokens);
    let allows = parse_allows(&lexed.comments);

    let mut findings: Vec<Finding> = Vec::new();

    // Validate the annotations themselves first.
    for allow in &allows {
        match Rule::from_name(&allow.rule_name) {
            None => findings.push(Finding {
                rule: Rule::LintAllowUnknownRule,
                path: path.to_owned(),
                line: allow.line,
                snippet: snippet_of(allow.line),
                message: format!("`lint:allow({})` names no known rule", allow.rule_name),
            }),
            Some(_) if allow.reason.is_empty() => findings.push(Finding {
                rule: Rule::LintAllowMissingReason,
                path: path.to_owned(),
                line: allow.line,
                snippet: snippet_of(allow.line),
                message: format!(
                    "`lint:allow({})` must carry a reason: lint:allow({}, <why this is sound>)",
                    allow.rule_name, allow.rule_name
                ),
            }),
            Some(_) => {}
        }
    }

    let is_lib = config.is_lib_path(path);
    let ordered = config.is_ordered_output(path);
    let datapath = config.is_datapath(path);
    let score_path = config.is_score_path(path);

    // Token positions consumed by a nan-unsafe-sort finding: the chained
    // unwrap/expect there must not be double-reported by no-panic-in-lib.
    let mut consumed = vec![false; tokens.len()];

    if is_lib || ordered {
        // nan-unsafe-sort: `.partial_cmp(..).unwrap()` / `.expect(..)`
        // within a sort/min/max comparator.
        for i in 0..tokens.len() {
            if in_test[i] || !tokens[i].is_ident("partial_cmp") {
                continue;
            }
            if i == 0 || !tokens[i - 1].is_punct('.') {
                continue;
            }
            let Some(open) = tokens.get(i + 1).filter(|t| t.is_punct('(')).map(|_| i + 1) else {
                continue;
            };
            let Some(close) = matching_paren(tokens, open) else {
                continue;
            };
            let is_chain_panic = tokens.get(close + 1).is_some_and(|t| t.is_punct('.'))
                && tokens
                    .get(close + 2)
                    .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"));
            if !is_chain_panic {
                continue;
            }
            let lookback_start = i.saturating_sub(SORT_LOOKBACK);
            let in_sort = tokens[lookback_start..i]
                .iter()
                .any(|t| t.ident().is_some_and(|id| SORT_CONTEXT.contains(&id)));
            if !in_sort {
                continue;
            }
            consumed[close + 2] = true;
            findings.push(Finding {
                rule: Rule::NanUnsafeSort,
                path: path.to_owned(),
                line: tokens[i].line,
                snippet: snippet_of(tokens[i].line),
                message: "comparator unwraps partial_cmp: NaN input panics mid-sort".to_owned(),
            });
        }
    }

    if is_lib {
        for i in 0..tokens.len() {
            if in_test[i] || consumed[i] {
                continue;
            }
            let Some(name) = tokens[i].ident() else {
                continue;
            };
            // `.unwrap()` / `.expect(..)` method calls.
            if (name == "unwrap" || name == "expect")
                && i > 0
                && tokens[i - 1].is_punct('.')
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                findings.push(Finding {
                    rule: Rule::NoPanicInLib,
                    path: path.to_owned(),
                    line: tokens[i].line,
                    snippet: snippet_of(tokens[i].line),
                    message: format!("`.{name}(..)` can panic in a library code path"),
                });
            }
            // panic-family macros.
            if PANIC_MACROS.contains(&name) && tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
                findings.push(Finding {
                    rule: Rule::NoPanicInLib,
                    path: path.to_owned(),
                    line: tokens[i].line,
                    snippet: snippet_of(tokens[i].line),
                    message: format!("`{name}!` aborts the caller in a library code path"),
                });
            }
        }
    }

    if ordered {
        for (i, token) in tokens.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            let Some(name) = token.ident() else { continue };
            if name == "HashMap" || name == "HashSet" {
                findings.push(Finding {
                    rule: Rule::NondeterministicIteration,
                    path: path.to_owned(),
                    line: token.line,
                    snippet: snippet_of(token.line),
                    message: format!(
                        "`{name}` in a file feeding serialized/ordered output: iteration \
                         order is nondeterministic"
                    ),
                });
            }
        }
    }

    if datapath {
        for i in 0..tokens.len() {
            if in_test[i] || !tokens[i].is_ident("as") {
                continue;
            }
            if let Some(target) = tokens.get(i + 1).and_then(|t| t.ident()) {
                if NARROW_CASTS.contains(&target) {
                    findings.push(Finding {
                        rule: Rule::LossyCastInDatapath,
                        path: path.to_owned(),
                        line: tokens[i].line,
                        snippet: snippet_of(tokens[i].line),
                        message: format!("`as {target}` can truncate in the reading datapath"),
                    });
                }
            }
        }
    }

    // ---- Hot-path rules: name-based (the original per-file contract)
    // unioned with call-graph reachability from the seed entry points. ----
    let spans = fn_spans(tokens, &in_test);
    let hotness = |span: &FnSpan| -> [Hotness<'_>; 3] {
        let by_reach = |map: &'static str| -> Hotness<'_> {
            let chains = match map {
                "score" => &hot.score,
                "fit" => &hot.fit,
                _ => &hot.tick,
            };
            match chains.get(&span.line) {
                Some(chain) => Hotness::ByReach(chain),
                None => Hotness::Cold,
            }
        };
        let score = if score_path && is_scoring_fn(&span.name) {
            Hotness::ByName
        } else {
            by_reach("score")
        };
        let fit = if config.is_fit_path(path) && is_fitting_fn(&span.name) {
            Hotness::ByName
        } else {
            by_reach("fit")
        };
        [score, fit, by_reach("tick")]
    };
    // Innermost enclosing fn for a token index — nested fns own their
    // bodies; the enclosing fn does not re-report them.
    let owner_of = |k: usize| -> Option<usize> {
        spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.body.0 <= k && k < s.body.1)
            .max_by_key(|(_, s)| s.body.0)
            .map(|(i, _)| i)
    };

    for (si, span) in spans.iter().enumerate() {
        let [score, fit, tick] = hotness(span);
        if !(score.is_hot() || fit.is_hot() || tick.is_hot()) {
            continue;
        }
        let file_mentions_hash = tokens.iter().enumerate().any(|(k, t)| {
            !in_test[k]
                && t.ident()
                    .is_some_and(|id| id == "HashMap" || id == "HashSet")
        });
        for k in span.body.0..span.body.1 {
            if in_test[k] || owner_of(k) != Some(si) {
                continue;
            }
            // vec-alloc-in-score-path / vec-alloc-in-fit-path: heap
            // allocation in (or reachable from) a scoring/fitting hot fn.
            if let Some((found, is_to_vec)) = alloc_at(tokens, k) {
                if score.is_hot() && !is_to_vec {
                    findings.push(Finding {
                        rule: Rule::VecAllocInScorePath,
                        path: path.to_owned(),
                        line: tokens[k].line,
                        snippet: snippet_of(tokens[k].line),
                        message: format!(
                            "{found} allocates inside scoring hot path `fn {}`{}",
                            span.name,
                            score.via()
                        ),
                    });
                }
                if fit.is_hot() {
                    findings.push(Finding {
                        rule: Rule::VecAllocInFitPath,
                        path: path.to_owned(),
                        line: tokens[k].line,
                        snippet: snippet_of(tokens[k].line),
                        message: format!(
                            "{found} allocates inside fitting hot path `fn {}`{}",
                            span.name,
                            fit.via()
                        ),
                    });
                }
            }
            let Some(id) = tokens[k].ident() else {
                continue;
            };
            // panic-in-tick-path: unwrap/expect/panic-family macros
            // reachable from the serving daemon's tick loop.
            if tick.is_hot() {
                if (id == "unwrap" || id == "expect")
                    && k > 0
                    && tokens[k - 1].is_punct('.')
                    && tokens.get(k + 1).is_some_and(|t| t.is_punct('('))
                {
                    findings.push(Finding {
                        rule: Rule::PanicInTickPath,
                        path: path.to_owned(),
                        line: tokens[k].line,
                        snippet: snippet_of(tokens[k].line),
                        message: format!(
                            "`.{id}(..)` can kill the serving tick loop in `fn {}`{}",
                            span.name,
                            tick.via()
                        ),
                    });
                }
                if PANIC_MACROS.contains(&id) && tokens.get(k + 1).is_some_and(|t| t.is_punct('!'))
                {
                    findings.push(Finding {
                        rule: Rule::PanicInTickPath,
                        path: path.to_owned(),
                        line: tokens[k].line,
                        snippet: snippet_of(tokens[k].line),
                        message: format!(
                            "`{id}!` can kill the serving tick loop in `fn {}`{}",
                            span.name,
                            tick.via()
                        ),
                    });
                }
            }
            // hash-iter-in-hot-path: HashMap/HashSet touched by any hot fn.
            if id == "HashMap" || id == "HashSet" {
                let (family, h) = if score.is_hot() {
                    ("scoring", &score)
                } else if fit.is_hot() {
                    ("fitting", &fit)
                } else {
                    ("tick", &tick)
                };
                findings.push(Finding {
                    rule: Rule::HashIterInHotPath,
                    path: path.to_owned(),
                    line: tokens[k].line,
                    snippet: snippet_of(tokens[k].line),
                    message: format!(
                        "`{id}` in {family} hot path `fn {}`: iteration order varies \
                         per process{}",
                        span.name,
                        h.via()
                    ),
                });
            }
            // unordered-float-reduction: a float reducer fed by an
            // unordered map/set iterator in a hot fn.
            if file_mentions_hash
                && FLOAT_REDUCERS.contains(&id)
                && k > 0
                && tokens[k - 1].is_punct('.')
                && tokens
                    .get(k + 1)
                    .is_some_and(|t| t.is_punct('(') || t.is_punct(':'))
            {
                let lookback_start = k.saturating_sub(REDUCTION_LOOKBACK).max(span.body.0);
                let fed_by_unordered = (lookback_start..k).any(|j| {
                    tokens[j]
                        .ident()
                        .is_some_and(|s| UNORDERED_SOURCES.contains(&s))
                        && j > 0
                        && tokens[j - 1].is_punct('.')
                        && tokens.get(j + 1).is_some_and(|t| t.is_punct('('))
                });
                if fed_by_unordered {
                    let h = if score.is_hot() {
                        &score
                    } else if fit.is_hot() {
                        &fit
                    } else {
                        &tick
                    };
                    findings.push(Finding {
                        rule: Rule::UnorderedFloatReduction,
                        path: path.to_owned(),
                        line: tokens[k].line,
                        snippet: snippet_of(tokens[k].line),
                        message: format!(
                            "`.{id}(..)` reduces floats in unordered iteration order in \
                             `fn {}`{}",
                            span.name,
                            h.via()
                        ),
                    });
                }
            }
            // cast-index-in-datapath: `buf[x as usize]` — a silently
            // wrapped cast indexes a slice in the datapath or tick path.
            if id == "as"
                && tokens.get(k + 1).is_some_and(|t| t.is_ident("usize"))
                && tokens.get(k + 2).is_some_and(|t| t.is_punct(']'))
                && (tick.is_hot() || datapath)
            {
                let h = if tick.is_hot() {
                    &tick
                } else if score.is_hot() {
                    &score
                } else {
                    &fit
                };
                findings.push(Finding {
                    rule: Rule::CastIndexInDatapath,
                    path: path.to_owned(),
                    line: tokens[k].line,
                    snippet: snippet_of(tokens[k].line),
                    message: format!(
                        "`as usize` used directly as a slice index in `fn {}`{}",
                        span.name,
                        h.via()
                    ),
                });
            }
        }
    }

    // Apply suppressions: an allow on the finding's line or the line above.
    let mut allowed: BTreeMap<(usize, Rule), bool> = BTreeMap::new();
    for allow in &allows {
        if let Some(rule) = Rule::from_name(&allow.rule_name) {
            if !allow.reason.is_empty() {
                allowed.insert((allow.line, rule), true);
            }
        }
    }
    findings.retain(|f| {
        !(allowed.contains_key(&(f.line, f.rule))
            || allowed.contains_key(&(f.line.saturating_sub(1), f.rule)))
    });

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(source: &str) -> Vec<Finding> {
        lint_file("crates/detect/src/demo.rs", source, &LintConfig::default())
    }

    #[test]
    fn unwrap_in_lib_is_flagged() {
        let findings = lint_lib("fn f(x: Option<u32>) -> u32 { x.unwrap() }");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::NoPanicInLib);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn unwrap_in_test_module_is_ignored() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n fn f(x: Option<u32>) { x.unwrap(); }\n}";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn panic_macros_flagged() {
        let findings = lint_lib("fn f() { panic!(\"boom\"); unreachable!() }");
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.rule == Rule::NoPanicInLib));
    }

    #[test]
    fn allow_with_reason_suppresses_same_line() {
        let src =
            "fn f(x: Option<u32>) { x.unwrap(); } // lint:allow(no-panic-in-lib, checked above)";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_line_below() {
        let src = "// lint:allow(no-panic-in-lib, invariant: x is Some)\nfn f(x: Option<u32>) { x.unwrap(); }";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_its_own_violation() {
        let src = "// lint:allow(no-panic-in-lib)\nfn f(x: Option<u32>) { x.unwrap(); }";
        let findings = lint_lib(src);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .any(|f| f.rule == Rule::LintAllowMissingReason));
        assert!(findings.iter().any(|f| f.rule == Rule::NoPanicInLib));
    }

    #[test]
    fn allow_unknown_rule_is_flagged() {
        let src = "// lint:allow(no-such-rule, whatever)\nfn f() {}";
        let findings = lint_lib(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::LintAllowUnknownRule);
    }

    #[test]
    fn nan_unsafe_sort_detected_once_not_twice() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        let findings = lint_lib(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::NanUnsafeSort);
    }

    #[test]
    fn total_cmp_sort_is_clean() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn partial_cmp_unwrap_outside_sort_is_plain_no_panic() {
        let src = "fn f(a: f64, b: f64) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap() }";
        let findings = lint_lib(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, Rule::NoPanicInLib);
    }

    #[test]
    fn hashmap_flagged_only_in_ordered_output_files() {
        let src = "use std::collections::HashMap;\nfn f() { let _m: HashMap<u32, u32> = HashMap::new(); }";
        let ordered = lint_file("crates/fdeta/src/pipeline.rs", src, &LintConfig::default());
        assert_eq!(ordered.len(), 3, "{ordered:?}");
        assert!(ordered
            .iter()
            .all(|f| f.rule == Rule::NondeterministicIteration));
        // Same content in a non-ordered file: clean.
        let other = lint_file("crates/arima/src/fit.rs", src, &LintConfig::default());
        assert!(other.is_empty());
    }

    #[test]
    fn lossy_cast_flagged_in_datapath_only() {
        let src = "fn f(x: f64) -> f32 { x as f32 }";
        let flagged = lint_file("crates/tsdata/src/units.rs", src, &LintConfig::default());
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].rule, Rule::LossyCastInDatapath);
        let clean = lint_file("crates/gridsim/src/meter.rs", src, &LintConfig::default());
        assert!(clean.is_empty());
    }

    #[test]
    fn usize_cast_is_not_narrow() {
        let src = "fn f(x: u32) -> usize { x as usize }";
        assert!(lint_file("crates/tsdata/src/units.rs", src, &LintConfig::default()).is_empty());
    }

    #[test]
    fn string_contents_never_trigger() {
        let src = r#"fn f() -> &'static str { "call .unwrap() and panic!(now)" }"#;
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn cfg_all_test_is_also_skipped() {
        let src =
            "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f(x: Option<u32>) { x.unwrap(); } }";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn findings_carry_snippets() {
        let findings = lint_lib("fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}");
        assert_eq!(findings[0].snippet, "x.unwrap()");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn vec_alloc_in_score_fn_is_flagged() {
        let src = "fn score(&self) -> Vec<f64> {\n    let out = Vec::with_capacity(4);\n    out\n}";
        let findings = lint_lib(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::VecAllocInScorePath);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn vec_macro_and_collect_in_band_scores_are_flagged() {
        let src = "fn try_band_scores(&self) {\n    let v = vec![0.0];\n    let w: Vec<f64> = v.iter().copied().collect();\n    drop(w);\n}";
        let findings: Vec<_> = lint_lib(src)
            .into_iter()
            .filter(|f| f.rule == Rule::VecAllocInScorePath)
            .collect();
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[1].line, 3);
    }

    #[test]
    fn vec_alloc_in_tick_hot_path_is_flagged() {
        // The streaming per-tick fns (`ingest*`, `close_window`,
        // `kld_score*`) are scoring hot paths too.
        let src = "fn ingest(&mut self, r: f64) {\n    let v: Vec<f64> = vec![r];\n    drop(v);\n}\nfn close_window(&mut self) {\n    let w = Vec::with_capacity(8);\n    drop(w);\n}";
        let findings: Vec<_> = lint_lib(src)
            .into_iter()
            .filter(|f| f.rule == Rule::VecAllocInScorePath)
            .collect();
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[1].line, 6);
    }

    #[test]
    fn vec_alloc_outside_scoring_fn_is_clean() {
        let src = "fn train() -> Vec<f64> { Vec::with_capacity(4) }";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn vec_alloc_outside_score_path_prefix_is_clean() {
        let src = "fn score() -> Vec<f64> { Vec::new() }";
        let findings = lint_file("crates/arima/src/fit.rs", src, &LintConfig::default());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn vec_alloc_allow_with_reason_suppresses() {
        let src = "fn score(&self) {\n    // lint:allow(vec-alloc-in-score-path, cold wrapper result)\n    let _v: Vec<f64> = Vec::new();\n}";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn scoring_fn_signature_without_body_is_skipped() {
        let src =
            "trait T {\n    fn score(&self) -> f64;\n}\nfn helper() -> Vec<f64> { Vec::new() }";
        assert!(lint_lib(src).is_empty());
    }

    fn lint_fit(source: &str) -> Vec<Finding> {
        lint_file("crates/arima/src/fit.rs", source, &LintConfig::default())
    }

    #[test]
    fn vec_alloc_in_fit_fn_is_flagged() {
        let src =
            "fn fit_ar(w: &[f64]) -> Vec<f64> {\n    let out = Vec::with_capacity(4);\n    out\n}";
        let findings = lint_fit(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::VecAllocInFitPath);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn to_vec_in_fit_fn_is_flagged() {
        // The fit rule is stricter than the scoring rule: cloning a slice
        // per candidate is exactly the allocation the scratch threading
        // removed.
        let src = "fn solve(beta: &[f64]) -> Vec<f64> {\n    beta.to_vec()\n}";
        let findings = lint_fit(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::VecAllocInFitPath);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn to_vec_in_score_fn_stays_clean() {
        // `.to_vec()` is only banned on the fit path; the scoring rule's
        // contract (and its baseline keys) are unchanged.
        let src = "fn score(v: &[f64]) -> Vec<f64> { v.to_vec() }";
        assert!(lint_lib(src).is_empty());
    }

    #[test]
    fn fit_alloc_in_non_fitting_fn_is_clean() {
        let src = "fn build_report() -> Vec<f64> { vec![0.0] }";
        assert!(lint_fit(src).is_empty());
    }

    #[test]
    fn fit_alloc_outside_fit_path_files_is_clean() {
        // Same crate, but model.rs is not one of the three hot-path files.
        let src = "fn fit_with(w: &[f64]) -> Vec<f64> { w.to_vec() }";
        let findings = lint_file("crates/arima/src/model.rs", src, &LintConfig::default());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn fit_alloc_allow_with_reason_suppresses() {
        let src = "fn fit_core() {\n    // lint:allow(vec-alloc-in-fit-path, result ownership contract)\n    let _v: Vec<f64> = Vec::new();\n}";
        assert!(lint_fit(src).is_empty());
    }

    #[test]
    fn select_order_grid_fn_is_in_fit_scope() {
        let src = "pub fn select_order_with(w: &[f64]) {\n    let _errs: Vec<f64> = w.iter().map(|v| v * v).collect();\n}";
        let findings = lint_file("crates/arima/src/select.rs", src, &LintConfig::default());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::VecAllocInFitPath);
    }
}
