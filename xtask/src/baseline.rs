//! The committed lint baseline: existing violations are burned down
//! incrementally while *new* ones fail the build.
//!
//! Format: one tab-separated line per distinct violation site,
//! `rule<TAB>path<TAB>count<TAB>snippet`, sorted. Keying on the
//! whitespace-normalized snippet instead of the line number makes the
//! baseline stable under unrelated edits that shift line numbers; the
//! count makes it a multiset so two identical sites in one file are
//! still tracked exactly.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::lints::Finding;

/// (rule name, path, snippet) — the identity of a violation site.
pub type Key = (String, String, String);

/// A parsed baseline: violation key → allowed count.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<Key, usize>,
}

/// The result of checking findings against a baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Findings not covered by the baseline — these fail the build.
    pub new: Vec<Finding>,
    /// Baseline entries with fewer (or zero) current matches: progress!
    /// Each entry is (key, how many baseline slots went unused).
    pub stale: Vec<(Key, usize)>,
}

/// A malformed baseline line.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number in the baseline file.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

impl Baseline {
    /// Builds a baseline from the current set of findings.
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut entries: BTreeMap<Key, usize> = BTreeMap::new();
        for finding in findings {
            *entries.entry(finding.key()).or_insert(0) += 1;
        }
        Self { entries }
    }

    /// Parses the baseline file format.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut entries = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut parts = raw.splitn(4, '\t');
            let (Some(rule), Some(path), Some(count), Some(snippet)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(ParseError {
                    line: line_no,
                    message: "expected rule<TAB>path<TAB>count<TAB>snippet".to_owned(),
                });
            };
            let count: usize = count.parse().map_err(|_| ParseError {
                line: line_no,
                message: format!("count `{count}` is not a number"),
            })?;
            *entries
                .entry((rule.to_owned(), path.to_owned(), snippet.to_owned()))
                .or_insert(0) += count;
        }
        Ok(Self { entries })
    }

    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> io::Result<Result<Self, ParseError>> {
        match fs::read_to_string(path) {
            Ok(text) => Ok(Self::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Ok(Self::default())),
            Err(e) => Err(e),
        }
    }

    /// Renders the baseline file format (sorted, stable).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Lint baseline: pre-existing violations tolerated by `cargo xtask lint`.\n\
             # Burn entries down by fixing the code, then run `cargo xtask lint --update-baseline`.\n\
             # Format: rule<TAB>path<TAB>count<TAB>snippet\n",
        );
        for ((rule, path, snippet), count) in &self.entries {
            out.push_str(&format!("{rule}\t{path}\t{count}\t{snippet}\n"));
        }
        out
    }

    /// Total number of tolerated violations.
    pub fn total(&self) -> usize {
        self.entries.values().sum()
    }

    /// Checks `findings` against this baseline.
    pub fn compare(&self, findings: &[Finding]) -> Comparison {
        let mut remaining = self.entries.clone();
        let mut comparison = Comparison::default();
        for finding in findings {
            match remaining.get_mut(&finding.key()) {
                Some(count) if *count > 0 => *count -= 1,
                _ => comparison.new.push(finding.clone()),
            }
        }
        for (key, count) in remaining {
            if count > 0 {
                comparison.stale.push((key, count));
            }
        }
        comparison
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::Rule;

    fn finding(rule: Rule, path: &str, line: usize, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.to_owned(),
            line,
            snippet: snippet.to_owned(),
            message: String::new(),
        }
    }

    #[test]
    fn roundtrip_render_parse() {
        let findings = vec![
            finding(Rule::NoPanicInLib, "a.rs", 3, "x.unwrap()"),
            finding(Rule::NoPanicInLib, "a.rs", 9, "x.unwrap()"),
            finding(Rule::NanUnsafeSort, "b.rs", 5, "v.sort_by(..)"),
        ];
        let baseline = Baseline::from_findings(&findings);
        let reparsed = Baseline::parse(&baseline.render()).unwrap();
        assert_eq!(baseline, reparsed);
        assert_eq!(reparsed.total(), 3);
    }

    #[test]
    fn line_drift_does_not_create_new_findings() {
        let baseline =
            Baseline::from_findings(&[finding(Rule::NoPanicInLib, "a.rs", 3, "x.unwrap()")]);
        // Same site, new line number after unrelated edits above it.
        let cmp = baseline.compare(&[finding(Rule::NoPanicInLib, "a.rs", 42, "x.unwrap()")]);
        assert!(cmp.new.is_empty());
        assert!(cmp.stale.is_empty());
    }

    #[test]
    fn extra_occurrence_is_new() {
        let baseline =
            Baseline::from_findings(&[finding(Rule::NoPanicInLib, "a.rs", 3, "x.unwrap()")]);
        let cmp = baseline.compare(&[
            finding(Rule::NoPanicInLib, "a.rs", 3, "x.unwrap()"),
            finding(Rule::NoPanicInLib, "a.rs", 7, "x.unwrap()"),
        ]);
        assert_eq!(cmp.new.len(), 1);
        assert_eq!(cmp.new[0].line, 7);
    }

    #[test]
    fn fixed_violation_reports_stale() {
        let baseline =
            Baseline::from_findings(&[finding(Rule::NoPanicInLib, "a.rs", 3, "x.unwrap()")]);
        let cmp = baseline.compare(&[]);
        assert!(cmp.new.is_empty());
        assert_eq!(cmp.stale.len(), 1);
        assert_eq!(cmp.stale[0].1, 1);
    }

    #[test]
    fn malformed_line_is_an_error() {
        let err = Baseline::parse("no tabs here").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let baseline =
            Baseline::parse("# header\n\nno-panic-in-lib\ta.rs\t2\tx.unwrap()\n").unwrap();
        assert_eq!(baseline.total(), 2);
    }
}
