//! Workspace call graph over the lexed token streams.
//!
//! Built the same way the lints are — dependency-free, on top of
//! [`crate::lexer`] — this module parses every crate's `fn` items and the
//! call expressions inside them into a workspace-level call graph with
//! module-path resolution, so hot-path rules can be *transitive*: a seed
//! set of entry points (`StreamScorer::ingest`, `hannan_rissanen`,
//! `Fleet::drain_round`, ...) is closed over callees, and a violation
//! anywhere in the closure is reported with its full call chain
//! (`ingest → step → forecast → integrate_forecast`).
//!
//! Resolution is deliberately conservative: a call that cannot be pinned
//! to exactly one workspace function (trait-object dispatch, ambiguous
//! method names, std calls) resolves to *no* edge, so the closure can
//! only under-approximate — it never flags code it cannot prove reachable.
//! The resolution order per call form:
//!
//! * `self.m(..)` — the enclosing `impl` type's method, wherever its impl
//!   block lives.
//! * `recv.m(..)` — the unique workspace method named `m`; two candidate
//!   impls (trait dispatch) → unknown callee, no edge.
//! * `a::b::f(..)` — `crate`/`self`/`super` and `use` aliases are
//!   normalized, `fdeta_*` segments map to workspace crates, an
//!   uppercase penultimate segment is treated as `Type::assoc_fn`.
//! * `f(..)` — `use` alias first, then the caller's module, then the
//!   unique same-crate free function.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{lex, Token, TokenKind};
use crate::lints::test_extent_mask;

/// One call expression inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `recv.name(..)`. `on_self` is true when the receiver is literally
    /// `self`, which pins the callee to the enclosing impl type.
    Method { name: String, on_self: bool },
    /// `a::b::name(..)` — every segment, callee name last.
    Path(Vec<String>),
    /// `name(..)` with no qualifier.
    Free(String),
}

/// A call site: what is called, and from which line.
#[derive(Debug, Clone)]
pub struct Call {
    /// The syntactic callee.
    pub callee: Callee,
    /// 1-based line of the call.
    pub line: usize,
}

/// One `fn` item parsed out of a file.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Module path within the crate (file modules + inline `mod` blocks).
    pub module: Vec<String>,
    /// The `impl` block's type when the fn is a method/assoc fn.
    pub impl_type: Option<String>,
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Calls made in the body, in source order.
    pub calls: Vec<Call>,
}

/// A parsed file: its crate, module path, `use` map, and fn items.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// Repo-relative `/`-separated path.
    pub path: String,
    /// Crate directory name (`detect`, `fdeta-serve`, ...).
    pub krate: String,
    /// The file's own module path within the crate.
    pub module: Vec<String>,
    /// `use` imports: visible name (or alias) → full path segments.
    pub uses: BTreeMap<String, Vec<String>>,
    /// Every non-test `fn` item.
    pub fns: Vec<FnDef>,
}

/// Identifiers that look like calls syntactically but never are.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "let", "mut", "ref",
    "move", "fn", "impl", "use", "mod", "pub", "struct", "enum", "trait", "where", "unsafe", "dyn",
    "break", "continue", "const", "static", "type", "extern", "await", "async",
];

/// Derives `(crate_dir, module_path)` from a repo-relative path of the
/// form `crates/<dir>/src/<rest>.rs`. Paths outside that shape get an
/// empty crate name and their components as the module path.
fn crate_and_module(path: &str) -> (String, Vec<String>) {
    let parts: Vec<&str> = path.split('/').collect();
    if parts.len() >= 4 && parts[0] == "crates" && parts[2] == "src" {
        let krate = parts[1].to_owned();
        let mut module: Vec<String> = parts[3..]
            .iter()
            .map(|p| p.trim_end_matches(".rs").to_owned())
            .collect();
        if module.last().is_some_and(|m| m == "lib" || m == "main") {
            module.pop();
        }
        if module.last().is_some_and(|m| m == "mod") {
            module.pop();
        }
        (krate, module)
    } else {
        let module = parts
            .iter()
            .map(|p| p.trim_end_matches(".rs").to_owned())
            .collect();
        (String::new(), module)
    }
}

/// What a `{` opens, for the scope stack.
#[derive(Debug, Clone)]
enum Scope {
    Mod(String),
    Impl(Option<String>),
    Other,
}

/// Reads a type path (`&'a mut a::b::C<T>` → `C`) starting at `j`,
/// stopping at `stop`. Returns the final type-name segment.
fn type_name_at(tokens: &[Token], mut j: usize, stop: usize) -> Option<String> {
    let mut last = None;
    while j < stop {
        match &tokens[j].kind {
            TokenKind::Punct('&') => j += 1,
            TokenKind::Lifetime => j += 1,
            TokenKind::Ident(s) if s == "mut" || s == "dyn" => j += 1,
            TokenKind::Ident(s) => {
                last = Some(s.clone());
                j += 1;
                if j + 1 < stop && tokens[j].is_punct(':') && tokens[j + 1].is_punct(':') {
                    j += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    last
}

/// Parses an `impl` header starting at `impl_idx`: returns the index of
/// the block's `{` and the implemented type's name (`impl Trait for Type`
/// takes the `Type` side; `impl [f64]`-style headers yield `None`).
fn parse_impl_header(tokens: &[Token], impl_idx: usize) -> Option<(usize, Option<String>)> {
    let mut angle = 0i32;
    let mut for_idx = None;
    let mut j = impl_idx + 1;
    let brace = loop {
        let token = tokens.get(j)?;
        match &token.kind {
            TokenKind::Punct('<') => angle += 1,
            // `->` in an `Fn() -> T` bound is not a closing angle.
            TokenKind::Punct('>') if j > 0 && !tokens[j - 1].is_punct('-') => angle -= 1,
            TokenKind::Punct('{') if angle <= 0 => break j,
            TokenKind::Punct(';') if angle <= 0 => return None,
            TokenKind::Ident(s) if s == "for" && angle <= 0 => for_idx = Some(j),
            _ => {}
        }
        j += 1;
    };
    let ty = match for_idx {
        Some(f) => type_name_at(tokens, f + 1, brace),
        None => {
            // Skip the generic parameter list right after `impl`.
            let mut k = impl_idx + 1;
            if tokens.get(k).is_some_and(|t| t.is_punct('<')) {
                let mut depth = 0i32;
                while k < brace {
                    match &tokens[k].kind {
                        TokenKind::Punct('<') => depth += 1,
                        TokenKind::Punct('>') if !tokens[k - 1].is_punct('-') => {
                            depth -= 1;
                            if depth == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            type_name_at(tokens, k, brace)
        }
    };
    Some((brace, ty))
}

/// Whether the `impl` at `i` opens an impl *block* (as opposed to an
/// `impl Trait` type position: `-> impl Iterator`, `x: impl Fn()`, ...).
fn is_impl_block(tokens: &[Token], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    match &tokens[i - 1].kind {
        TokenKind::Punct('{')
        | TokenKind::Punct('}')
        | TokenKind::Punct(';')
        | TokenKind::Punct(']') => true,
        TokenKind::Ident(s) => s == "unsafe",
        _ => false,
    }
}

/// Recursive descent over one `use` tree; inserts visible-name → full
/// segment mappings into `uses` and returns the index just past the tree.
fn parse_use_tree(
    tokens: &[Token],
    mut j: usize,
    prefix: &[String],
    uses: &mut BTreeMap<String, Vec<String>>,
) -> usize {
    let mut segs: Vec<String> = prefix.to_vec();
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Ident(s) if s == "as" => {
                if let Some(alias) = tokens.get(j + 1).and_then(|t| t.ident()) {
                    uses.insert(alias.to_owned(), segs);
                    return j + 2;
                }
                return j + 1;
            }
            TokenKind::Ident(s) => {
                segs.push(s.clone());
                j += 1;
            }
            TokenKind::Punct(':') => j += 1,
            TokenKind::Punct('*') => return j + 1, // glob: conservatively ignored
            TokenKind::Punct('{') => {
                j += 1;
                loop {
                    if tokens.get(j).is_none_or(|t| t.is_punct('}')) {
                        return j + 1;
                    }
                    j = parse_use_tree(tokens, j, &segs, uses);
                    if tokens.get(j).is_some_and(|t| t.is_punct(',')) {
                        j += 1;
                    }
                }
            }
            _ => break, // ';', ',' or '}' ends this tree
        }
    }
    if segs.len() > prefix.len() {
        if let Some(last) = segs.last().cloned() {
            uses.insert(last, segs);
        }
    }
    j
}

/// Extracts the call sites in the token range `range` (a fn body).
fn extract_calls(tokens: &[Token], in_test: &[bool], range: std::ops::Range<usize>) -> Vec<Call> {
    let mut calls = Vec::new();
    for k in range {
        if in_test[k] {
            continue;
        }
        let Some(id) = tokens[k].ident() else {
            continue;
        };
        if NON_CALL_KEYWORDS.contains(&id) {
            continue;
        }
        let paren_next = tokens.get(k + 1).is_some_and(|t| t.is_punct('('));
        let turbofish = tokens.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(k + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(k + 3).is_some_and(|t| t.is_punct('<'));
        let line = tokens[k].line;
        if k > 0 && tokens[k - 1].is_punct('.') {
            // Method call (or field access / turbofish method call).
            if !(paren_next || turbofish) {
                continue;
            }
            let on_self = k >= 2
                && tokens[k - 2].is_ident("self")
                && !(k >= 3 && tokens[k - 3].is_punct('.'));
            calls.push(Call {
                callee: Callee::Method {
                    name: id.to_owned(),
                    on_self,
                },
                line,
            });
            continue;
        }
        if !paren_next {
            continue;
        }
        if k > 0 && tokens[k - 1].is_ident("fn") {
            continue; // the definition itself
        }
        if k >= 2 && tokens[k - 1].is_punct(':') && tokens[k - 2].is_punct(':') {
            // Path call: walk the `a::b::` qualifier backwards.
            let mut segs = vec![id.to_owned()];
            let mut j = k;
            while j >= 3 && tokens[j - 1].is_punct(':') && tokens[j - 2].is_punct(':') {
                match tokens[j - 3].ident() {
                    Some(s) => {
                        segs.insert(0, s.to_owned());
                        j -= 3;
                    }
                    None => break, // `<Foo as Trait>::f(..)` — qualified, unresolvable
                }
            }
            calls.push(Call {
                callee: Callee::Path(segs),
                line,
            });
        } else {
            calls.push(Call {
                callee: Callee::Free(id.to_owned()),
                line,
            });
        }
    }
    calls
}

/// Parses one file into its fn items, call sites, and `use` map. `path`
/// must be repo-relative with `/` separators.
pub fn parse_file(path: &str, source: &str) -> ParsedFile {
    let (krate, file_module) = crate_and_module(path);
    let lexed = lex(source);
    let tokens = &lexed.tokens;
    let in_test = test_extent_mask(tokens);

    let mut uses = BTreeMap::new();
    let mut fns = Vec::new();
    let mut stack: Vec<Scope> = Vec::new();
    let mut pending: BTreeMap<usize, Scope> = BTreeMap::new();

    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct('{') => {
                stack.push(pending.remove(&i).unwrap_or(Scope::Other));
                i += 1;
            }
            TokenKind::Punct('}') => {
                stack.pop();
                i += 1;
            }
            TokenKind::Ident(kw) if kw == "mod" && !in_test[i] => {
                if let (Some(name), true) = (
                    tokens.get(i + 1).and_then(|t| t.ident()),
                    tokens.get(i + 2).is_some_and(|t| t.is_punct('{')),
                ) {
                    pending.insert(i + 2, Scope::Mod(name.to_owned()));
                }
                i += 1;
            }
            TokenKind::Ident(kw) if kw == "impl" && is_impl_block(tokens, i) => {
                if let Some((brace, ty)) = parse_impl_header(tokens, i) {
                    pending.insert(brace, Scope::Impl(ty));
                }
                i += 1;
            }
            TokenKind::Ident(kw) if kw == "use" && !in_test[i] => {
                let end = parse_use_tree(tokens, i + 1, &[], &mut uses);
                i = end.max(i + 1);
            }
            TokenKind::Ident(kw) if kw == "fn" && !in_test[i] => {
                let Some(name) = tokens.get(i + 1).and_then(|t| t.ident()) else {
                    i += 1;
                    continue;
                };
                // Find the body's `{` (a trait signature ends at `;`).
                let mut j = i + 2;
                let mut paren = 0usize;
                let mut body_start = None;
                while j < tokens.len() {
                    if tokens[j].is_punct('(') {
                        paren += 1;
                    } else if tokens[j].is_punct(')') {
                        paren = paren.saturating_sub(1);
                    } else if paren == 0 && tokens[j].is_punct('{') {
                        body_start = Some(j);
                        break;
                    } else if paren == 0 && tokens[j].is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                let Some(start) = body_start else {
                    i = j + 1;
                    continue;
                };
                let mut depth = 0usize;
                let mut end = tokens.len();
                let mut m = start;
                while m < tokens.len() {
                    if tokens[m].is_punct('{') {
                        depth += 1;
                    } else if tokens[m].is_punct('}') {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            end = m + 1;
                            break;
                        }
                    }
                    m += 1;
                }
                let mut module = file_module.clone();
                let mut impl_type = None;
                for scope in &stack {
                    match scope {
                        Scope::Mod(name) => module.push(name.clone()),
                        Scope::Impl(ty) => impl_type = ty.clone(),
                        Scope::Other => {}
                    }
                }
                fns.push(FnDef {
                    module,
                    impl_type,
                    name: name.to_owned(),
                    line: tokens[i].line,
                    calls: extract_calls(tokens, &in_test, start + 1..end.saturating_sub(1)),
                });
                // Resume at the body's `{` so nested items are still seen.
                i = start;
            }
            _ => i += 1,
        }
    }

    ParsedFile {
        path: path.to_owned(),
        krate,
        module: file_module,
        uses,
        fns,
    }
}

/// One function in the workspace graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Repo-relative file path.
    pub path: String,
    /// Crate directory name.
    pub krate: String,
    /// Module path within the crate.
    pub module: Vec<String>,
    /// Impl type for methods/assoc fns.
    pub impl_type: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

impl Node {
    /// The node's qualified components: crate, modules, impl type, name.
    fn components(&self) -> Vec<&str> {
        let mut out = Vec::with_capacity(self.module.len() + 3);
        if !self.krate.is_empty() {
            out.push(self.krate.as_str());
        }
        out.extend(self.module.iter().map(String::as_str));
        if let Some(ty) = &self.impl_type {
            out.push(ty);
        }
        out.push(&self.name);
        out
    }

    /// Fully qualified display key, e.g. `detect::stream::StreamScorer::ingest`.
    pub fn key(&self) -> String {
        self.components().join("::")
    }

    /// Short display name for chains: `Type::name` or `name`.
    pub fn display(&self) -> String {
        match &self.impl_type {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether `spec` ("name", "Type::name", "module::name", ...) matches
    /// this node's qualified-component suffix.
    pub fn matches(&self, spec: &str) -> bool {
        let want: Vec<&str> = spec.split("::").collect();
        let have = self.components();
        want.len() <= have.len() && have[have.len() - want.len()..] == want[..]
    }
}

/// The workspace call graph: nodes (fns) and resolved caller→callee edges.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// One node per parsed `fn` item, in file order.
    pub nodes: Vec<Node>,
    /// `edges[i]` — sorted, deduped callee node indices of node `i`.
    pub edges: Vec<Vec<usize>>,
}

/// Import idents under which a crate directory is reachable:
/// `detect` → `detect`, `fdeta_detect`; `fdeta-serve` → `fdeta_serve`.
fn import_names(dir: &str) -> Vec<String> {
    let norm = dir.replace('-', "_");
    if norm.starts_with("fdeta") {
        vec![norm]
    } else {
        vec![format!("fdeta_{norm}"), norm]
    }
}

/// The `Some` iff the slice holds exactly one candidate.
fn unique(candidates: Option<&Vec<usize>>) -> Option<usize> {
    match candidates {
        Some(c) if c.len() == 1 => Some(c[0]),
        _ => None,
    }
}

/// Per-build resolution indexes.
struct Indexes {
    /// (crate, module path joined with `::`, name) → free fns.
    free_by_crate_mod: BTreeMap<(String, String, String), Vec<usize>>,
    /// (crate, name) → free fns anywhere in the crate.
    free_by_crate_name: BTreeMap<(String, String), Vec<usize>>,
    /// (impl type, name) → methods, workspace-wide.
    method_by_type: BTreeMap<(String, String), Vec<usize>>,
    /// name → methods, workspace-wide.
    method_by_name: BTreeMap<String, Vec<usize>>,
    /// import ident → crate directory.
    crate_imports: BTreeMap<String, String>,
}

impl CallGraph {
    /// Builds the graph over every parsed file, resolving calls to edges.
    pub fn build(files: &[ParsedFile]) -> Self {
        let mut nodes = Vec::new();
        let mut owners = Vec::new(); // file index of each node
        for (fi, file) in files.iter().enumerate() {
            for def in &file.fns {
                nodes.push(Node {
                    path: file.path.clone(),
                    krate: file.krate.clone(),
                    module: def.module.clone(),
                    impl_type: def.impl_type.clone(),
                    name: def.name.clone(),
                    line: def.line,
                });
                owners.push(fi);
            }
        }

        let mut idx = Indexes {
            free_by_crate_mod: BTreeMap::new(),
            free_by_crate_name: BTreeMap::new(),
            method_by_type: BTreeMap::new(),
            method_by_name: BTreeMap::new(),
            crate_imports: BTreeMap::new(),
        };
        for file in files {
            if !file.krate.is_empty() {
                for import in import_names(&file.krate) {
                    idx.crate_imports.insert(import, file.krate.clone());
                }
            }
        }
        for (n, node) in nodes.iter().enumerate() {
            match &node.impl_type {
                Some(ty) => {
                    idx.method_by_type
                        .entry((ty.clone(), node.name.clone()))
                        .or_default()
                        .push(n);
                    idx.method_by_name
                        .entry(node.name.clone())
                        .or_default()
                        .push(n);
                }
                None => {
                    idx.free_by_crate_mod
                        .entry((
                            node.krate.clone(),
                            node.module.join("::"),
                            node.name.clone(),
                        ))
                        .or_default()
                        .push(n);
                    idx.free_by_crate_name
                        .entry((node.krate.clone(), node.name.clone()))
                        .or_default()
                        .push(n);
                }
            }
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut n = 0usize;
        for (fi, file) in files.iter().enumerate() {
            // A file with no fn items contributes no nodes; `n` stays put.
            debug_assert!(file.fns.is_empty() || owners.get(n).is_none_or(|&o| o == fi));
            for def in &file.fns {
                for call in &def.calls {
                    if let Some(target) = resolve(&idx, file, def, &call.callee) {
                        edges[n].push(target);
                    }
                }
                edges[n].sort_unstable();
                edges[n].dedup();
                n += 1;
            }
        }
        CallGraph { nodes, edges }
    }

    /// Node indices whose qualified suffix matches any of `specs`.
    pub fn seed_nodes(&self, specs: &[String]) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, node)| specs.iter().any(|s| node.matches(s)))
            .map(|(i, _)| i)
            .collect();
        out.sort_unstable();
        out
    }

    /// BFS transitive closure from the seed specs, recording one shortest
    /// call chain (breadth-first parent) per reached node.
    pub fn reach(&self, specs: &[String]) -> Reach {
        let seeds = self.seed_nodes(specs);
        let mut members: BTreeSet<usize> = seeds.iter().copied().collect();
        let mut pred: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = seeds.iter().copied().collect();
        while let Some(at) = queue.pop_front() {
            for &next in &self.edges[at] {
                if members.insert(next) {
                    pred.insert(next, at);
                    queue.push_back(next);
                }
            }
        }
        Reach { members, pred }
    }
}

/// Resolves one call to a node index, or `None` (unknown callee).
fn resolve(idx: &Indexes, file: &ParsedFile, def: &FnDef, callee: &Callee) -> Option<usize> {
    match callee {
        Callee::Method { name, on_self } => {
            if *on_self {
                if let Some(ty) = &def.impl_type {
                    return unique(idx.method_by_type.get(&(ty.clone(), name.clone())));
                }
            }
            unique(idx.method_by_name.get(name))
        }
        Callee::Free(name) => {
            if let Some(full) = file.uses.get(name) {
                return resolve_path(idx, file, def, full.clone());
            }
            unique(idx.free_by_crate_mod.get(&(
                file.krate.clone(),
                def.module.join("::"),
                name.clone(),
            )))
            .or_else(|| {
                unique(
                    idx.free_by_crate_name
                        .get(&(file.krate.clone(), name.clone())),
                )
            })
        }
        Callee::Path(segs) => resolve_path(idx, file, def, segs.clone()),
    }
}

/// Resolves a path call's segments after alias/`crate`/`super` rewriting.
fn resolve_path(
    idx: &Indexes,
    file: &ParsedFile,
    def: &FnDef,
    mut segs: Vec<String>,
) -> Option<usize> {
    if segs.is_empty() {
        return None;
    }
    // Expand a leading `use` alias (at most twice, for alias-of-alias).
    for _ in 0..2 {
        let first = segs.first()?;
        if matches!(first.as_str(), "crate" | "self" | "super" | "Self")
            || idx.crate_imports.contains_key(first)
        {
            break;
        }
        match file.uses.get(first) {
            Some(full) => {
                let mut expanded = full.clone();
                expanded.extend(segs.drain(1..));
                segs = expanded;
            }
            None => break,
        }
    }
    if segs[0] == "Self" {
        let ty = def.impl_type.as_ref()?;
        let name = segs.last()?;
        return unique(idx.method_by_type.get(&(ty.clone(), name.clone())));
    }
    // Pin the target crate and the module base the remaining segments are
    // relative to.
    let (krate, base, rest): (String, Vec<String>, &[String]) = if segs[0] == "crate" {
        (file.krate.clone(), Vec::new(), &segs[1..])
    } else if segs[0] == "self" {
        (file.krate.clone(), def.module.clone(), &segs[1..])
    } else if segs[0] == "super" {
        let mut module = def.module.clone();
        let mut k = 0;
        while segs.get(k).is_some_and(|s| s == "super") {
            module.pop();
            k += 1;
        }
        (file.krate.clone(), module, &segs[k..])
    } else if let Some(dir) = idx.crate_imports.get(&segs[0]) {
        (dir.clone(), Vec::new(), &segs[1..])
    } else {
        (file.krate.clone(), Vec::new(), &segs[..])
    };
    let (name, mids) = rest.split_last()?;
    // An uppercase final qualifier is a type: `Type::assoc_fn(..)`.
    if let Some(ty) = mids.last() {
        if ty.chars().next().is_some_and(char::is_uppercase) {
            return unique(idx.method_by_type.get(&(ty.clone(), name.clone())));
        }
    }
    let mut module = base;
    module.extend(mids.iter().cloned());
    unique(
        idx.free_by_crate_mod
            .get(&(krate.clone(), module.join("::"), name.clone())),
    )
    .or_else(|| {
        // Module-relative fallback: `helpers::f()` written from a sibling.
        if def.module.is_empty() {
            return None;
        }
        let mut module = def.module.clone();
        module.extend(mids.iter().cloned());
        unique(
            idx.free_by_crate_mod
                .get(&(krate.clone(), module.join("::"), name.clone())),
        )
    })
    .or_else(|| unique(idx.free_by_crate_name.get(&(krate, name.clone()))))
}

/// The transitive closure of a seed set, with breadth-first call chains.
#[derive(Debug, Default)]
pub struct Reach {
    /// Every reached node (seeds included).
    pub members: BTreeSet<usize>,
    /// Breadth-first parent of each non-seed member.
    pred: BTreeMap<usize, usize>,
}

impl Reach {
    /// Whether node `i` is in the closure.
    pub fn contains(&self, i: usize) -> bool {
        self.members.contains(&i)
    }

    /// The call chain from a seed to node `i` (inclusive), as short
    /// display names. A seed's chain is just itself.
    pub fn chain(&self, graph: &CallGraph, mut i: usize) -> Vec<String> {
        let mut out = vec![graph.nodes[i].display()];
        while let Some(&p) = self.pred.get(&i) {
            i = p;
            out.push(graph.nodes[i].display());
        }
        out.reverse();
        out
    }

    /// Per-line call chains for the members living in `path`: fn-def line
    /// → chain from a seed. This is the per-file view the lints consume.
    pub fn lines_for(&self, graph: &CallGraph, path: &str) -> BTreeMap<usize, Vec<String>> {
        let mut out = BTreeMap::new();
        for &i in &self.members {
            if graph.nodes[i].path == path {
                out.insert(graph.nodes[i].line, self.chain(graph, i));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_key(graph: &CallGraph, i: usize) -> String {
        graph.nodes[i].key()
    }

    fn edges_of(graph: &CallGraph, spec: &str) -> Vec<String> {
        let seeds = graph.seed_nodes(&[spec.to_owned()]);
        assert_eq!(seeds.len(), 1, "seed {spec} matched {seeds:?}");
        graph.edges[seeds[0]]
            .iter()
            .map(|&j| node_key(graph, j))
            .collect()
    }

    #[test]
    fn module_path_from_file_path() {
        assert_eq!(
            crate_and_module("crates/detect/src/lib.rs"),
            ("detect".into(), vec![])
        );
        assert_eq!(
            crate_and_module("crates/detect/src/stream.rs"),
            ("detect".into(), vec!["stream".into()])
        );
        assert_eq!(
            crate_and_module("crates/fdeta-serve/src/foo/mod.rs"),
            ("fdeta-serve".into(), vec!["foo".into()])
        );
        assert_eq!(
            crate_and_module("crates/arima/src/foo/bar.rs"),
            ("arima".into(), vec!["foo".into(), "bar".into()])
        );
    }

    #[test]
    fn method_vs_free_fn_resolution() {
        let src = "\
pub struct Foo;
impl Foo {
    pub fn go(&self) {
        helper();
        self.step2();
    }
    fn step2(&self) {}
}
fn helper() {}
";
        let parsed = vec![parse_file("crates/app/src/lib.rs", src)];
        let graph = CallGraph::build(&parsed);
        assert_eq!(
            edges_of(&graph, "Foo::go"),
            vec!["app::Foo::step2", "app::helper"]
        );
    }

    #[test]
    fn impl_trait_for_type_attributes_methods_to_the_type() {
        let src = "\
trait Run { fn run(&self); }
pub struct Engine;
impl Run for Engine {
    fn run(&self) { spin(); }
}
fn spin() {}
";
        let parsed = vec![parse_file("crates/app/src/lib.rs", src)];
        let graph = CallGraph::build(&parsed);
        assert_eq!(edges_of(&graph, "Engine::run"), vec!["app::spin"]);
    }

    #[test]
    fn cross_module_use_alias_resolves() {
        let lib = "\
mod deep { pub fn grind() { polish(); } fn polish() {} }
";
        let caller = "\
use crate::deep::grind as g;
pub fn drive() { g(); }
";
        let parsed = vec![
            parse_file("crates/app/src/lib.rs", lib),
            parse_file("crates/app/src/caller.rs", caller),
        ];
        let graph = CallGraph::build(&parsed);
        assert_eq!(edges_of(&graph, "drive"), vec!["app::deep::grind"]);
    }

    #[test]
    fn cross_crate_import_resolves() {
        let util = "pub mod helpers { pub fn grind() {} }";
        let app = "\
use fdeta_util::helpers::grind;
pub fn drive() { grind(); }
pub fn drive_by_path() { fdeta_util::helpers::grind(); }
";
        let parsed = vec![
            parse_file("crates/util/src/lib.rs", util),
            parse_file("crates/app/src/lib.rs", app),
        ];
        let graph = CallGraph::build(&parsed);
        assert_eq!(edges_of(&graph, "drive"), vec!["util::helpers::grind"]);
        assert_eq!(
            edges_of(&graph, "drive_by_path"),
            vec!["util::helpers::grind"]
        );
    }

    #[test]
    fn ambiguous_trait_dispatch_is_unknown_callee() {
        // Two impls of `run` — `x.run()` must not guess.
        let src = "\
pub struct A;
pub struct B;
impl A { pub fn run(&self) { boom(); } }
impl B { pub fn run(&self) {} }
fn boom() {}
pub fn drive(x: &A) { x.run(); }
";
        let parsed = vec![parse_file("crates/app/src/lib.rs", src)];
        let graph = CallGraph::build(&parsed);
        assert_eq!(edges_of(&graph, "drive"), Vec::<String>::new());
        // ... but a `self.` receiver still pins within the impl type, and
        // the closure stays conservative: `drive` reaches nothing.
        let reach = graph.reach(&["drive".to_owned()]);
        assert_eq!(reach.members.len(), 1);
    }

    #[test]
    fn self_receiver_resolves_despite_ambiguity() {
        let src = "\
pub struct A;
pub struct B;
impl A { pub fn go(&self) { self.run(); } pub fn run(&self) {} }
impl B { pub fn run(&self) {} }
";
        let parsed = vec![parse_file("crates/app/src/lib.rs", src)];
        let graph = CallGraph::build(&parsed);
        assert_eq!(edges_of(&graph, "A::go"), vec!["app::A::run"]);
    }

    #[test]
    fn type_assoc_fn_path_resolves() {
        let src = "\
pub struct Counter;
impl Counter { pub fn reset() {} }
pub fn drive() { Counter::reset(); }
";
        let parsed = vec![parse_file("crates/app/src/lib.rs", src)];
        let graph = CallGraph::build(&parsed);
        assert_eq!(edges_of(&graph, "drive"), vec!["app::Counter::reset"]);
    }

    #[test]
    fn cycles_terminate_and_chains_stay_shortest() {
        let src = "\
pub fn ping() { pong(); }
pub fn pong() { ping(); leaf(); }
fn leaf() {}
";
        let parsed = vec![parse_file("crates/app/src/lib.rs", src)];
        let graph = CallGraph::build(&parsed);
        let reach = graph.reach(&["ping".to_owned()]);
        assert_eq!(reach.members.len(), 3);
        let leaf = graph.seed_nodes(&["leaf".to_owned()])[0];
        assert_eq!(reach.chain(&graph, leaf), vec!["ping", "pong", "leaf"]);
    }

    #[test]
    fn test_code_is_invisible_to_the_graph() {
        let src = "\
pub fn lib_fn() {}
#[cfg(test)]
mod tests {
    fn helper() { crate::lib_fn(); }
}
";
        let parsed = vec![parse_file("crates/app/src/lib.rs", src)];
        let graph = CallGraph::build(&parsed);
        assert_eq!(graph.nodes.len(), 1);
        assert_eq!(graph.nodes[0].name, "lib_fn");
    }

    #[test]
    fn seed_spec_suffix_matching() {
        let node = Node {
            path: "crates/detect/src/stream.rs".into(),
            krate: "detect".into(),
            module: vec!["stream".into()],
            impl_type: Some("StreamScorer".into()),
            name: "ingest".into(),
            line: 1,
        };
        assert!(node.matches("ingest"));
        assert!(node.matches("StreamScorer::ingest"));
        assert!(node.matches("stream::StreamScorer::ingest"));
        assert!(!node.matches("Fleet::ingest"));
        assert!(!node.matches("close_window"));
    }

    #[test]
    fn use_groups_and_aliases_parse() {
        let src = "use crate::a::{b, c as d, e::f};\nfn noop() {}";
        let parsed = parse_file("crates/app/src/lib.rs", src);
        assert_eq!(parsed.uses["b"], vec!["crate", "a", "b"]);
        assert_eq!(parsed.uses["d"], vec!["crate", "a", "c"]);
        assert_eq!(parsed.uses["f"], vec!["crate", "a", "e", "f"]);
    }

    #[test]
    fn return_position_impl_trait_is_not_an_impl_block() {
        let src = "\
pub struct Foo;
impl Foo {
    pub fn items(&self) -> impl Iterator<Item = u32> { (0..3).map(double) }
}
fn double(x: u32) -> u32 { x * 2 }
";
        let parsed = parse_file("crates/app/src/lib.rs", src);
        let items = parsed.fns.iter().find(|f| f.name == "items").unwrap();
        assert_eq!(items.impl_type.as_deref(), Some("Foo"));
        let double = parsed.fns.iter().find(|f| f.name == "double").unwrap();
        assert_eq!(double.impl_type, None);
    }

    #[test]
    fn chains_render_through_lines_for() {
        let src = "\
pub struct S;
impl S { pub fn ingest(&self) { helper(); } }
fn helper() { deeper(); }
fn deeper() {}
";
        let parsed = vec![parse_file("crates/app/src/lib.rs", src)];
        let graph = CallGraph::build(&parsed);
        let reach = graph.reach(&["S::ingest".to_owned()]);
        let lines = reach.lines_for(&graph, "crates/app/src/lib.rs");
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[&4], vec!["S::ingest", "helper", "deeper"]);
    }
}
