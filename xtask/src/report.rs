//! Rendering lint results: human-readable text and machine-readable JSON
//! (hand-rolled — the driver is dependency-free by design).

use crate::baseline::Comparison;
use crate::lints::Finding;

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn finding_json(finding: &Finding, is_new: bool) -> String {
    format!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"snippet\":\"{}\",\"message\":\"{}\",\"new\":{}}}",
        finding.rule.name(),
        json_escape(&finding.path),
        finding.line,
        json_escape(&finding.snippet),
        json_escape(&finding.message),
        is_new
    )
}

/// Renders the full JSON report: every finding (tagged `new` when not in
/// the baseline), stale baseline entries, and summary counts.
pub fn render_json(findings: &[Finding], comparison: &Comparison, baseline_total: usize) -> String {
    let new_keys: Vec<(&str, usize)> = comparison
        .new
        .iter()
        .map(|f| (f.path.as_str(), f.line))
        .collect();
    let mut out = String::from("{\"findings\":[");
    for (i, finding) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let is_new = new_keys.contains(&(finding.path.as_str(), finding.line));
        out.push_str(&finding_json(finding, is_new));
    }
    out.push_str("],\"stale_baseline\":[");
    for (i, ((rule, path, snippet), count)) in comparison.stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"snippet\":\"{}\",\"count\":{}}}",
            json_escape(rule),
            json_escape(path),
            json_escape(snippet),
            count
        ));
    }
    out.push_str(&format!(
        "],\"summary\":{{\"total\":{},\"new\":{},\"baselined\":{},\"stale\":{}}}}}",
        findings.len(),
        comparison.new.len(),
        baseline_total,
        comparison.stale.len()
    ));
    out.push('\n');
    out
}

/// Renders the human-readable report.
pub fn render_text(findings: &[Finding], comparison: &Comparison, baseline_total: usize) -> String {
    let mut out = String::new();
    if comparison.new.is_empty() {
        out.push_str(&format!(
            "lint: clean — {} finding(s), all within the baseline of {}\n",
            findings.len(),
            baseline_total
        ));
    } else {
        for finding in &comparison.new {
            out.push_str(&format!(
                "error[{}]: {}\n  --> {}:{}\n   |\n   |  {}\n   |\n   = help: {}\n\n",
                finding.rule.name(),
                finding.message,
                finding.path,
                finding.line,
                finding.snippet,
                finding.rule.help()
            ));
        }
        out.push_str(&format!(
            "lint: {} NEW violation(s) not in the baseline ({} total, {} baselined)\n",
            comparison.new.len(),
            findings.len(),
            baseline_total
        ));
    }
    if !comparison.stale.is_empty() {
        let fixed: usize = comparison.stale.iter().map(|(_, n)| n).sum();
        out.push_str(&format!(
            "lint: {fixed} baselined violation(s) no longer occur — run \
             `cargo xtask lint --update-baseline` to lock in the progress\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::Baseline;
    use crate::lints::Rule;

    fn finding(line: usize, snippet: &str) -> Finding {
        Finding {
            rule: Rule::NoPanicInLib,
            path: "crates/detect/src/kld.rs".to_owned(),
            line,
            snippet: snippet.to_owned(),
            message: "`.unwrap(..)` can panic in a library code path".to_owned(),
        }
    }

    #[test]
    fn json_is_parseable_shape() {
        let findings = vec![finding(3, "x.unwrap() // \"quoted\"")];
        let cmp = Baseline::default().compare(&findings);
        let json = render_json(&findings, &cmp, 0);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"new\":true"));
        assert!(json.contains("\"summary\":{\"total\":1,\"new\":1,\"baselined\":0,\"stale\":0}"));
    }

    #[test]
    fn text_clean_when_baselined() {
        let findings = vec![finding(3, "x.unwrap()")];
        let baseline = Baseline::from_findings(&findings);
        let cmp = baseline.compare(&findings);
        let text = render_text(&findings, &cmp, baseline.total());
        assert!(text.contains("clean"));
    }

    #[test]
    fn text_reports_new_with_location_and_help() {
        let findings = vec![finding(3, "x.unwrap()")];
        let cmp = Baseline::default().compare(&findings);
        let text = render_text(&findings, &cmp, 0);
        assert!(text.contains("error[no-panic-in-lib]"));
        assert!(text.contains("crates/detect/src/kld.rs:3"));
        assert!(text.contains("help:"));
    }
}
