//! Repo-local static analysis for the F-DETA workspace.
//!
//! `cargo xtask lint` walks every `crates/*/src` file and enforces the
//! workspace invariants as named lints (see [`lints`]), compares the
//! findings against a committed baseline (see [`baseline`]), and renders
//! text or JSON reports (see [`report`]). The crate is dependency-free on
//! purpose: it must build on runners with no registry access.

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod lints;
pub mod report;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use callgraph::{parse_file, CallGraph, ParsedFile};
use lints::{FileHot, Finding, LintConfig};

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Converts `path` (under `root`) into the repo-relative, `/`-separated
/// form the lints and baseline use.
fn relative_key(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Every directory the lint pass scans, repo-relative.
fn scan_roots(config: &LintConfig) -> Vec<String> {
    let mut roots = config.lib_crates.clone();
    for file in &config.ordered_output_files {
        if let Some(dir) = file.rsplit_once('/').map(|(d, _)| d.to_owned()) {
            if !roots.iter().any(|r| dir.starts_with(r.as_str())) {
                roots.push(dir);
            }
        }
    }
    for prefix in &config.datapath_prefixes {
        if !roots.iter().any(|r| prefix.starts_with(r.as_str())) {
            roots.push(prefix.clone());
        }
    }
    roots.sort();
    roots.dedup();
    roots
}

/// Reads every scanned `.rs` file as `(repo-relative key, source)`,
/// sorted by key for determinism.
fn read_scanned_sources(root: &Path, config: &LintConfig) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    for rel_root in scan_roots(config) {
        let dir = root.join(&rel_root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    files.dedup();
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        sources.push((relative_key(root, path), fs::read_to_string(path)?));
    }
    Ok(sources)
}

/// Builds the workspace call graph over every scanned file. Used by
/// `run_lints` for the transitive hot-path rules and by `lint --graph`.
pub fn build_graph(root: &Path, config: &LintConfig) -> io::Result<CallGraph> {
    let sources = read_scanned_sources(root, config)?;
    let parsed: Vec<ParsedFile> = sources
        .iter()
        .map(|(key, source)| parse_file(key, source))
        .collect();
    Ok(CallGraph::build(&parsed))
}

/// Runs every lint over the repo rooted at `root`. Findings are sorted by
/// (path, line, rule) — byte-stable across runs and platforms.
///
/// Two passes: first every file is parsed into the workspace call graph
/// and the score/fit/tick seed sets are closed over callees; then each
/// file is linted with its per-file reachability verdicts.
pub fn run_lints(root: &Path, config: &LintConfig) -> io::Result<Vec<Finding>> {
    let sources = read_scanned_sources(root, config)?;
    let parsed: Vec<ParsedFile> = sources
        .iter()
        .map(|(key, source)| parse_file(key, source))
        .collect();
    let graph = CallGraph::build(&parsed);
    let score = graph.reach(&config.score_seeds);
    let fit = graph.reach(&config.fit_seeds);
    let tick = graph.reach(&config.tick_seeds);

    let mut findings = Vec::new();
    for (key, source) in &sources {
        let hot = FileHot {
            score: score.lines_for(&graph, key),
            fit: fit.lines_for(&graph, key),
            tick: tick.lines_for(&graph, key),
        };
        findings.extend(lints::lint_file_with(key, source, config, &hot));
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.snippet).cmp(&(&b.path, b.line, b.rule, &b.snippet))
    });
    Ok(findings)
}

/// Finds the repo root by walking up from `start` until a directory with
/// both `Cargo.toml` and `crates/` appears.
pub fn find_repo_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
