//! Quickstart: train F-DETA on a synthetic smart-meter corpus and catch a
//! planted electricity thief.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fdeta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A CER-style corpus: 25 consumers, 14 weeks of half-hour readings.
    let data = SyntheticDataset::generate(&DatasetConfig::small(25, 20, 2024));
    println!("generated {} consumers x {} weeks", data.len(), 20);

    // 2. Train the framework on the first 18 weeks of every consumer.
    let config = PipelineConfig {
        train_weeks: 18,
        ..Default::default()
    };
    let pipeline = Pipeline::train(&data, &config)?;
    println!("trained monitors for {} consumers", pipeline.monitored());

    // 3. Mallory launches the Integrated ARIMA attack against a neighbour
    //    whose weeks are otherwise unremarkable: the neighbour's meter
    //    over-reports so the books balance while Mallory steals.
    let victim_index = (0..data.len())
        .find(|&i| {
            let split = data.split(i, 18).expect("20 weeks generated");
            let id = data.consumer(i).id;
            (0..2).all(|w| pipeline.assess(id, &split.test.week_vector(w)).is_empty())
        })
        .expect("some consumer has quiet test weeks");
    let victim = data.consumer(victim_index);
    let split = data.split(victim_index, 18)?;
    let actual_week = split.test.week_vector(0);
    let model = ArimaModel::fit(split.train.flat(), ArimaSpec::new(2, 0, 1)?)?;
    let ctx = InjectionContext {
        train: &split.train,
        actual_week: &actual_week,
        model: &model,
        confidence: 0.95,
        start_slot: 18 * SLOTS_PER_WEEK,
    };
    // A greedy Mallory rides the model's confidence-interval boundary
    // (the *ARIMA attack*); swap in `integrated_arima_worst_case` to see
    // the stealthier variant that only the KLD detector catches.
    let attack = arima_attack(&ctx, Direction::OverReport);
    println!(
        "attack injected: {:.1} kWh over-billed to consumer {} this week",
        attack.energy_overbilled_kwh(),
        victim.id
    );

    // 4. The utility's weekly scoring pass.
    let alerts = pipeline.assess(victim.id, &attack.reported);
    for alert in &alerts {
        println!(
            "ALERT consumer {}: {:?} ({:?}), score {:.3}",
            alert.consumer, alert.kind, alert.role, alert.score
        );
    }
    if alerts.iter().any(|a| a.role == RoleHint::Victim) {
        println!(
            "-> consumer {} looks like a VICTIM: inspect their neighbours",
            victim.id
        );
    } else {
        println!("-> attack went undetected this week (try more training weeks)");
    }

    // 5. For contrast: an honest week raises no alarm.
    let honest = pipeline.assess(victim.id, &split.test.week_vector(1));
    println!("honest week alerts: {}", honest.len());
    Ok(())
}
