//! Grid forensics: the Section V machinery on its own — balance checks,
//! the W-event alarm rules, attacker cost analysis, and both investigation
//! procedures (Case 1 fully instrumented, Case 2 portable-meter walk).
//!
//! ```sh
//! cargo run --release --example grid_forensics
//! ```

use fdeta::gridsim::balance::Snapshot;
use fdeta::gridsim::investigate::{Investigation, PortableMeterSearch};
use fdeta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A three-level feeder: 2 zones x 3 buses x 6 consumers.
    let grid = GridTopology::balanced(2, 3, 6);
    println!(
        "feeder: {} internal nodes, {} consumers, {} loss segments",
        grid.internal_nodes().count(),
        grid.consumers().count(),
        grid.losses().count()
    );

    // Pick a thief deep in the tree; she taps the line upstream of her
    // meter (Attack Class 1A: consumes 2.4 kW, meter sees 1.0 kW).
    let thief = grid.consumers().nth(10).expect("consumers exist");
    let mut snapshot = Snapshot::new();
    for c in grid.consumers() {
        let (actual, reported) = if c == thief { (2.4, 1.0) } else { (1.0, 1.0) };
        snapshot.set_consumer(&grid, c, actual, reported)?;
    }
    for l in grid.losses() {
        snapshot.set_loss(&grid, l, 0.05)?;
    }

    // --- Balance checks with full instrumentation -----------------------
    let deployment = MeterDeployment::full(&grid);
    let checker = BalanceChecker::default();
    let events = checker.w_events(&grid, &deployment, &snapshot)?;
    let failing: Vec<_> = events
        .iter()
        .filter(|(_, s)| s.is_failure())
        .map(|(n, _)| *n)
        .collect();
    println!(
        "balance checks failing at {} of {} metered nodes",
        failing.len(),
        events.len()
    );

    // Case 1: the deepest failing meter localises the neighbourhood.
    let inv = Investigation::case1(&grid, &deployment, &snapshot, &checker)?;
    println!(
        "case 1: deepest failing meters {:?}, suspect consumers {:?}",
        inv.deepest_failing, inv.suspects
    );
    assert!(inv.suspects.contains(&thief));

    // Case 2: sparse metering — a serviceman walks the tree with a
    // portable meter, pruning clean subtrees.
    let search = PortableMeterSearch::run(&grid, &snapshot, &checker)?;
    println!(
        "case 2: {} clamp points instead of {} (pruned {:.0}%), suspects {:?}",
        search.checks_performed(),
        grid.internal_nodes().count(),
        100.0 * (1.0 - search.checks_performed() as f64 / grid.internal_nodes().count() as f64),
        search.suspects
    );
    assert_eq!(search.suspects, vec![thief]);

    // --- The attacker's counter-cost ------------------------------------
    // To hide from local checks the thief must compromise every metered
    // node on her route to the root (Section VI-A): O(log N) for balanced
    // trees, O(N) worst case.
    let mut compromised = MeterDeployment::full(&grid);
    let cost = compromised.compromise_route(&grid, thief);
    println!("to evade local checks the thief must compromise {cost} meters (tree depth - 1)");
    let events = checker.w_events(&grid, &compromised, &snapshot)?;
    let root_status = events[&grid.root()];
    println!(
        "with the route compromised, local checks pass but the trusted root still {}",
        if root_status.is_failure() {
            "FAILS -> theft is visible"
        } else {
            "passes"
        }
    );

    // The V-B alarm rules point at the inconsistency.
    let alarms = checker.alarms(&grid, &events);
    println!("V-B alarms raised: {}", alarms.len());
    for alarm in alarms.iter().take(3) {
        println!("  {alarm:?}");
    }

    // Finally: the 1B variant (neighbour over-report) silences even the
    // root — which is exactly why the paper needs data-driven detection.
    let neighbor = grid.neighbors(thief)?[0];
    let mut masked = snapshot.clone();
    masked.set_consumer(&grid, thief, 2.4, 1.0)?;
    masked.set_consumer(&grid, neighbor, 1.0, 2.4)?;
    let honest_deployment = MeterDeployment::full(&grid);
    let events = checker.w_events(&grid, &honest_deployment, &masked)?;
    let any_failure = events.values().any(|s| s.is_failure());
    println!(
        "1B variant (neighbour absorbs the difference): any balance failure? {}",
        if any_failure {
            "yes"
        } else {
            "no -> Proposition 2 in action"
        }
    );
    Ok(())
}
