//! Real-data workflow: loading CER-format files, handling gaps, training,
//! and persisting the pipeline.
//!
//! This example manufactures a CER-format file on the fly (so it runs
//! offline), but every step works identically on the ISSDA originals:
//! point the reader at `File1.txt` from the CER trial instead.
//!
//! ```sh
//! cargo run --release --example real_data
//! ```

use std::io::Cursor;

use fdeta::cer_synth::SyntheticDataset;
use fdeta::prelude::*;
use fdeta::tsdata::csv::{read_cer_records, records_to_series_with, GapPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A CER-format file: generate a small corpus and serialise it in
    //    the trial's `meter_id,DDDSS,reading` layout, then knock out ten
    //    days of readings to simulate a communications outage.
    let data = SyntheticDataset::generate(&DatasetConfig::small(4, 14, 3001));
    let mut file = Vec::new();
    data.write_cer(&mut file)?;
    let text = String::from_utf8(file)?;
    let with_gap: String = text
        .lines()
        .filter(|line| {
            // Meter 1000 loses ten days of communication (days 16-25).
            let mut fields = line.split(',');
            let meter = fields.next().unwrap_or_default();
            let day = fields
                .next()
                .unwrap_or_default()
                .parse::<u32>()
                .unwrap_or(0)
                / 100;
            !(meter == "1000" && (16..=25).contains(&day))
        })
        .map(|line| format!("{line}\n"))
        .collect();
    println!(
        "CER file: {} records after the outage",
        with_gap.lines().count()
    );

    // 2. Load with each gap policy and compare what the detector sees.
    let records = read_cer_records(Cursor::new(with_gap.as_bytes()))?;
    for (policy, label) in [
        (GapPolicy::Zero, "zero-fill"),
        (GapPolicy::HoldLast, "hold-last"),
        (GapPolicy::PreviousWeek, "previous-week"),
    ] {
        let series = &records_to_series_with(&records, policy)?[&1000];
        let weeks = series.whole_weeks();
        let train = series.week_range(0, weeks - 2)?.to_week_matrix()?;
        let detector = KldDetector::train(&train, 10, SignificanceLevel::Ten)?;
        let outage_week = train.week_vector(2); // days 20-29 fall here
        println!(
            "  {label:<14} outage-week KLD = {:.3} (threshold {:.3}) -> {}",
            detector.score(&outage_week)?,
            detector.threshold(),
            if detector.is_anomalous(&outage_week) {
                "FLAGGED"
            } else {
                "clean"
            }
        );
    }
    println!("zero-fill imitates an under-report attack and hold-last freezes the");
    println!("histogram; only the shape-preserving previous-week fill keeps the");
    println!("honest consumer out of the alert queue.");

    // 3. Train the full pipeline on the reconstructed corpus and persist
    //    it for the next monitoring cycle.
    let restored = SyntheticDataset::from_cer_reader(Cursor::new(text.as_bytes()))?;
    let pipeline = Pipeline::train(
        &restored,
        &PipelineConfig {
            train_weeks: 12,
            ..Default::default()
        },
    )?;
    let saved = serde_json::to_vec(&pipeline)?;
    println!(
        "pipeline trained on {} consumers and persisted ({} KiB of JSON)",
        pipeline.monitored(),
        saved.len() / 1024
    );
    let reloaded: Pipeline = serde_json::from_slice(&saved)?;
    println!(
        "reloaded pipeline monitors {} consumers",
        reloaded.monitored()
    );
    Ok(())
}
