//! Closed loop: run the full AMI simulation for a quarter with an
//! embedded neighbour-thief and watch the framework converge on her.
//!
//! ```sh
//! cargo run --release --example closed_loop
//! ```

use fdeta_sim::{AttackerKind, AttackerSpec, Scenario, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 16 consumers, 20 weeks of history to train on, 6 live weeks; Mallory
    // (consumer index 4) starts stealing from her neighbour in week 1.
    let scenario = Scenario::small(20, 26, 2077).with_attacker(AttackerSpec {
        consumer_index: 4,
        kind: AttackerKind::StealFromNeighbor,
        start_week: 1,
    });

    let outcome = Simulation::run(&scenario)?;
    let spec = outcome.attackers[0];
    let mallory = outcome.consumer_ids[spec.consumer_index];
    let victim = outcome.consumer_ids[(spec.consumer_index + 1) % outcome.consumer_ids.len()];
    println!(
        "Mallory is consumer {mallory} ({}), stealing via consumer {victim} from week {}",
        spec.kind.class_label(),
        spec.start_week
    );
    println!();

    for log in &outcome.weeks {
        let involved: Vec<String> = log
            .alerts
            .iter()
            .filter(|a| a.consumer == mallory || a.consumer == victim)
            .map(|a| format!("{:?} on {}", a.kind, a.consumer))
            .collect();
        println!(
            "week {}: {:>5.1} kWh stolen | balance {} | {} alerts{}",
            log.week,
            log.stolen_kwh,
            if log.root_balance_failed {
                "FAILED"
            } else {
                "silent"
            },
            log.alerts.len(),
            if involved.is_empty() {
                String::new()
            } else {
                format!(" | implicated: {}", involved.join(", "))
            }
        );
    }
    println!();
    match outcome.detection_week(&spec) {
        Some(week) => println!(
            "the framework flagged the theft in live week {week} \
             (latency {} week(s) after the attack began)",
            week - spec.start_week
        ),
        None => println!("the theft went undetected this quarter — rerun with more history"),
    }
    println!(
        "stolen in total: {:.0} kWh; the balance meter corroborated {} weeks \
         (Class 1B circumvents it by construction)",
        outcome.total_stolen_kwh(),
        outcome.balance_corroborated_weeks()
    );
    Ok(())
}
