//! Utility monitoring: the weekly control-centre cycle over a whole
//! service area, with external-evidence suppression and an investigation
//! plan (the five framework steps of Section VII, end to end).
//!
//! ```sh
//! cargo run --release --example utility_monitoring
//! ```

use fdeta::gridsim::balance::Snapshot;
use fdeta::pipeline::HolidayCalendar;
use fdeta::prelude::*;
use fdeta::tsdata::week::WeekVector;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A service area of 40 consumers observed for 16 weeks.
    let train_weeks = 14;
    let data = SyntheticDataset::generate(&DatasetConfig::small(40, 16, 99));
    let pipeline = Pipeline::train(
        &data,
        &PipelineConfig {
            train_weeks,
            ..Default::default()
        },
    )?;

    // The feeder topology: four buses of ten consumers under the root.
    let mut grid = GridTopology::new();
    let mut node_of = std::collections::HashMap::new();
    for bus_index in 0..4 {
        let bus = grid.add_internal(grid.root())?;
        for c in 0..10 {
            let index = bus_index * 10 + c;
            let id = data.consumer(index).id;
            let node = grid.add_consumer(bus, id.to_string())?;
            node_of.insert(id, node);
        }
        grid.add_loss(bus)?;
    }

    // This week's reported readings: consumer 7 under-reports (a 2B-style
    // attacker), consumer 23 is away on holiday (an innocent anomaly).
    let attacker_index = 7;
    let holiday_index = 23;
    let mut weekly_reports: Vec<(u32, WeekVector)> = Vec::new();
    for index in 0..data.len() {
        let record = data.consumer(index);
        let split = data.split(index, train_weeks)?;
        let week = split.test.week_vector(0);
        let reported = if index == attacker_index {
            WeekVector::new(week.as_slice().iter().map(|v| v * 0.2).collect())?
        } else if index == holiday_index {
            WeekVector::new(week.as_slice().iter().map(|v| v * 0.1).collect())?
        } else {
            week
        };
        weekly_reports.push((record.id, reported));
    }

    // Steps 2-4: score the fleet; the holiday calendar explains consumer
    // 23's low week away.
    let no_holiday = HolidayCalendar::new(false); // no region-wide holiday...
    let vacation_notice = HolidayCalendar::new(true); // ...but 23 filed one.
    let mut all_alerts = Vec::new();
    for (id, week) in &weekly_reports {
        let evidence: &dyn fdeta::pipeline::ExternalEvidence =
            if *id == data.consumer(holiday_index).id {
                &vacation_notice
            } else {
                &no_holiday
            };
        all_alerts.extend(pipeline.assess_with_evidence(*id, week, evidence));
    }
    let report = FrameworkReport::from_cycle(0, weekly_reports.len(), all_alerts);
    println!(
        "weekly cycle: {} consumers scored, {} alerts raised, {} actionable",
        report.consumers_scored, report.alerts_raised, report.alerts_actionable
    );
    for alert in &report.alerts {
        println!(
            "  consumer {}: {:?} ({:?}) score {:.3}",
            alert.consumer, alert.kind, alert.role, alert.score
        );
    }

    // Step 5: build the field-crew plan. The grid snapshot lets the
    // portable-meter walk corroborate the data-driven alerts.
    let mut snapshot = Snapshot::new();
    for (index, (id, reported)) in weekly_reports.iter().enumerate() {
        let split = data.split(index, train_weeks)?;
        let actual = split.test.week_vector(0);
        // Use the week's first slot as this polling interval's demand.
        snapshot.set_consumer(
            &grid,
            node_of[id],
            actual.as_slice()[0],
            reported.as_slice()[0],
        )?;
    }
    let request = InvestigationRequest::from_alerts(
        report.alerts.clone(),
        &grid,
        &|id| node_of.get(&id).copied(),
        Some(&snapshot),
    )?;
    println!(
        "field plan: inspect meters of consumers {:?}",
        request.inspect_meters
    );
    println!(
        "portable-meter walk: {} clamp points (of {} internal nodes)",
        request.clamp_points.len(),
        grid.internal_nodes().count()
    );
    let attacker_id = data.consumer(attacker_index).id;
    if request.inspect_meters.contains(&attacker_id) {
        println!("-> the planted attacker (consumer {attacker_id}) is on the inspection list");
    }
    Ok(())
}
