//! Attack lab: inject every attack class from the paper's taxonomy against
//! one consumer and watch which detectors catch which attack.
//!
//! This is Table I and Section VIII in miniature: the feasibility matrix
//! is simulated, then the three concrete injections (ARIMA attack,
//! Integrated ARIMA attack, Optimal Swap) are run against the four
//! detectors.
//!
//! ```sh
//! cargo run --release --example attack_lab
//! ```

use fdeta::attacks::feasibility::simulate_table1;
use fdeta::detect::{ArimaDetector, IntegratedArimaDetector};
use fdeta::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: the taxonomy, measured -------------------------------
    println!("attack feasibility (measured on a two-consumer feeder):");
    println!(
        "{:<8} {:>6} {:>6} {:>6} {:>18}",
        "class", "flat", "TOU", "RTP", "evades balance?"
    );
    for (class, [flat, tou, rtp]) in simulate_table1() {
        let evades = [flat, tou, rtp]
            .iter()
            .any(|o| o.feasible && o.circumvents_balance);
        println!(
            "{:<8} {:>6} {:>6} {:>6} {:>18}",
            class.paper_name(),
            if flat.feasible { "yes" } else { "no" },
            if tou.feasible { "yes" } else { "no" },
            if rtp.feasible { "yes" } else { "no" },
            if evades { "yes" } else { "no" },
        );
    }

    // --- Part 2: concrete injections vs detectors ----------------------
    let train_weeks = 12;
    let data = SyntheticDataset::generate(&DatasetConfig::small(8, 14, 5));
    // Use a subject whose attack-target week is organically quiet, so
    // every flag below is caused by the injection, not by the consumer's
    // own behaviour.
    let subject = (0..data.len())
        .find(|&i| {
            let split = data.split(i, train_weeks).expect("14 weeks generated");
            let det = KldDetector::train(&split.train, 10, SignificanceLevel::Ten)
                .expect("valid training matrix");
            !det.is_anomalous(&split.test.week_vector(0))
        })
        .expect("some consumer has a quiet test week");
    let split = data.split(subject, train_weeks)?;
    let actual = split.test.week_vector(0);
    let model = ArimaModel::fit(split.train.flat(), ArimaSpec::new(2, 0, 1)?)?;
    let ctx = InjectionContext {
        train: &split.train,
        actual_week: &actual,
        model: &model,
        confidence: 0.95,
        start_slot: train_weeks * SLOTS_PER_WEEK,
    };
    let scheme = PricingScheme::tou_ireland();
    let plan = TouPlan::ireland_nightsaver();

    let attacks: Vec<(&str, AttackVector)> = vec![
        (
            "ARIMA attack (2A/2B)",
            arima_attack(&ctx, Direction::UnderReport),
        ),
        (
            "Integrated ARIMA (1B)",
            integrated_arima_worst_case(&ctx, Direction::OverReport, 50, 11, &scheme)
                .expect("50 vectors requested"),
        ),
        (
            "Integrated ARIMA (2A/2B)",
            integrated_arima_worst_case(&ctx, Direction::UnderReport, 50, 13, &scheme)
                .expect("50 vectors requested"),
        ),
        (
            "Optimal Swap (3A/3B)",
            optimal_swap(&actual, &plan, ctx.start_slot),
        ),
    ];

    let detectors: Vec<(&str, Box<dyn Detector>)> = vec![
        (
            "arima",
            Box::new(ArimaDetector::new(model.clone(), &split.train, 0.95).expect("seeded")),
        ),
        (
            "integrated",
            Box::new(
                IntegratedArimaDetector::new(model.clone(), &split.train, 0.95).expect("seeded"),
            ),
        ),
        (
            "kld@5%",
            Box::new(KldDetector::train(
                &split.train,
                10,
                SignificanceLevel::Five,
            )?),
        ),
        (
            "kld-cond@10%",
            Box::new(ConditionedKldDetector::train_tou(
                &split.train,
                &plan,
                10,
                SignificanceLevel::Ten,
            )?),
        ),
    ];

    println!();
    println!(
        "{:<26} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "attack", "profit $", "kWh", "arima", "integrated", "kld"
    );
    for (name, attack) in &attacks {
        let profit = attack.advantage(&scheme).dollars().abs();
        let kwh = attack.energy_delta_kwh().abs();
        let verdicts: Vec<String> = detectors
            .iter()
            .map(|(_, d)| {
                if d.is_anomalous(&attack.reported) {
                    "FLAGGED".into()
                } else {
                    "missed".into()
                }
            })
            .collect();
        println!(
            "{name:<26} {profit:>10.2} {kwh:>10.1} {:>12} {:>12} {:>12}",
            verdicts[0], verdicts[1], verdicts[2]
        );
        let _ = &verdicts[3];
    }
    println!();
    println!("the boundary-riding attacks evade the interval detectors; the KLD");
    println!("detector sees their distorted weekly distribution. Only the");
    println!("price-conditioned variant sees the Optimal Swap:");
    let swap = &attacks[3].1;
    for (name, d) in &detectors {
        println!(
            "  {name:<14} on Optimal Swap: {}",
            if d.is_anomalous(&swap.reported) {
                "FLAGGED"
            } else {
                "missed"
            }
        );
    }
    Ok(())
}
