//! Integration: the ARIMA substrate against realistic load data from the
//! corpus generator — coverage calibration and the seasonal variant's
//! advantage, which unit tests on synthetic AR processes cannot show.

use fdeta::arima::{ArimaModel, ArimaSpec, SeasonalArima};
use fdeta::cer_synth::{DatasetConfig, SyntheticDataset};
use fdeta::tsdata::SLOTS_PER_DAY;

fn corpus() -> SyntheticDataset {
    SyntheticDataset::generate(&DatasetConfig::small(6, 20, 555))
}

#[test]
fn one_step_coverage_on_load_data_is_calibrated() {
    // The interval detectors assume the 95% CI covers ~95% of honest
    // readings; verify on generated load data, which is far from the
    // Gaussian ARMA the estimator assumes.
    let data = corpus();
    let mut total_coverage = 0.0;
    let mut evaluated = 0usize;
    for index in 0..data.len() {
        let split = data.split(index, 16).expect("20 weeks generated");
        let Ok(model) = ArimaModel::fit(
            split.train.flat(),
            ArimaSpec::new(2, 0, 1).expect("static order"),
        ) else {
            continue;
        };
        let mut fc = model.forecaster(split.train.flat()).expect("seeded");
        let mut hits = 0usize;
        let mut n = 0usize;
        for week in split.test.iter_weeks() {
            for &v in week {
                if fc.forecast(0.95).contains(v) {
                    hits += 1;
                }
                fc.observe(v);
                n += 1;
            }
        }
        total_coverage += hits as f64 / n as f64;
        evaluated += 1;
    }
    let mean_coverage = total_coverage / evaluated as f64;
    assert!(
        (0.85..=1.0).contains(&mean_coverage),
        "mean 95% CI coverage on load data was {mean_coverage}"
    );
}

#[test]
fn seasonal_model_is_calibrated_on_load_data() {
    // One-step MAE on *smooth* noisy load profiles can favour the plain
    // model (seasonal differencing doubles the iid-noise variance while
    // persistence exploits the smooth daily shape — the sharp-cycle case
    // where seasonal wins is covered by the arima crate's unit tests).
    // What must hold on any load data is *calibration*: the seasonal
    // model's 95% interval covers ~95% of honest readings.
    let data = corpus();
    let mut total_coverage = 0.0;
    let mut evaluated = 0usize;
    for index in 0..data.len() {
        let split = data.split(index, 16).expect("20 weeks generated");
        let spec = ArimaSpec::new(1, 0, 0).expect("static order");
        let Ok(seasonal) = SeasonalArima::fit(split.train.flat(), SLOTS_PER_DAY, spec) else {
            continue;
        };
        let mut fc = seasonal.forecaster(split.train.flat()).expect("seeded");
        let mut hits = 0usize;
        let mut n = 0usize;
        for week in split.test.iter_weeks() {
            for &v in week {
                if fc.forecast(0.95).contains(v) {
                    hits += 1;
                }
                fc.observe(v);
                n += 1;
            }
        }
        total_coverage += hits as f64 / n as f64;
        evaluated += 1;
    }
    let mean_coverage = total_coverage / evaluated as f64;
    assert!(
        (0.85..=1.0).contains(&mean_coverage),
        "seasonal 95% CI coverage on load data was {mean_coverage}"
    );
}

#[test]
fn constant_consumer_is_skipped_not_crashed() {
    // A constant (degenerate) history must flow through the evaluation
    // harness as a skipped consumer, not a panic. Constructed via the CER
    // loader since the generator never emits constants.
    use fdeta::detect::eval::{evaluate, EvalConfig};
    use fdeta::tsdata::SLOTS_PER_DAY as SPD;
    let mut csv = String::new();
    // Six weeks of a constant 1.0 kW reading, every slot of every day.
    for day in 0..42u32 {
        for slot in 1..=SPD as u32 {
            csv.push_str(&format!("77,{:05},1.0\n", (day + 1) * 100 + slot));
        }
    }
    let data = fdeta::cer_synth::SyntheticDataset::from_cer_reader(std::io::Cursor::new(csv))
        .expect("well-formed CER text");
    assert_eq!(data.consumer(0).series.whole_weeks(), 6);
    let config = EvalConfig {
        threads: 1,
        ..EvalConfig::fast(4, 2)
    };
    let eval = evaluate(&data, &config).expect("degenerate history must not error");
    assert_eq!(eval.consumers.len(), 1);
    assert!(
        eval.consumers[0].skipped,
        "constant history must be skipped"
    );
    assert_eq!(eval.evaluated_consumers(), 0);
}
