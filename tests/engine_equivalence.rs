//! Integration: the shared evaluation engine must be an invisible
//! optimisation — cached artifacts, work-stealing scheduling, and quantile
//! re-thresholding all have to produce byte-for-byte the results of the
//! naive retrain-everything path.

use fdeta::cer_synth::{DatasetConfig, SyntheticDataset};
use fdeta::detect::eval::{evaluate, EvalConfig, Scenario};
use fdeta::detect::{ConfigError, Detector, EvalEngine, EvalError, KldDetector};

fn corpus(consumers: usize, weeks: usize, seed: u64) -> SyntheticDataset {
    SyntheticDataset::generate(&DatasetConfig::small(consumers, weeks, seed))
}

#[test]
fn evaluation_json_is_thread_count_invariant() {
    let data = corpus(10, 14, 7);
    let base = EvalConfig::fast(12, 3);
    let serial = evaluate(
        &data,
        &EvalConfig {
            threads: 1,
            ..base.clone()
        },
    )
    .expect("serial run");
    let parallel = evaluate(&data, &EvalConfig { threads: 8, ..base }).expect("parallel run");
    let serial_json = serde_json::to_string(&serial).expect("serialises");
    let parallel_json = serde_json::to_string(&parallel).expect("serialises");
    assert_eq!(
        serial_json, parallel_json,
        "thread count must not leak into the Evaluation"
    );
}

#[test]
fn cached_artifacts_match_retrain_from_scratch() {
    let data = corpus(10, 14, 21);
    let config = EvalConfig {
        threads: 2,
        ..EvalConfig::fast(12, 3)
    };
    let engine = EvalEngine::train(&data, &config).expect("engine trains");
    let first = engine.evaluate().expect("first pass");
    let second = engine.evaluate().expect("second pass");
    assert_eq!(first, second, "cached artifacts must score identically");
    let scratch = evaluate(&data, &config).expect("fresh run");
    assert_eq!(first, scratch, "engine must equal the one-shot path");
}

#[test]
fn too_few_weeks_is_a_typed_error_not_a_panic() {
    let data = corpus(4, 8, 3);
    // 10 training weeks + attack week + clean week > 8 available.
    let config = EvalConfig::fast(10, 2);
    let result = evaluate(&data, &config);
    assert!(
        matches!(result, Err(EvalError::Train(_))),
        "expected a typed training error, got {result:?}"
    );
}

#[test]
fn builder_rejects_invalid_configs() {
    assert!(matches!(
        EvalConfig::builder().train_weeks(0).build(),
        Err(ConfigError::ZeroTrainWeeks)
    ));
    assert!(matches!(
        EvalConfig::builder().attack_vectors(0).build(),
        Err(ConfigError::ZeroAttackVectors)
    ));
    assert!(matches!(
        EvalConfig::builder().bins(0).build(),
        Err(ConfigError::ZeroBins)
    ));
    assert!(matches!(
        EvalConfig::builder().confidence(1.5).build(),
        Err(ConfigError::InvalidConfidence { .. })
    ));
    let config = EvalConfig::builder()
        .threads(0)
        .build()
        .expect("defaults are valid");
    assert!(config.threads >= 1, "threads = 0 must be normalised");
}

#[test]
fn alpha_sweep_rescoring_matches_full_retrain() {
    let data = corpus(10, 14, 99);
    let config = EvalConfig {
        threads: 2,
        ..EvalConfig::fast(12, 3)
    };
    let engine = EvalEngine::train(&data, &config).expect("engine trains");
    let alphas = [0.02, 0.05, 0.10, 0.20];
    let points = engine.kld_alpha_sweep(&alphas).expect("sweep");
    assert_eq!(points.len(), alphas.len());

    for (point, &alpha) in points.iter().zip(&alphas) {
        // The legacy path: a KLD detector freshly trained at this level for
        // every consumer, applied to the same clean and worst-case weeks.
        let percentile = 1.0 - alpha;
        let mut n = 0usize;
        let mut fp = 0usize;
        let mut det_over = 0usize;
        let mut det_under = 0usize;
        let mut m1_over = 0usize;
        let mut m1_under = 0usize;
        for artifact in engine.artifacts() {
            if !artifact.has_model() {
                continue;
            }
            let clean = artifact.clean_week().expect("clean week");
            let (over, _) = artifact
                .worst_case(Scenario::IntegratedOver, engine.config())
                .expect("over-report attack");
            let (under, _) = artifact
                .worst_case(Scenario::IntegratedUnder, engine.config())
                .expect("under-report attack");
            let fresh = KldDetector::train_at_percentile(
                artifact.train_matrix(),
                engine.config().bins,
                percentile,
            )
            .expect("fresh training");
            let clean_flag = fresh.is_anomalous(&clean);
            let over_flag = fresh.is_anomalous(&over.reported);
            let under_flag = fresh.is_anomalous(&under.reported);
            n += 1;
            fp += usize::from(clean_flag);
            det_over += usize::from(over_flag);
            det_under += usize::from(under_flag);
            m1_over += usize::from(over_flag && !clean_flag);
            m1_under += usize::from(under_flag && !clean_flag);
        }
        assert!(n > 0, "corpus must contain modelled consumers");
        let denom = n as f64;
        assert_eq!(point.consumers, n);
        assert_eq!(point.false_positive_rate, fp as f64 / denom);
        assert_eq!(point.detection_over, det_over as f64 / denom);
        assert_eq!(point.detection_under, det_under as f64 / denom);
        assert_eq!(point.metric1_over, m1_over as f64 / denom);
        assert_eq!(point.metric1_under, m1_under as f64 / denom);
    }
}
