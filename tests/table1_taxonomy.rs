//! Integration: the attack taxonomy of Table I, derived by simulating
//! every class against the grid substrate, must coincide with the paper's
//! matrix (encoded as predicates on `AttackClass`).

use fdeta::attacks::feasibility::{rtp_scheme, simulate, simulate_table1};
use fdeta::attacks::AttackClass;
use fdeta::gridsim::PricingScheme;

#[test]
fn measured_matrix_matches_paper() {
    for (class, [flat, tou, rtp]) in simulate_table1() {
        assert_eq!(
            flat.feasible,
            class.possible_with_flat_rate(),
            "{class} flat"
        );
        assert_eq!(tou.feasible, class.possible_with_tou(), "{class} tou");
        assert_eq!(rtp.feasible, class.possible_with_rtp(), "{class} rtp");
        for cell in [flat, tou, rtp] {
            if cell.feasible {
                assert_eq!(
                    cell.circumvents_balance,
                    class.circumvents_balance_check(),
                    "{class} balance"
                );
            }
        }
    }
}

#[test]
fn adr_requirement_is_measured_not_assumed() {
    let rtp = rtp_scheme();
    for class in AttackClass::ALL {
        let with = simulate(class, &rtp, true).feasible;
        let without = simulate(class, &rtp, false).feasible;
        assert_eq!(with && !without, class.requires_adr(), "{class} adr");
    }
}

#[test]
fn b_classes_strictly_extend_a_classes() {
    // Every A class feasible under a scheme has its B counterpart feasible
    // too (the neighbour over-report only adds capability).
    let schemes = [
        PricingScheme::flat_default(),
        PricingScheme::tou_ireland(),
        rtp_scheme(),
    ];
    let pairs = [
        (AttackClass::C1A, AttackClass::C1B),
        (AttackClass::C2A, AttackClass::C2B),
        (AttackClass::C3A, AttackClass::C3B),
    ];
    for scheme in &schemes {
        for (a, b) in pairs {
            let a_ok = simulate(a, scheme, true).feasible;
            let b_ok = simulate(b, scheme, true).feasible;
            assert!(!a_ok || b_ok, "{a} feasible but {b} not under {scheme:?}");
        }
    }
}
