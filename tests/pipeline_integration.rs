//! Integration: the five-step framework pipeline against the grid
//! substrate, including report serialisation.

use fdeta::gridsim::balance::Snapshot;
use fdeta::prelude::*;
use fdeta::tsdata::week::WeekVector;

fn corpus() -> SyntheticDataset {
    SyntheticDataset::generate(&DatasetConfig::small(12, 16, 321))
}

#[test]
fn victim_alert_leads_to_neighbor_inspection() -> Result<(), Box<dyn std::error::Error>> {
    let train_weeks = 14;
    let data = corpus();
    let pipeline = Pipeline::train(
        &data,
        &PipelineConfig {
            train_weeks,
            ..Default::default()
        },
    )?;

    // A feeder with all consumers under two buses.
    let mut grid = GridTopology::new();
    let mut node_of = std::collections::HashMap::new();
    for half in 0..2 {
        let bus = grid.add_internal(grid.root())?;
        for i in 0..6 {
            let id = data.consumer(half * 6 + i).id;
            node_of.insert(id, grid.add_consumer(bus, id.to_string())?);
        }
    }

    // Victimise consumer 2 with a blatant over-report.
    let victim = data.consumer(2);
    let split = data.split(2, train_weeks)?;
    let inflated = WeekVector::new(split.test.week(0).iter().map(|v| v * 5.0 + 0.5).collect())?;
    let alerts = pipeline.assess(victim.id, &inflated);
    assert!(
        alerts.iter().any(|a| a.role == RoleHint::Victim),
        "blatant inflation must be labelled victim-like: {alerts:?}"
    );

    let request =
        InvestigationRequest::from_alerts(alerts, &grid, &|id| node_of.get(&id).copied(), None)?;
    // The victim AND their bus neighbours are on the inspection list.
    assert!(request.inspect_meters.contains(&victim.id));
    assert!(
        request.inspect_meters.len() > 1,
        "victim alerts must implicate neighbours: {:?}",
        request.inspect_meters
    );
    Ok(())
}

#[test]
fn reports_round_trip_through_serde() -> Result<(), Box<dyn std::error::Error>> {
    let data = corpus();
    let pipeline = Pipeline::train(
        &data,
        &PipelineConfig {
            train_weeks: 14,
            ..Default::default()
        },
    )?;
    let id = data.consumer(0).id;
    let zeros = WeekVector::new(vec![0.0; SLOTS_PER_WEEK])?;
    let alerts = pipeline.assess(id, &zeros);
    assert!(!alerts.is_empty(), "an all-zero week must alert");

    let report = FrameworkReport::from_cycle(3, data.len(), alerts);
    let json = serde_json::to_string(&report)?;
    let restored: FrameworkReport = serde_json::from_str(&json)?;
    assert_eq!(report, restored);
    Ok(())
}

#[test]
fn snapshot_corroboration_walks_the_grid() -> Result<(), Box<dyn std::error::Error>> {
    let data = corpus();
    let train_weeks = 14;
    let pipeline = Pipeline::train(
        &data,
        &PipelineConfig {
            train_weeks,
            ..Default::default()
        },
    )?;

    let mut grid = GridTopology::new();
    let bus = grid.add_internal(grid.root())?;
    let mut node_of = std::collections::HashMap::new();
    for i in 0..4 {
        let id = data.consumer(i).id;
        node_of.insert(id, grid.add_consumer(bus, id.to_string())?);
    }

    // Consumer 1 under-reports in the physical snapshot too.
    let mut snapshot = Snapshot::new();
    for i in 0..4 {
        let id = data.consumer(i).id;
        let (actual, reported) = if i == 1 { (2.0, 0.4) } else { (1.0, 1.0) };
        snapshot.set_consumer(&grid, node_of[&id], actual, reported)?;
    }

    let thief = data.consumer(1);
    let zeros = WeekVector::new(vec![0.0; SLOTS_PER_WEEK])?;
    let alerts = pipeline.assess(thief.id, &zeros);
    let request = InvestigationRequest::from_alerts(
        alerts,
        &grid,
        &|id| node_of.get(&id).copied(),
        Some(&snapshot),
    )?;
    assert!(
        !request.clamp_points.is_empty(),
        "snapshot must trigger the portable walk"
    );
    assert_eq!(request.clamp_points[0], grid.root());
    Ok(())
}
