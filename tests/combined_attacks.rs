//! Integration: combined attacks (Section VI's "combination of one or
//! more of these seven attack classes") against the detector suite.

use rand::rngs::StdRng;
use rand::SeedableRng;

use fdeta::arima::{ArimaModel, ArimaSpec};
use fdeta::attacks::combined::under_report_and_shift;
use fdeta::attacks::{integrated_arima_attack, Direction, InjectionContext};
use fdeta::cer_synth::{DatasetConfig, SyntheticDataset};
use fdeta::detect::{ConditionedKldDetector, Detector, KldDetector, SignificanceLevel};
use fdeta::gridsim::{PricingScheme, TouPlan};
use fdeta::tsdata::SLOTS_PER_WEEK;

#[test]
fn combined_attack_profits_more_but_is_still_caught() {
    let data = SyntheticDataset::generate(&DatasetConfig::small(12, 26, 88));
    let train_weeks = 24;
    let plan = TouPlan::ireland_nightsaver();
    let scheme = PricingScheme::tou_ireland();

    let mut combined_caught = 0usize;
    let mut profit_gain_confirmed = 0usize;
    let mut evaluated = 0usize;
    for index in 0..data.len() {
        let split = data.split(index, train_weeks).expect("26 weeks generated");
        let actual = split.test.week_vector(0);
        let Ok(model) = ArimaModel::fit(
            split.train.flat(),
            ArimaSpec::new(2, 0, 1).expect("static order"),
        ) else {
            continue;
        };
        let ctx = InjectionContext {
            train: &split.train,
            actual_week: &actual,
            model: &model,
            confidence: 0.95,
            start_slot: train_weeks * SLOTS_PER_WEEK,
        };
        let mut rng = StdRng::seed_from_u64(index as u64);
        let combined = under_report_and_shift(&ctx, &plan, &mut rng);
        let mut rng = StdRng::seed_from_u64(index as u64);
        let plain = integrated_arima_attack(&ctx, Direction::UnderReport, &mut rng);

        // Economics: the added re-timing never loses money under TOU.
        if combined.advantage(&scheme) >= plain.advantage(&scheme) {
            profit_gain_confirmed += 1;
        }

        // Detection: the distribution distortion of the under-report stage
        // survives the permutation, so the KLD detector family still sees
        // the combined attack.
        let kld = KldDetector::train(&split.train, 10, SignificanceLevel::Ten)
            .expect("valid training matrix");
        let conditioned =
            ConditionedKldDetector::train_tou(&split.train, &plan, 10, SignificanceLevel::Ten)
                .expect("valid training matrix");
        if kld.is_anomalous(&combined.reported) || conditioned.is_anomalous(&combined.reported) {
            combined_caught += 1;
        }
        evaluated += 1;
    }
    assert!(evaluated >= 10, "most consumers evaluated");
    assert_eq!(
        profit_gain_confirmed, evaluated,
        "re-timing must never reduce the combined profit"
    );
    assert!(
        combined_caught * 3 >= evaluated * 2,
        "the detector family should catch most combined attacks \
         ({combined_caught}/{evaluated})"
    );
}

#[test]
fn permutation_invariance_extends_to_combined_vectors() {
    // The KLD score of the combined vector equals that of its stage-1
    // vector: the tariff re-timing is invisible to the unconditioned
    // detector, exactly like the pure swap (the paper's §VIII-F.3 point).
    let data = SyntheticDataset::generate(&DatasetConfig::small(3, 16, 21));
    let split = data.split(0, 14).expect("16 weeks generated");
    let actual = split.test.week_vector(0);
    let model = ArimaModel::fit(
        split.train.flat(),
        ArimaSpec::new(2, 0, 1).expect("static order"),
    )
    .expect("synthetic history fits");
    let ctx = InjectionContext {
        train: &split.train,
        actual_week: &actual,
        model: &model,
        confidence: 0.95,
        start_slot: 14 * SLOTS_PER_WEEK,
    };
    let plan = TouPlan::ireland_nightsaver();
    let kld = KldDetector::train(&split.train, 10, SignificanceLevel::Ten).expect("valid");
    let mut rng = StdRng::seed_from_u64(3);
    let plain = integrated_arima_attack(&ctx, Direction::UnderReport, &mut rng);
    let mut rng = StdRng::seed_from_u64(3);
    let combined = under_report_and_shift(&ctx, &plan, &mut rng);
    assert!(
        (kld.score(&plain.reported).expect("shared edges")
            - kld.score(&combined.reported).expect("shared edges"))
        .abs()
            < 1e-12,
        "re-timing must not change the unconditioned KLD score"
    );
}
