//! The paper's Propositions 1 and 2 as executable, property-based
//! theorems over randomly generated attack vectors and feeder states.

use proptest::prelude::*;

use fdeta::attacks::AttackVector;
use fdeta::gridsim::balance::{BalanceChecker, Snapshot};
use fdeta::gridsim::{GridTopology, MeterDeployment, PricingScheme};
use fdeta::tsdata::week::WeekVector;
use fdeta::tsdata::SLOTS_PER_WEEK;

/// Strategy: a pair of demand series (actual, reported) of one day's
/// length, embedded into week vectors (rest zero), values in [0, 5] kW.
fn demand_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    let day = 48usize;
    (
        proptest::collection::vec(0.0f64..5.0, day),
        proptest::collection::vec(0.0f64..5.0, day),
    )
}

fn to_week(mut day: Vec<f64>) -> WeekVector {
    day.resize(SLOTS_PER_WEEK, 0.0);
    WeekVector::new(day).expect("bounded non-negative values")
}

proptest! {
    /// Proposition 1: any vector with positive advantage under-reports at
    /// some time — under every pricing scheme.
    #[test]
    fn proposition_1_holds((actual, reported) in demand_pair()) {
        for scheme in [PricingScheme::flat_default(), PricingScheme::tou_ireland()] {
            let vector = AttackVector {
                actual: to_week(actual.clone()),
                reported: to_week(reported.clone()),
                start_slot: 0,
            };
            if vector.advantage(&scheme).is_gain() {
                prop_assert!(
                    vector.under_reports_somewhere(),
                    "positive advantage without under-reporting"
                );
            }
        }
    }

    /// Proposition 2: a theft that passes the balance check at a trusted
    /// meter requires some neighbour to over-report at the same slot.
    #[test]
    fn proposition_2_holds(
        (mallory_actual, mallory_reported) in demand_pair(),
        neighbor_actual in proptest::collection::vec(0.0f64..5.0, 48),
        deltas in proptest::collection::vec(-1.0f64..1.0, 48),
    ) {
        // Build a neighbour report; the feeder balances at slot t iff
        // mallory_delta(t) + neighbor_delta(t) == 0.
        let neighbor_reported: Vec<f64> = neighbor_actual
            .iter()
            .zip(&deltas)
            .map(|(a, d)| (a + d).max(0.0))
            .collect();
        let scheme = PricingScheme::flat_default();
        let mallory = AttackVector {
            actual: to_week(mallory_actual.clone()),
            reported: to_week(mallory_reported.clone()),
            start_slot: 0,
        };
        if !mallory.advantage(&scheme).is_gain() {
            return Ok(()); // not a theft; nothing to check
        }
        // Per-slot balance over the first day.
        let balanced = (0..48).all(|t| {
            let actual = mallory_actual[t] + neighbor_actual[t];
            let reported = mallory_reported[t] + neighbor_reported[t];
            (actual - reported).abs() <= 1e-9
        });
        if balanced {
            let neighbor_over = (0..48).any(|t| neighbor_reported[t] > neighbor_actual[t]);
            prop_assert!(
                neighbor_over,
                "balanced theft without any neighbour over-report"
            );
        }
    }

    /// The grid substrate agrees with the direct arithmetic: a random
    /// subset of consumers under-reporting fails the trusted root check
    /// exactly when the total deficit exceeds tolerance.
    #[test]
    fn balance_check_matches_arithmetic(
        reports in proptest::collection::vec((0.1f64..3.0, 0.0f64..3.0), 6)
    ) {
        let mut grid = GridTopology::new();
        let bus = grid.add_internal(grid.root()).expect("root is internal");
        let mut snapshot = Snapshot::new();
        let mut actual_sum = 0.0;
        let mut reported_sum = 0.0;
        for (i, (actual, reported)) in reports.iter().enumerate() {
            let node = grid.add_consumer(bus, format!("c{i}")).expect("bus is internal");
            snapshot.set_consumer(&grid, node, *actual, *reported).expect("consumer");
            actual_sum += actual;
            reported_sum += reported;
        }
        let deployment = MeterDeployment::root_only(&grid);
        let checker = BalanceChecker::default();
        let status = checker
            .check_node(&grid, &deployment, &snapshot, grid.root())
            .expect("root is metered")
            .expect("root has a meter");
        let expected_failure = (actual_sum - reported_sum).abs() > checker.tolerance_kw;
        prop_assert_eq!(status.is_failure(), expected_failure);
    }
}
