//! The streaming correctness anchor as executable properties: ingesting a
//! corpus tick-by-tick through [`StreamScorer`] reproduces the batch
//! engine's scores *bit-identically* — on clean corpora and across
//! fault-injected, repaired (PR 3) series — and alert tiers are monotone
//! in the score.

use proptest::prelude::*;

use fdeta::cer_synth::{DatasetConfig, FaultModel, SyntheticDataset};
use fdeta::detect::prelude::*;
use fdeta::tsdata::SLOTS_PER_WEEK;

fn fast_config() -> EvalConfig {
    EvalConfig {
        threads: 1,
        ..EvalConfig::fast(8, 2)
    }
}

/// Streams every artifact's held-out weeks tick-by-tick and asserts each
/// weekly digest is bit-identical to the batch detectors on the same
/// week. Panics on divergence (proptest records a panic as a failing
/// case, and the offline proptest stand-in asserts directly anyway).
fn assert_stream_matches_batch(engine: &EvalEngine) {
    for (index, artifact) in engine.artifacts().iter().enumerate() {
        let Some(test) = artifact.test_matrix() else {
            continue;
        };
        let mut scorer =
            StreamScorer::new(artifact, &ServeConfig::default()).expect("default tiers are valid");
        let mut summaries = Vec::new();
        for w in 0..test.weeks() {
            for &reading in test.week_vector(w).as_slice() {
                if let Some(summary) = scorer.ingest(reading).expect("valid corpus readings") {
                    summaries.push(summary);
                }
            }
        }
        assert_eq!(summaries.len(), test.weeks());
        for (summary, w) in summaries.iter().zip(0..test.weeks()) {
            let week = test.week_vector(w);
            let batch_kld = artifact.kld_base().score(&week).expect("shared edges");
            assert_eq!(
                summary.kld_score.to_bits(),
                batch_kld.to_bits(),
                "consumer {index} week {w}: stream KLD diverged from batch"
            );
            let mut batch_excess = f64::NEG_INFINITY;
            artifact
                .conditioned_base()
                .visit_band_scores(&week, None, |s, t| batch_excess = batch_excess.max(s - t))
                .expect("shared edges");
            assert_eq!(
                summary.worst_band_excess.to_bits(),
                batch_excess.to_bits(),
                "consumer {index} week {w}: stream band excess diverged from batch"
            );
            match (summary.arima_violations, artifact.arima_detector()) {
                (Some(v), Some(det)) => assert_eq!(v as usize, det.violations(&week)),
                (None, None) => {}
                (stream, batch) => panic!(
                    "consumer {index}: stream arima presence {:?} vs batch {:?}",
                    stream.is_some(),
                    batch.is_some()
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tick-by-tick ingest of a clean synthetic corpus is bit-identical
    /// to the batch engine path, for any corpus seed.
    #[test]
    fn stream_matches_batch_on_clean_corpora(seed in 0u64..1_000_000, consumers in 2usize..4) {
        let data = SyntheticDataset::generate(&DatasetConfig::small(consumers, 11, seed));
        let engine = EvalEngine::train(&data, &fast_config()).expect("clean corpus trains");
        assert_stream_matches_batch(&engine);
    }

    /// The same bit-identity holds across a fault-injected corpus after
    /// repair: artifacts trained by the robustness layer (PR 3) stream
    /// their repaired held-out weeks to the same bits the batch path
    /// scores them.
    #[test]
    fn stream_matches_batch_on_repaired_corpora(seed in 0u64..1_000_000) {
        let data = SyntheticDataset::generate(&DatasetConfig::small(3, 12, seed));
        let (observed, _log) = FaultModel::dirty(seed ^ 0xD1E7).degrade(&data).expect("degrades");
        let robust = RobustEngine::train(
            &observed,
            &fast_config(),
            &RobustnessConfig::default(),
        )
        .expect("robust training completes");
        assert_stream_matches_batch(robust.engine());
    }

    /// Alert tiers are monotone in the score: among alerts raised by the
    /// same detector, a higher score never carries a lower tier.
    #[test]
    fn alert_tiers_monotone_in_score(
        seed in 0u64..1_000_000,
        factors in proptest::collection::vec(1.0f64..6.0, 2..5),
    ) {
        let data = SyntheticDataset::generate(&DatasetConfig::small(2, 11, seed));
        let engine = EvalEngine::train(&data, &fast_config()).expect("clean corpus trains");
        let artifact = &engine.artifacts()[0];
        let test = artifact.test_matrix().expect("held-out weeks");
        let week = test.week_vector(0);
        // Replay the same held-out week at each scale factor; collect the
        // unconditioned-KLD alerts it produces.
        let mut kld_alerts: Vec<AlertEvent> = Vec::new();
        let mut scorer = StreamScorer::new(artifact, &ServeConfig::default())
            .expect("default tiers are valid");
        for factor in factors {
            for &reading in week.as_slice() {
                scorer.ingest(reading * factor).expect("scaled readings stay valid");
            }
            kld_alerts.extend(
                scorer
                    .alerts()
                    .iter()
                    .filter(|a| a.detector == StreamDetector::Kld),
            );
        }
        kld_alerts.sort_by(|a, b| a.score.total_cmp(&b.score));
        for pair in kld_alerts.windows(2) {
            prop_assert!(
                pair[0].tier <= pair[1].tier,
                "score {} got tier {:?} but higher score {} got {:?}",
                pair[0].score,
                pair[0].tier,
                pair[1].score,
                pair[1].tier
            );
        }
    }
}

/// Deterministic spot check (not property-based) that the streaming path
/// really exercises the sliding window mid-week: a window straddling two
/// held-out weeks scores identically to a batch score of those 336 values.
#[test]
fn mid_week_sliding_window_matches_batch() {
    let data = SyntheticDataset::generate(&DatasetConfig::small(2, 11, 4242));
    let engine = EvalEngine::train(&data, &fast_config()).expect("clean corpus trains");
    let artifact = &engine.artifacts()[0];
    let flat = artifact.test_matrix().expect("held-out weeks").flat();
    let mut scorer =
        StreamScorer::new(artifact, &ServeConfig::default()).expect("default tiers are valid");
    let ticks = SLOTS_PER_WEEK + SLOTS_PER_WEEK / 3;
    for &reading in &flat[..ticks] {
        scorer.ingest(reading).expect("valid corpus readings");
    }
    let window = fdeta::tsdata::WeekVector::new(flat[ticks - SLOTS_PER_WEEK..ticks].to_vec())
        .expect("corpus readings are valid");
    let batch = artifact.kld_base().score(&window).expect("shared edges");
    assert_eq!(
        scorer.kld_score().expect("filled window").to_bits(),
        batch.to_bits()
    );
}
