//! Integration: the CER text format is a faithful interchange — a detector
//! trained on a corpus that has round-tripped through the on-disk format
//! behaves identically.

use std::io::Cursor;

use fdeta::cer_synth::{DatasetConfig, SyntheticDataset};
use fdeta::detect::{Detector, KldDetector, SignificanceLevel};

#[test]
fn detector_is_invariant_under_csv_roundtrip() {
    let data = SyntheticDataset::generate(&DatasetConfig::small(5, 10, 77));
    let mut buf = Vec::new();
    data.write_cer(&mut buf).expect("in-memory write");
    let restored = SyntheticDataset::from_cer_reader(Cursor::new(buf)).expect("parse back");
    assert_eq!(restored.len(), data.len());

    for index in 0..data.len() {
        let original_split = data.split(index, 8).expect("10 weeks");
        let restored_split = restored.split(index, 8).expect("10 weeks");
        let original =
            KldDetector::train(&original_split.train, 10, SignificanceLevel::Five).expect("train");
        let roundtrip =
            KldDetector::train(&restored_split.train, 10, SignificanceLevel::Five).expect("train");
        // Thresholds agree to printing precision of the format.
        assert!(
            (original.threshold() - roundtrip.threshold()).abs() < 1e-9,
            "thresholds diverged after round trip"
        );
        for w in 0..original_split.test.weeks() {
            let a = original.assess(&original_split.test.week_vector(w));
            let b = roundtrip.assess(&restored_split.test.week_vector(w));
            assert_eq!(a.anomalous, b.anomalous, "verdict flipped after round trip");
        }
    }
}

#[test]
fn loader_handles_real_cer_shaped_files() {
    // A hand-written fragment in the exact ISSDA field layout:
    // meter_id, DDDSS day-slot code, kWh reading.
    let fragment = "\
1392,19501,0.14
1392,19502,0.138
1392,19503,0.14
2119,19501,1.1
2119,19502,0.9
";
    let data = SyntheticDataset::from_cer_reader(Cursor::new(fragment)).expect("parse");
    assert_eq!(data.len(), 2);
    assert!(data.by_id(1392).is_some());
    assert!(data.by_id(2119).is_some());
    // Partial days are zero-padded to whole days.
    assert_eq!(data.by_id(1392).unwrap().series.len() % 48, 0);
}
