//! Integration: the full train → inject → detect protocol on a small
//! corpus must reproduce the paper's qualitative results.

use fdeta::cer_synth::{DatasetConfig, SyntheticDataset};
use fdeta::detect::eval::{evaluate, DetectorKind, EvalConfig, Scenario};

fn shared_eval() -> fdeta::detect::Evaluation {
    // 40 consumers × 26 weeks (24 train + attack + clean), 8 vectors: big
    // enough for stable shapes, small enough for CI.
    let data = SyntheticDataset::generate(&DatasetConfig::small(40, 26, 1234));
    let config = EvalConfig {
        bins: 10,
        ..EvalConfig::fast(24, 8)
    };
    evaluate(&data, &config).expect("protocol evaluates")
}

#[test]
fn paper_shapes_hold_end_to_end() {
    let eval = shared_eval();

    // Interval detectors are blind to the boundary-riding attacks.
    for s in [Scenario::ArimaOver, Scenario::ArimaUnder] {
        assert!(
            eval.metric1(DetectorKind::Arima, s) <= 0.1,
            "ARIMA detector should miss its namesake attack"
        );
    }
    for s in [Scenario::IntegratedOver, Scenario::IntegratedUnder] {
        assert!(
            eval.metric1(DetectorKind::Integrated, s) <= 0.2,
            "Integrated detector should miss the Integrated ARIMA attack"
        );
    }

    // The KLD detector catches the majority of Integrated ARIMA attacks.
    let kld_1b = eval
        .metric1(DetectorKind::Kld5, Scenario::IntegratedOver)
        .max(eval.metric1(DetectorKind::Kld10, Scenario::IntegratedOver));
    assert!(
        kld_1b >= 0.5,
        "KLD must catch most 1B attacks, got {kld_1b}"
    );

    // Only the conditioned variant handles the Optimal Swap.
    let cond_swap = eval.metric1(DetectorKind::CondKld10, Scenario::Swap);
    let plain_swap = eval.metric1(DetectorKind::Kld10, Scenario::Swap);
    assert!(
        cond_swap >= 0.5,
        "conditioned KLD must catch most swaps, got {cond_swap}"
    );
    assert!(
        cond_swap > plain_swap,
        "conditioning must add swap coverage"
    );

    // Energy ordering on Class 1B: ARIMA >> Integrated >= KLD.
    let arima = eval
        .metric2(DetectorKind::Arima, Scenario::ArimaOver)
        .stolen_kwh;
    let integrated = eval
        .metric2(DetectorKind::Integrated, Scenario::IntegratedOver)
        .stolen_kwh;
    let kld = eval
        .metric2(DetectorKind::Kld5, Scenario::IntegratedOver)
        .stolen_kwh
        .min(
            eval.metric2(DetectorKind::Kld10, Scenario::IntegratedOver)
                .stolen_kwh,
        );
    assert!(
        arima > integrated,
        "integrated checks must reduce 1B theft ({arima} vs {integrated})"
    );
    assert!(
        kld < integrated,
        "KLD must reduce 1B theft further ({kld} vs {integrated})"
    );

    // Class 3A/3B steals no energy; its profit is comparatively small.
    let swap = eval.metric2(DetectorKind::Kld5, Scenario::Swap);
    assert_eq!(swap.stolen_kwh, 0.0);
    let under = eval.metric2(DetectorKind::Arima, Scenario::ArimaUnder);
    assert!(
        swap.profit_dollars < under.profit_dollars,
        "load-shift profit must be small relative to under-report theft"
    );
}

#[test]
fn improvement_headline_direction() {
    let eval = shared_eval();
    let improvement = eval
        .improvement_pct(
            DetectorKind::Integrated,
            DetectorKind::Kld5,
            Scenario::IntegratedOver,
        )
        .max(eval.improvement_pct(
            DetectorKind::Integrated,
            DetectorKind::Kld10,
            Scenario::IntegratedOver,
        ));
    assert!(
        improvement > 50.0,
        "KLD should cut residual 1B theft by a large factor, got {improvement:.1}%"
    );
}

#[test]
fn evaluation_is_deterministic() {
    let data = SyntheticDataset::generate(&DatasetConfig::small(8, 14, 42));
    let config = EvalConfig {
        threads: 3,
        ..EvalConfig::fast(12, 4)
    };
    let a = evaluate(&data, &config).expect("first run");
    let b = evaluate(&data, &config).expect("second run");
    assert_eq!(a, b, "same corpus + config must give identical results");
}

#[test]
fn naive_attacks_are_caught_where_crafted_ones_slip() {
    // The contrast motivating the paper's random injections: the all-zero
    // report is flagged for every consumer by the Integrated ARIMA
    // detector the crafted attack evades, and the half-scaling report —
    // which can slip past the mean-range check when vacation weeks
    // depress the training minimum — is caught by the KLD detector's
    // distribution view.
    use fdeta::arima::{ArimaModel, ArimaSpec};
    use fdeta::attacks::{scaling_report, zero_report};
    use fdeta::detect::{Detector, IntegratedArimaDetector, KldDetector, SignificanceLevel};
    use fdeta::tsdata::SLOTS_PER_WEEK;

    let data = SyntheticDataset::generate(&DatasetConfig::small(15, 18, 77));
    let mut zero_caught = 0usize;
    let mut scale_caught = 0usize;
    let mut evaluated = 0usize;
    for index in 0..data.len() {
        let split = data.split(index, 16).expect("18 weeks generated");
        let Ok(model) = ArimaModel::fit(
            split.train.flat(),
            ArimaSpec::new(2, 0, 1).expect("static order"),
        ) else {
            continue;
        };
        let detector = IntegratedArimaDetector::new(model, &split.train, 0.95).unwrap();
        let kld = KldDetector::train(&split.train, 10, SignificanceLevel::Ten)
            .expect("valid training matrix");
        let actual = split.test.week_vector(0);
        let start = 16 * SLOTS_PER_WEEK;
        zero_caught += usize::from(detector.is_anomalous(&zero_report(&actual, start).reported));
        scale_caught +=
            usize::from(kld.is_anomalous(&scaling_report(&actual, 0.5, start).reported));
        evaluated += 1;
    }
    assert_eq!(
        zero_caught, evaluated,
        "all-zero reports must always be flagged"
    );
    assert!(
        scale_caught * 10 >= evaluated * 8,
        "half-scaling must be flagged by KLD for the large majority \
         ({scale_caught}/{evaluated})"
    );
}
