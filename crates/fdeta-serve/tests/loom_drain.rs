//! Loom model check of `Fleet::drain_round`'s claim/complete protocol.
//!
//! The parallel drain coordinates its workers exactly like the batch
//! engine: slots are claimed off a [`WorkQueue`] and each claimed slot's
//! result lands in a shared result buffer behind a mutex. There is no
//! abort path — a slot whose reading is bad records a *fault* in its own
//! result cell and the remaining claims proceed untouched. These tests
//! mirror that structure with loom's instrumented primitives (the queue
//! itself swaps to loom atomics via the detect crate's sync shim) and
//! exhaust every interleaving for a small fleet:
//!
//! 1. each slot is drained at most once, and every slot's result is
//!    present and equals the serial outcome — the determinism
//!    `parallel_and_serial_rounds_agree` samples, proved over all
//!    schedules;
//! 2. with a bad reading in the round, every slot is either ticked or
//!    reported faulted — never silently dropped — and healthy slots
//!    always complete: fault isolation holds under every schedule.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p fdeta-serve --test loom_drain --release
//! ```
//!
//! Without `--cfg loom` this file compiles to nothing, so the ordinary
//! test suite is unaffected.
#![cfg(loom)]

use loom::sync::{Arc, Mutex};
use loom::thread;

use fdeta_detect::WorkQueue;

/// Every slot's result is written exactly once and matches the serial
/// drain, in every interleaving of two workers over three slots.
#[test]
fn drain_round_outcome_is_schedule_independent() {
    loom::model(|| {
        const N: usize = 3;
        let readings = [0.5f64, 1.5, 2.5];
        let queue = Arc::new(WorkQueue::new(N));
        let completed = Arc::new(Mutex::new([None::<f64>; N]));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let completed = Arc::clone(&completed);
                thread::spawn(move || {
                    while let Some(slot) = queue.claim() {
                        // Stand-in for `StreamScorer::ingest`: any pure
                        // function of the slot's reading.
                        let scored = readings[slot] * 2.0;
                        let mut done = completed.lock().unwrap();
                        assert!(done[slot].is_none(), "slot {slot} drained twice");
                        done[slot] = Some(scored);
                        drop(done);
                        queue.complete();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let done = completed.lock().unwrap();
        for (slot, &value) in done.iter().enumerate() {
            assert_eq!(
                value,
                Some(readings[slot] * 2.0),
                "slot {slot} lost or corrupted"
            );
        }
        assert_eq!(queue.completed(), N);
    });
}

/// The per-tick outcome a drain worker records: the loom mirror of
/// `fdeta_serve::SlotTick`, reduced to what the invariant needs.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Outcome {
    Ticked(u64),
    Faulted,
}

/// Fault isolation: with a bad reading in the round, every slot is either
/// ticked or reported faulted — never silently dropped — the bad slot
/// always surfaces as the fault, healthy slots always carry their scored
/// result, and the queue fully quiesces (no abort), in every
/// interleaving of two workers over three slots.
#[test]
fn every_slot_is_ticked_or_faulted_never_dropped() {
    loom::model(|| {
        const N: usize = 3;
        const BAD: usize = 1;
        let readings = [0.5f64, f64::NAN, 2.5];
        let queue = Arc::new(WorkQueue::new(N));
        let results = Arc::new(Mutex::new([None::<Outcome>; N]));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let results = Arc::clone(&results);
                thread::spawn(move || {
                    while let Some(slot) = queue.claim() {
                        // Stand-in for `Fleet::tick_slot`: validate, then
                        // score or fault — never abort the queue.
                        let reading = readings[slot];
                        let outcome = if reading.is_finite() && reading >= 0.0 {
                            Outcome::Ticked(reading.to_bits())
                        } else {
                            Outcome::Faulted
                        };
                        let mut done = results.lock().unwrap();
                        assert!(done[slot].is_none(), "slot {slot} drained twice");
                        done[slot] = Some(outcome);
                        drop(done);
                        queue.complete();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let done = results.lock().unwrap();
        for (slot, &outcome) in done.iter().enumerate() {
            let expected = if slot == BAD {
                Outcome::Faulted
            } else {
                Outcome::Ticked(readings[slot].to_bits())
            };
            assert_eq!(outcome, Some(expected), "slot {slot} dropped or wrong");
        }
        assert_eq!(queue.completed(), N, "queue did not quiesce");
        assert!(!queue.is_aborted(), "fault isolation must never abort");
        assert_eq!(queue.claim(), None, "claims past a drained queue");
    });
}
