//! Loom model check of `Fleet::drain_round`'s claim/complete/abort
//! protocol.
//!
//! The parallel drain coordinates its workers exactly like the batch
//! engine: slots are claimed off a [`WorkQueue`], each claimed slot's
//! result lands in a shared `completed` buffer behind a mutex, and the
//! first invalid reading aborts the round while recording the error.
//! These tests mirror that structure with loom's instrumented primitives
//! (the queue itself swaps to loom atomics via the detect crate's sync
//! shim) and exhaust every interleaving for a small fleet:
//!
//! 1. each slot is drained at most once, and absent an abort every slot's
//!    result is present and equals the serial outcome — the determinism
//!    `parallel_and_serial_rounds_agree` samples, proved over all
//!    schedules;
//! 2. a bad reading always records itself as the round's first failure
//!    and quiesces the queue — no claim succeeds after the abort flag is
//!    visible.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p fdeta-serve --test loom_drain --release
//! ```
//!
//! Without `--cfg loom` this file compiles to nothing, so the ordinary
//! test suite is unaffected.
#![cfg(loom)]

use loom::sync::{Arc, Mutex};
use loom::thread;

use fdeta_detect::WorkQueue;

/// Every slot's result is written exactly once and matches the serial
/// drain, in every interleaving of two workers over three slots.
#[test]
fn drain_round_outcome_is_schedule_independent() {
    loom::model(|| {
        const N: usize = 3;
        let readings = [0.5f64, 1.5, 2.5];
        let queue = Arc::new(WorkQueue::new(N));
        let completed = Arc::new(Mutex::new([None::<f64>; N]));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let completed = Arc::clone(&completed);
                thread::spawn(move || {
                    while let Some(slot) = queue.claim() {
                        // Stand-in for `StreamScorer::ingest`: any pure
                        // function of the slot's reading.
                        let scored = readings[slot] * 2.0;
                        let mut done = completed.lock().unwrap();
                        assert!(done[slot].is_none(), "slot {slot} drained twice");
                        done[slot] = Some(scored);
                        drop(done);
                        queue.complete();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let done = completed.lock().unwrap();
        for (slot, &value) in done.iter().enumerate() {
            assert_eq!(
                value,
                Some(readings[slot] * 2.0),
                "slot {slot} lost or corrupted"
            );
        }
        assert_eq!(queue.completed(), N);
    });
}

/// A bad reading aborts the round: the failing slot records itself as the
/// first failure, the queue quiesces, and the slots that did complete
/// still carry correct results.
#[test]
fn bad_reading_aborts_and_records_first_failure() {
    loom::model(|| {
        const N: usize = 3;
        const BAD: usize = 1;
        let queue = Arc::new(WorkQueue::new(N));
        let completed = Arc::new(Mutex::new([false; N]));
        let failure = Arc::new(Mutex::new(None::<usize>));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let completed = Arc::clone(&completed);
                let failure = Arc::clone(&failure);
                thread::spawn(move || {
                    while let Some(slot) = queue.claim() {
                        if slot == BAD {
                            queue.abort();
                            let mut first = failure.lock().unwrap();
                            if first.is_none() {
                                *first = Some(slot);
                            }
                        } else {
                            completed.lock().unwrap()[slot] = true;
                            queue.complete();
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*failure.lock().unwrap(), Some(BAD), "failure not recorded");
        assert!(queue.is_aborted());
        assert_eq!(queue.claim(), None, "claim succeeded after abort");
    });
}
