//! Degraded-mode fleet serving: fault isolation, quarantine, recovery.
//!
//! The contract under test: a tick round with `k` bad readings completes
//! the other `len - k` ticks and reports exactly `k` fleet-ordered
//! faults — identically whether the round drains on one thread or many.
//! On top of that, the per-meter health ladder: repeated bad ticks walk
//! Healthy → Suspect → Quarantined, a stuck meter (bit-identical positive
//! readings) quarantines even though each reading is individually valid,
//! quarantined meters keep their window position via gap ticks without
//! being scored, and recovery walks back through Probation.

use fdeta_cer_synth::{DatasetConfig, SyntheticDataset};
use fdeta_detect::prelude::*;
use fdeta_serve::{Fleet, RoundOutcome, ServeError, TickFault};
use fdeta_tsdata::SLOTS_PER_WEEK;

const CONSUMERS: usize = 6;

fn corpus(seed: u64) -> (SyntheticDataset, EvalConfig) {
    let data = SyntheticDataset::generate(&DatasetConfig::small(CONSUMERS, 12, seed));
    let config = EvalConfig {
        threads: 1,
        ..EvalConfig::fast(8, 2)
    };
    (data, config)
}

fn fleet(data: &SyntheticDataset, config: &EvalConfig, threads: usize) -> Fleet {
    let engine = EvalEngine::train(data, config).expect("train");
    Fleet::from_engine(&engine, &ServeConfig::default(), threads).expect("fleet")
}

fn fleet_with(
    data: &SyntheticDataset,
    config: &EvalConfig,
    health: &HealthConfig,
    threads: usize,
) -> Fleet {
    let engine = EvalEngine::train(data, config).expect("train");
    Fleet::from_engine_with(&engine, &ServeConfig::default(), health, threads).expect("fleet")
}

/// The reading of consumer-slot `c` at stream tick `t`, cycling the
/// consumer's synthetic series past its end.
fn reading(data: &SyntheticDataset, config: &EvalConfig, c: usize, t: usize) -> f64 {
    let series = data.consumer(c).series.as_slice();
    series[(config.train_weeks * SLOTS_PER_WEEK + t) % series.len()]
}

/// The regression pinned by the issue: a round with `k` bad readings
/// returns `len - k` completed ticks plus `k` fleet-ordered faults, and
/// the whole outcome is identical across 1 and N drain threads.
#[test]
fn k_bad_readings_complete_the_rest_identically_across_thread_counts() {
    let (data, config) = corpus(11);
    let serial = fleet(&data, &config, 1);
    let parallel = fleet(&data, &config, 4);
    let bad_slots = [1usize, 3, 4];
    let bad_values = [f64::NAN, -2.5, f64::INFINITY];

    let mut last: Option<(RoundOutcome, RoundOutcome)> = None;
    for t in 0..SLOTS_PER_WEEK {
        let mut readings: Vec<f64> = (0..CONSUMERS)
            .map(|c| reading(&data, &config, c, t))
            .collect();
        // One mid-week round carries the bad readings.
        let poisoned = t == SLOTS_PER_WEEK / 2;
        if poisoned {
            for (&slot, &value) in bad_slots.iter().zip(&bad_values) {
                readings[slot] = value;
            }
        }
        let a = serial.ingest_round(&readings).expect("serial round");
        let b = parallel.ingest_round(&readings).expect("parallel round");
        assert_eq!(a, b, "tick {t}: serial and parallel outcomes diverged");
        if poisoned {
            assert_eq!(a.completed, CONSUMERS - bad_slots.len());
            assert_eq!(a.faults.len(), bad_slots.len());
            for ((id, fault), &slot) in a.faults.iter().zip(&bad_slots) {
                assert_eq!(*id, serial.consumers()[slot], "faults keep fleet order");
                assert!(
                    matches!(fault, TickFault::Invalid { .. }),
                    "bad reading surfaces as Invalid, got {fault:?}"
                );
            }
        } else {
            assert_eq!(a.completed, CONSUMERS, "tick {t}: clean round faulted");
            assert!(a.faults.is_empty());
        }
        last = Some((a, b));
    }

    // The week still closes for every consumer; the three poisoned meters
    // scored their windows over 335 observed ticks.
    let (a, _) = last.expect("rounds ran");
    assert_eq!(a.summaries.len(), CONSUMERS);
    for (id, summary) in &a.summaries {
        let expected = if bad_slots
            .iter()
            .any(|&slot| serial.consumers()[slot] == *id)
        {
            SLOTS_PER_WEEK as u32 - 1
        } else {
            SLOTS_PER_WEEK as u32
        };
        assert_eq!(summary.observed_ticks, expected, "consumer {id}");
    }
    let health = serial.health();
    assert_eq!(health.gap_ticks, bad_slots.len() as u64);
    assert_eq!(health.healthy, CONSUMERS, "isolated faults do not escalate");
}

/// Missing readings via the observation mask behave like invalid ones:
/// faults in fleet order, everyone else completes.
#[test]
fn missing_readings_are_masked_gaps() {
    let (data, config) = corpus(12);
    let fleet = fleet(&data, &config, 2);
    let readings: Vec<f64> = (0..CONSUMERS)
        .map(|c| reading(&data, &config, c, 0))
        .collect();
    let mut observed = vec![true; CONSUMERS];
    observed[2] = false;
    observed[5] = false;
    let outcome = fleet
        .ingest_round_observed(&readings, &observed)
        .expect("round");
    assert_eq!(outcome.completed, CONSUMERS - 2);
    let ids: Vec<u32> = outcome.faults.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, vec![fleet.consumers()[2], fleet.consumers()[5]]);
    assert!(outcome
        .faults
        .iter()
        .all(|(_, f)| matches!(f, TickFault::Missing)));

    // A wrong-length mask is a round-level error, like a wrong-length
    // batch.
    assert!(matches!(
        fleet.ingest_round_observed(&readings, &[true; 2]),
        Err(ServeError::BatchLen { got: 2, .. })
    ));
}

/// Consecutive bad ticks escalate Healthy → Suspect → Quarantined; once
/// quarantined the meter's reading is ignored (fault: Quarantined) but
/// its window position keeps advancing; sustained good readings walk back
/// through Probation to Healthy.
#[test]
fn health_ladder_escalates_and_recovers() {
    let (data, config) = corpus(13);
    let health_config = HealthConfig {
        suspect_after: 2,
        quarantine_after: 4,
        probation_after: 3,
        heal_after: 6,
        stuck_after: 5,
    };
    let fleet = fleet_with(&data, &config, &health_config, 1);
    let sick = 0usize;
    let sick_id = fleet.consumers()[sick];

    let round = |t: usize, poison: bool| -> RoundOutcome {
        let mut readings: Vec<f64> = (0..CONSUMERS)
            .map(|c| reading(&data, &config, c, t))
            .collect();
        if poison {
            readings[sick] = f64::NAN;
        }
        fleet.ingest_round(&readings).expect("round")
    };

    // One bad tick: still Healthy. Two: Suspect. Four: Quarantined. The
    // aggregate counters must track every transition.
    let mut t = 0;
    for (healthy, suspect, quarantined) in [
        (CONSUMERS, 0, 0),
        (CONSUMERS - 1, 1, 0),
        (CONSUMERS - 1, 1, 0),
        (CONSUMERS - 1, 0, 1),
    ] {
        let outcome = round(t, true);
        t += 1;
        assert_eq!(outcome.faults.len(), 1);
        let health = fleet.health();
        assert_eq!(
            (health.healthy, health.suspect, health.quarantined),
            (healthy, suspect, quarantined),
            "after bad tick {t}"
        );
    }

    // While quarantined, even valid readings are not scored: the fault is
    // Quarantined, the gap count grows, the window position advances.
    let ticks_before = fleet.health().ticks;
    let outcome = round(t, false);
    t += 1;
    assert_eq!(outcome.completed, CONSUMERS - 1);
    assert!(matches!(outcome.faults[0], (id, TickFault::Quarantined) if id == sick_id));
    assert_eq!(fleet.health().ticks, ticks_before + CONSUMERS as u64);

    // Good readings: probation after 3 (one already served above), then
    // fully healthy at 6.
    for _ in 0..2 {
        round(t, false);
        t += 1;
    }
    assert_eq!(fleet.health().probation, 1, "{:?}", fleet.health());
    for _ in 0..3 {
        round(t, false);
        t += 1;
    }
    let health = fleet.health();
    assert_eq!(health.healthy, CONSUMERS, "{health:?}");
    assert_eq!(health.quarantined, 0);

    // Once healthy again, ticks score normally.
    let outcome = round(t, false);
    assert_eq!(outcome.completed, CONSUMERS);
}

/// A stuck meter — the same positive reading repeated — quarantines after
/// `stuck_after` ticks even though every reading is individually valid,
/// and a probation relapse (one bad tick) goes straight back to
/// quarantine.
#[test]
fn stuck_meters_quarantine_and_probation_is_one_strike() {
    let (data, config) = corpus(14);
    let health_config = HealthConfig {
        suspect_after: 2,
        quarantine_after: 4,
        probation_after: 2,
        heal_after: 8,
        stuck_after: 4,
    };
    let fleet = fleet_with(&data, &config, &health_config, 1);
    let stuck = 1usize;
    let stuck_id = fleet.consumers()[stuck];

    let mut outcome = RoundOutcome::default();
    for t in 0..4 {
        let mut readings: Vec<f64> = (0..CONSUMERS)
            .map(|c| reading(&data, &config, c, t))
            .collect();
        readings[stuck] = 1.25; // bit-identical every round
        outcome = fleet.ingest_round(&readings).expect("round");
    }
    assert_eq!(fleet.health().quarantined, 1, "stuck meter not caught");
    assert!(matches!(outcome.faults[0], (id, TickFault::Quarantined) if id == stuck_id));

    // Two *moving* readings: probation.
    for t in 4..6 {
        let readings: Vec<f64> = (0..CONSUMERS)
            .map(|c| reading(&data, &config, c, t))
            .collect();
        fleet.ingest_round(&readings).expect("round");
    }
    assert_eq!(fleet.health().probation, 1);

    // One bad tick on probation: straight back to quarantine.
    let mut readings: Vec<f64> = (0..CONSUMERS)
        .map(|c| reading(&data, &config, c, 6))
        .collect();
    readings[stuck] = -1.0;
    fleet.ingest_round(&readings).expect("round");
    assert_eq!(fleet.health().quarantined, 1);
    assert_eq!(fleet.health().probation, 0);
}

/// Flat *zero* consumption is legitimate (a vacant property) and must
/// never trip the stuck detector.
#[test]
fn flat_zero_consumption_is_not_stuck() {
    let (data, config) = corpus(15);
    let health_config = HealthConfig {
        stuck_after: 3,
        ..HealthConfig::default()
    };
    let fleet = fleet_with(&data, &config, &health_config, 1);
    let vacant = 2usize;
    for t in 0..12 {
        let mut readings: Vec<f64> = (0..CONSUMERS)
            .map(|c| reading(&data, &config, c, t))
            .collect();
        readings[vacant] = 0.0;
        let outcome = fleet.ingest_round(&readings).expect("round");
        assert_eq!(outcome.completed, CONSUMERS, "tick {t}");
    }
    assert_eq!(fleet.health().healthy, CONSUMERS);
}

/// An invalid health ladder is rejected at fleet construction.
#[test]
fn invalid_health_ladders_are_config_errors() {
    let (data, config) = corpus(16);
    let engine = EvalEngine::train(&data, &config).expect("train");
    let bad = HealthConfig {
        suspect_after: 10,
        quarantine_after: 4, // suspect after quarantine: inconsistent
        ..HealthConfig::default()
    };
    assert!(matches!(
        Fleet::from_engine_with(&engine, &ServeConfig::default(), &bad, 1),
        Err(ServeError::Config(ConfigError::InvalidHealthLadder { .. }))
    ));
}
