//! Crash-safe checkpoints: kill the fleet at ANY tick, restore, continue
//! bit-identically.
//!
//! The property test is the whole contract in one sentence: an
//! uninterrupted fleet and a fleet that is checkpointed at an arbitrary
//! tick, destroyed, rebuilt from freshly warmed artifacts, and restored
//! from the checkpoint must produce **identical** outcomes for every
//! subsequent tick — summaries, alerts, faults, health counters — and
//! their end-of-run snapshots must be byte-for-byte identical files.
//! The stream carries injected faults (deterministic per-tick dropout)
//! so the restore path is exercised over gapped windows, suspect meters,
//! and mid-escalation ladder state, not just the happy path.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use fdeta_cer_synth::{DatasetConfig, SyntheticDataset};
use fdeta_detect::prelude::*;
use fdeta_serve::{Fleet, FleetSnapshot, RoundOutcome, SnapshotError};
use fdeta_tsdata::SLOTS_PER_WEEK;

const CONSUMERS: usize = 4;

fn corpus(seed: u64) -> (SyntheticDataset, EvalConfig) {
    let data = SyntheticDataset::generate(&DatasetConfig::small(CONSUMERS, 12, seed));
    let config = EvalConfig {
        threads: 1,
        ..EvalConfig::fast(8, 2)
    };
    (data, config)
}

/// A unique, self-cleaning snapshot directory per test.
struct TempDir {
    root: PathBuf,
}

impl TempDir {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("fdeta-snap-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create temp dir");
        Self { root }
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// SplitMix64: the deterministic per-(seed, tick, meter) fault coin.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fault_coin(seed: u64, tick: usize, meter: usize) -> f64 {
    let z =
        splitmix64(seed ^ (tick as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (meter as u64) << 32);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The round of readings at stream tick `t`, with deterministic injected
/// faults: a faulted meter's reading is NaN.
fn round_readings(
    data: &SyntheticDataset,
    config: &EvalConfig,
    fault_seed: u64,
    fault_rate: f64,
    t: usize,
) -> Vec<f64> {
    (0..CONSUMERS)
        .map(|c| {
            if fault_coin(fault_seed, t, c) < fault_rate {
                f64::NAN
            } else {
                let series = data.consumer(c).series.as_slice();
                series[(config.train_weeks * SLOTS_PER_WEEK + t) % series.len()]
            }
        })
        .collect()
}

fn build_fleet(engine: &EvalEngine) -> Fleet {
    Fleet::from_engine(engine, &ServeConfig::default(), 1).expect("fleet")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Kill at any tick — including tick 0, window boundaries, and
    /// mid-window — restore onto a freshly warmed fleet, and the continued
    /// run is bit-identical to one that never died.
    #[test]
    fn restore_at_any_tick_continues_bit_identically(
        corpus_seed in 0u64..200,
        kill_tick in 0usize..(SLOTS_PER_WEEK + SLOTS_PER_WEEK / 2),
        fault_seed in 0u64..200,
        fault_rate in 0.0f64..0.15,
    ) {
        let (data, config) = corpus(corpus_seed);
        let engine = EvalEngine::train(&data, &config).expect("train");
        let total = SLOTS_PER_WEEK + SLOTS_PER_WEEK / 2 + 7;
        let tmp = TempDir::new("any-tick");
        let snap_path = tmp.path("mid.snap");

        // The uninterrupted run.
        let unbroken = build_fleet(&engine);
        let mut unbroken_tail: Vec<RoundOutcome> = Vec::new();
        for t in 0..total {
            let readings = round_readings(&data, &config, fault_seed, fault_rate, t);
            let outcome = unbroken.ingest_round(&readings).expect("round");
            if t >= kill_tick {
                unbroken_tail.push(outcome);
            }
        }

        // The killed run: tick to the kill point, checkpoint, drop.
        let doomed = build_fleet(&engine);
        for t in 0..kill_tick {
            let readings = round_readings(&data, &config, fault_seed, fault_rate, t);
            doomed.ingest_round(&readings).expect("round");
        }
        doomed.checkpoint(&snap_path).expect("checkpoint");
        drop(doomed);

        // The restored run: fresh fleet from the same artifacts, resume.
        let restored = build_fleet(&engine);
        restored.restore(&snap_path).expect("restore");
        let mut restored_tail: Vec<RoundOutcome> = Vec::new();
        for t in kill_tick..total {
            let readings = round_readings(&data, &config, fault_seed, fault_rate, t);
            restored_tail.push(restored.ingest_round(&readings).expect("round"));
        }

        prop_assert_eq!(
            &unbroken_tail,
            &restored_tail,
            "outcome streams diverged after restore at tick {}",
            kill_tick
        );
        prop_assert_eq!(unbroken.health(), restored.health());
        prop_assert_eq!(
            unbroken.health().to_json(),
            restored.health().to_json()
        );
        // End-of-run snapshots: byte-for-byte identical.
        prop_assert_eq!(
            FleetSnapshot::capture(&unbroken).encode(),
            FleetSnapshot::capture(&restored).encode(),
            "end-of-run snapshots differ after restore at tick {}",
            kill_tick
        );
    }
}

#[test]
fn snapshot_file_round_trips_and_is_atomic() {
    let (data, config) = corpus(31);
    let engine = EvalEngine::train(&data, &config).expect("train");
    let fleet = build_fleet(&engine);
    for t in 0..100 {
        let readings = round_readings(&data, &config, 7, 0.05, t);
        fleet.ingest_round(&readings).expect("round");
    }
    let tmp = TempDir::new("round-trip");
    let path = tmp.path("fleet.snap");
    fleet.checkpoint(&path).expect("checkpoint");

    // Decode ↔ encode is the identity on bytes.
    let bytes = fs::read(&path).expect("read snapshot");
    let snapshot = FleetSnapshot::load(&path).expect("load");
    assert_eq!(snapshot.encode(), bytes);
    assert_eq!(snapshot.meters.len(), CONSUMERS);

    // A second checkpoint overwrites in place via tmp+rename: no stale
    // sibling left behind.
    fleet.checkpoint(&path).expect("second checkpoint");
    let entries: Vec<_> = fs::read_dir(&tmp.root)
        .expect("read dir")
        .map(|e| e.expect("entry").file_name())
        .collect();
    assert_eq!(entries.len(), 1, "tmp file must not survive: {entries:?}");
}

#[test]
fn corrupt_truncated_and_mismatched_snapshots_are_rejected() {
    let (data, config) = corpus(32);
    let engine = EvalEngine::train(&data, &config).expect("train");
    let fleet = build_fleet(&engine);
    for t in 0..50 {
        let readings = round_readings(&data, &config, 9, 0.02, t);
        fleet.ingest_round(&readings).expect("round");
    }
    let tmp = TempDir::new("reject");
    let path = tmp.path("fleet.snap");
    fleet.checkpoint(&path).expect("checkpoint");
    let bytes = fs::read(&path).expect("read");

    // One flipped byte: the checksum catches it.
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xFF;
    let bad = tmp.path("flipped.snap");
    fs::write(&bad, &flipped).expect("write");
    assert!(matches!(
        FleetSnapshot::load(&bad),
        Err(SnapshotError::Corrupt { .. })
    ));

    // Truncation is a typed rejection, not a panic.
    fs::write(&bad, &bytes[..bytes.len() / 3]).expect("truncate");
    assert!(matches!(
        FleetSnapshot::load(&bad),
        Err(SnapshotError::Corrupt { .. })
    ));

    // A snapshot for a different fleet is refused before any state is
    // touched, and the target fleet keeps serving.
    let (other_data, other_config) = corpus(33);
    let other_engine = EvalEngine::train(&other_data, &other_config).expect("train");
    let other = Fleet::from_engine(&other_engine, &ServeConfig::default(), 1).expect("fleet");
    // Same consumer count but different tick position is fine; different
    // health ladder is not.
    let strict = HealthConfig {
        suspect_after: 1,
        ..HealthConfig::default()
    };
    let mismatched =
        Fleet::from_engine_with(&other_engine, &ServeConfig::default(), &strict, 1).expect("fleet");
    assert!(matches!(
        mismatched.restore(&path),
        Err(SnapshotError::FleetMismatch { .. })
    ));
    let before = other.health();
    other.restore(&path).expect("same-shape fleet restores");
    assert_ne!(before, other.health(), "restore rewound the tick counters");
}

/// Restoring mid-window replays the ARIMA forecaster only when the
/// window is clean; a gapped window restores with the forecaster
/// suspended — either way the next boundary summary matches the
/// uninterrupted run (covered bit-exactly by the property test; this
/// pins the two code paths explicitly at a handpicked tick each).
#[test]
fn restore_handles_clean_and_gapped_windows() {
    let (data, config) = corpus(34);
    let engine = EvalEngine::train(&data, &config).expect("train");
    let tmp = TempDir::new("windows");

    for (tag, fault_rate) in [("clean", 0.0), ("gapped", 0.5)] {
        let kill = SLOTS_PER_WEEK / 3;
        let total = SLOTS_PER_WEEK + 5;
        let unbroken = build_fleet(&engine);
        let mut want = Vec::new();
        for t in 0..total {
            let readings = round_readings(&data, &config, 77, fault_rate, t);
            let out = unbroken.ingest_round(&readings).expect("round");
            if t >= kill {
                want.push(out);
            }
        }
        let doomed = build_fleet(&engine);
        for t in 0..kill {
            let readings = round_readings(&data, &config, 77, fault_rate, t);
            doomed.ingest_round(&readings).expect("round");
        }
        let path = tmp.path(&format!("{tag}.snap"));
        doomed.checkpoint(&path).expect("checkpoint");
        let restored = build_fleet(&engine);
        restored.restore(&path).expect("restore");
        let mut got = Vec::new();
        for t in kill..total {
            let readings = round_readings(&data, &config, 77, fault_rate, t);
            got.push(restored.ingest_round(&readings).expect("round"));
        }
        assert_eq!(want, got, "{tag} window diverged after restore");
    }
}

#[test]
fn sharded_checkpoint_restores_identically_to_monolithic() {
    let (data, config) = corpus(33);
    let engine = EvalEngine::train(&data, &config).expect("train");
    let fleet = build_fleet(&engine);
    for t in 0..150 {
        let readings = round_readings(&data, &config, 11, 0.08, t);
        fleet.ingest_round(&readings).expect("round");
    }
    let tmp = TempDir::new("sharded");
    let mono = tmp.path("mono.snap");
    let sharded = tmp.path("sharded.snap");
    fleet.checkpoint(&mono).expect("monolithic checkpoint");
    fleet
        .checkpoint_sharded(&sharded, 3)
        .expect("sharded checkpoint");

    // Both layouts decode to the same snapshot, and the sharded manifest
    // sits alongside its three shard files.
    let from_mono = FleetSnapshot::load(&mono).expect("load monolithic");
    let from_shards = FleetSnapshot::load(&sharded).expect("load sharded");
    assert_eq!(from_mono, from_shards);
    for shard in 0..3 {
        let mut os = sharded.as_os_str().to_os_string();
        os.push(format!(".shard{shard}"));
        assert!(PathBuf::from(os).exists(), "shard {shard} written");
    }

    // Restoring from the sharded layout continues bit-identically to
    // restoring from the monolithic one.
    let restored_mono = build_fleet(&engine);
    restored_mono.restore(&mono).expect("restore monolithic");
    let restored_shards = build_fleet(&engine);
    restored_shards.restore(&sharded).expect("restore sharded");
    for t in 150..200 {
        let readings = round_readings(&data, &config, 11, 0.08, t);
        assert_eq!(
            restored_mono.ingest_round(&readings).expect("round"),
            restored_shards.ingest_round(&readings).expect("round")
        );
    }
    assert_eq!(
        FleetSnapshot::capture(&restored_mono).encode(),
        FleetSnapshot::capture(&restored_shards).encode()
    );
}

#[test]
fn sharded_checkpoint_with_missing_or_corrupt_shard_is_rejected() {
    let (data, config) = corpus(34);
    let engine = EvalEngine::train(&data, &config).expect("train");
    let fleet = build_fleet(&engine);
    for t in 0..50 {
        let readings = round_readings(&data, &config, 5, 0.0, t);
        fleet.ingest_round(&readings).expect("round");
    }
    let tmp = TempDir::new("sharded-corrupt");
    let manifest = tmp.path("fleet.snap");
    fleet
        .checkpoint_sharded(&manifest, 2)
        .expect("sharded checkpoint");

    let shard1 = {
        let mut os = manifest.as_os_str().to_os_string();
        os.push(".shard1");
        PathBuf::from(os)
    };

    // Corrupt a shard: checksum catches it.
    let mut bytes = fs::read(&shard1).expect("read shard");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&shard1, &bytes).expect("rewrite shard");
    assert!(matches!(
        FleetSnapshot::load(&manifest),
        Err(SnapshotError::Corrupt { .. })
    ));

    // Remove it: the manifest's promise is broken.
    fs::remove_file(&shard1).expect("remove shard");
    assert!(matches!(
        FleetSnapshot::load(&manifest),
        Err(SnapshotError::Io { .. })
    ));

    // A single-shard request degrades to the monolithic layout, which
    // still loads fine.
    fleet
        .checkpoint_sharded(&manifest, 1)
        .expect("single-shard checkpoint");
    FleetSnapshot::load(&manifest).expect("monolithic fallback loads");
}
