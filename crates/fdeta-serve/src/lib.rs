//! Streaming fleet daemon over the pure detect library.
//!
//! The detect crate is a library of pure functions over owned state; this
//! crate is the thin service layer a deployment would run. A [`Fleet`]
//! owns one [`StreamScorer`] per consumer (artifacts loaded warm from the
//! [`ArtifactStore`] when a cache exists), accepts half-hour tick batches,
//! and drains them through the same [`WorkQueue`] work-stealing scheduler
//! the batch engine trains with. Completed windows surface typed
//! [`AlertEvent`]s; nothing here re-implements scoring — every number is
//! produced by the detect library and is bit-identical to the batch path.
//!
//! # Degraded mode
//!
//! At fleet scale some meter is always broken, so a bad reading is an
//! *outcome*, not an abort: every slot of a tick round is either scored
//! or reported as a fleet-ordered [`TickFault`] in the [`RoundOutcome`] —
//! healthy consumers always complete their tick (the loom model in
//! `tests/loom_drain.rs` proves no schedule can drop a slot). Each meter
//! carries a [`MeterHealth`] ladder: invalid/missing readings and stuck
//! meters escalate to quarantine, quarantined meters advance their window
//! position with cheap gap ticks ([`StreamScorer::ingest_gap`]) instead
//! of consuming histogram and forecast work, and recovery walks back
//! through probation. Completed windows with gaps score over observed
//! mass only — bit-identical to the batch masked path.
//!
//! The fleet is crash-safe: [`Fleet::checkpoint`] persists every meter's
//! sliding state, health state, and alert ladder position in one
//! versioned [`snapshot`] file, and [`Fleet::restore`] resumes a freshly
//! warmed fleet bit-identically to a run that never died.
//!
//! No I/O beyond the artifact store and checkpoints, no network: the
//! daemon's transport (socket, MQTT bridge, …) is deliberately out of
//! scope. What is in scope is everything a transport would need:
//! per-consumer routing, parallel drain, fault isolation, alert
//! collection, health monitoring, and resident-state accounting.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use fdeta_cer_synth::SyntheticDataset;
use fdeta_detect::prelude::*;
use fdeta_detect::WorkQueue;

pub mod snapshot;

pub use snapshot::{FleetSnapshot, SnapshotError, SNAPSHOT_VERSION};

/// Everything that can go wrong while serving.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid serving or evaluation configuration.
    Config(ConfigError),
    /// Training / warm-load failure.
    Eval(EvalError),
    /// A tick addressed a consumer the fleet does not track.
    UnknownConsumer(u32),
    /// A tick batch did not carry exactly one reading per consumer.
    BatchLen {
        /// Fleet size.
        expected: usize,
        /// Batch size received.
        got: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(e) => write!(f, "serve config: {e}"),
            ServeError::Eval(e) => write!(f, "fleet training: {e}"),
            ServeError::UnknownConsumer(id) => {
                write!(f, "tick for unknown consumer {id}")
            }
            ServeError::BatchLen { expected, got } => {
                write!(f, "tick batch of {got} readings for a fleet of {expected}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Config(e) => Some(e),
            ServeError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Config(e)
    }
}

impl From<EvalError> for ServeError {
    fn from(e: EvalError) -> Self {
        ServeError::Eval(e)
    }
}

/// Why one slot of a tick round was not scored. Faults are per-meter
/// outcomes; they never abort the round.
#[derive(Debug, Clone)]
pub enum TickFault {
    /// The reading arrived but was non-finite or negative.
    Invalid {
        /// The offending raw value.
        value: f64,
    },
    /// No reading arrived for this meter this tick.
    Missing,
    /// The meter is quarantined: its (possibly valid) reading was
    /// deliberately not scored; the window position advanced as a gap.
    Quarantined,
    /// Scoring itself failed at a window boundary (a corrupted artifact's
    /// divergence error) — the only fault that indicates a serving-side
    /// problem rather than a meter-side one.
    Score {
        /// The rendered scoring error.
        message: String,
    },
}

/// Equality by *bit pattern* for the offending value — `Invalid { NaN }`
/// equals `Invalid { NaN }`, matching the bit-identity discipline the
/// round-determinism tests assert.
impl PartialEq for TickFault {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (TickFault::Invalid { value: a }, TickFault::Invalid { value: b }) => {
                a.to_bits() == b.to_bits()
            }
            (TickFault::Missing, TickFault::Missing)
            | (TickFault::Quarantined, TickFault::Quarantined) => true,
            (TickFault::Score { message: a }, TickFault::Score { message: b }) => a == b,
            _ => false,
        }
    }
}

impl Eq for TickFault {}

impl std::fmt::Display for TickFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TickFault::Invalid { value } => write!(f, "invalid reading {value}"),
            TickFault::Missing => write!(f, "missing reading"),
            TickFault::Quarantined => write!(f, "meter quarantined"),
            TickFault::Score { message } => write!(f, "window scoring failed: {message}"),
        }
    }
}

/// The outcome of one meter's tick: a window summary if the tick closed a
/// scoring window, a fault if the tick was not scored, possibly both (a
/// gap tick at a window boundary still closes the window over the
/// observed mass), and the closed window's alerts.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotTick {
    /// Weekly digest, when this tick completed a window with any observed
    /// mass.
    pub summary: Option<WeekSummary>,
    /// Why the tick was not scored, if it wasn't.
    pub fault: Option<TickFault>,
    /// Alerts of the completed window (empty unless `summary` is set).
    pub alerts: Vec<AlertEvent>,
    /// The meter's post-transition health state.
    pub health: HealthState,
}

/// The outcome of draining one fleet-wide tick round.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundOutcome {
    /// Weekly digests of consumers whose tick completed a window, in
    /// fleet order (deterministic regardless of drain interleaving).
    pub summaries: Vec<(u32, WeekSummary)>,
    /// Alerts raised by those completed windows, in fleet order.
    pub alerts: Vec<AlertEvent>,
    /// Per-meter faults, in fleet order: every slot of the round is
    /// either counted in `completed` or listed here — never silently
    /// dropped, never aborting the rest of the fleet.
    pub faults: Vec<(u32, TickFault)>,
    /// Slots whose tick was scored this round (`len - faults.len()`).
    pub completed: usize,
}

/// Point-in-time fleet health counters, cheap enough for a monitoring
/// endpoint: reads only the fleet's atomic aggregates — no scorer locks,
/// no per-meter sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetHealth {
    /// Consumers tracked.
    pub meters: usize,
    /// Meters per ladder state.
    pub healthy: usize,
    /// Meters in Suspect.
    pub suspect: usize,
    /// Meters in Quarantined.
    pub quarantined: usize,
    /// Meters in Probation.
    pub probation: usize,
    /// Total ticks ingested fleet-wide.
    pub ticks: u64,
    /// Ticks not scored (bad, missing, or quarantined).
    pub gap_ticks: u64,
    /// Alert totals per tier `[low, medium, high]` since the fleet
    /// started.
    pub alerts: [u64; 3],
}

impl FleetHealth {
    /// Fraction of ticks not scored, in `[0, 1]`.
    pub fn gap_rate(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.gap_ticks as f64 / self.ticks as f64
        }
    }

    /// Byte-deterministic JSON rendering: fixed key order, integers
    /// verbatim, the gap rate at fixed six-decimal precision — two
    /// identical runs serialize identically, which the serving benchmark
    /// diffs in CI.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"meters\":{},\"healthy\":{},\"suspect\":{},\"quarantined\":{},\
             \"probation\":{},\"ticks\":{},\"gap_ticks\":{},\"gap_rate\":{:.6},\
             \"alerts\":{{\"low\":{},\"medium\":{},\"high\":{}}}}}",
            self.meters,
            self.healthy,
            self.suspect,
            self.quarantined,
            self.probation,
            self.ticks,
            self.gap_ticks,
            self.gap_rate(),
            self.alerts[0],
            self.alerts[1],
            self.alerts[2],
        );
        out
    }
}

/// One meter's serving state: the scorer, its health ladder, and its
/// alert totals per tier (the "alert ladder position" a checkpoint
/// preserves).
pub(crate) struct MeterSlot {
    pub(crate) scorer: StreamScorer,
    pub(crate) health: MeterHealth,
    pub(crate) alert_totals: [u64; 3],
}

fn tier_index(tier: AlertTier) -> usize {
    match tier {
        AlertTier::Low => 0,
        AlertTier::Medium => 1,
        AlertTier::High => 2,
    }
}

fn state_index(state: HealthState) -> usize {
    match state {
        HealthState::Healthy => 0,
        HealthState::Suspect => 1,
        HealthState::Quarantined => 2,
        HealthState::Probation => 3,
    }
}

/// Per-consumer streaming state for a whole meter fleet.
///
/// Meter slots sit behind a `Mutex` each so tick rounds can drain in
/// parallel; the trained cores inside them are `Arc`-shared with the
/// engine artifacts, so fleet memory is dominated by the per-consumer
/// sliding state that [`Fleet::state_bytes`] accounts. Monitoring
/// aggregates (ladder counts, tick/gap totals, alert totals) live in
/// atomics updated as part of each tick, so [`Fleet::health`] never
/// contends with the drain.
pub struct Fleet {
    pub(crate) slots: Vec<Mutex<MeterSlot>>,
    pub(crate) ids: Vec<u32>,
    index: BTreeMap<u32, usize>,
    threads: usize,
    pub(crate) health_config: HealthConfig,
    /// Meters per ladder state, indexed by [`state_index`]. Updated with
    /// transition deltas under each slot's lock; the *sums* are exact
    /// after every round, individual reads between concurrent ticks are
    /// transiently stale by design.
    state_counts: [AtomicUsize; 4],
    ticks_total: AtomicU64,
    gaps_total: AtomicU64,
    alert_totals: [AtomicU64; 3],
}

impl Fleet {
    /// Builds one scorer per trained artifact of `engine` with the
    /// default health ladder, draining tick rounds over `threads` workers
    /// (`0` means one worker per consumer, capped by available
    /// parallelism).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an invalid alert-tier ladder.
    pub fn from_engine(
        engine: &EvalEngine,
        serve: &ServeConfig,
        threads: usize,
    ) -> Result<Self, ServeError> {
        Self::from_engine_with(engine, serve, &HealthConfig::default(), threads)
    }

    /// As [`Fleet::from_engine`], with an explicit health ladder.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an invalid alert-tier or health ladder.
    pub fn from_engine_with(
        engine: &EvalEngine,
        serve: &ServeConfig,
        health: &HealthConfig,
        threads: usize,
    ) -> Result<Self, ServeError> {
        health.validate()?;
        let artifacts = engine.artifacts();
        let mut scorers = Vec::with_capacity(artifacts.len());
        for artifact in artifacts {
            scorers.push(StreamScorer::new(artifact, serve)?);
        }
        Ok(Self::assemble(scorers, *health, threads))
    }

    /// Builds a fleet from pre-built scorers — the simulation entry: a
    /// bench can clone one trained scorer per simulated meter. Duplicate
    /// consumer ids keep only the first slot for id-routed ticks
    /// ([`Fleet::ingest_tick`]); round draining is unaffected.
    pub fn from_scorers(scorers: Vec<StreamScorer>, threads: usize) -> Self {
        Self::assemble(scorers, HealthConfig::default(), threads)
    }

    /// As [`Fleet::from_scorers`], with an explicit health ladder.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an invalid health ladder.
    pub fn from_scorers_with(
        scorers: Vec<StreamScorer>,
        health: &HealthConfig,
        threads: usize,
    ) -> Result<Self, ServeError> {
        health.validate()?;
        Ok(Self::assemble(scorers, *health, threads))
    }

    fn assemble(scorers: Vec<StreamScorer>, health_config: HealthConfig, threads: usize) -> Self {
        let mut ids = Vec::with_capacity(scorers.len());
        let mut index = BTreeMap::new();
        for (slot, scorer) in scorers.iter().enumerate() {
            ids.push(scorer.consumer());
            index.entry(scorer.consumer()).or_insert(slot);
        }
        let threads = normalise_threads(threads, scorers.len());
        let meters = scorers.len();
        Self {
            slots: scorers
                .into_iter()
                .map(|scorer| {
                    Mutex::new(MeterSlot {
                        scorer,
                        health: MeterHealth::new(),
                        alert_totals: [0; 3],
                    })
                })
                .collect(),
            ids,
            index,
            threads,
            health_config,
            state_counts: [
                AtomicUsize::new(meters),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
            ],
            ticks_total: AtomicU64::new(0),
            gaps_total: AtomicU64::new(0),
            alert_totals: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        }
    }

    /// Warm-loads the fleet from the artifact store at `root`: a cache
    /// hit skips training entirely, a miss trains and persists for the
    /// next start. Returns the cache outcome alongside the fleet so
    /// daemons can log cold starts.
    ///
    /// # Errors
    ///
    /// [`ServeError::Eval`] when training fails, [`ServeError::Config`]
    /// for an invalid tier ladder.
    pub fn warm(
        root: &Path,
        dataset: &SyntheticDataset,
        config: &EvalConfig,
        serve: &ServeConfig,
        threads: usize,
    ) -> Result<(Self, CacheOutcome), ServeError> {
        let store = ArtifactStore::new(root);
        let (engine, outcome) = store.engine(dataset, config, None)?;
        Ok((Self::from_engine(&engine, serve, threads)?, outcome))
    }

    /// Number of consumers tracked.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the fleet tracks no consumers.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The tracked consumer ids, in fleet (batch) order.
    pub fn consumers(&self) -> &[u32] {
        &self.ids
    }

    /// The fleet's health ladder configuration.
    pub fn health_config(&self) -> &HealthConfig {
        &self.health_config
    }

    /// Routes a single consumer's tick. An invalid reading is a
    /// [`TickFault`] in the returned [`SlotTick`], not an error — only
    /// addressing failures are errors.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownConsumer`] for an untracked id.
    pub fn ingest_tick(&self, consumer: u32, reading: f64) -> Result<SlotTick, ServeError> {
        let &slot = self
            .index
            .get(&consumer)
            .ok_or(ServeError::UnknownConsumer(consumer))?;
        Ok(self.tick_slot(slot, reading, true))
    }

    /// Reports a single consumer's reading as missing this tick: the
    /// meter's health observes a bad tick and its window advances as a
    /// gap.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownConsumer`] for an untracked id.
    pub fn ingest_tick_missing(&self, consumer: u32) -> Result<SlotTick, ServeError> {
        let &slot = self
            .index
            .get(&consumer)
            .ok_or(ServeError::UnknownConsumer(consumer))?;
        Ok(self.tick_slot(slot, f64::NAN, false))
    }

    /// Drains one fleet-wide tick round — `readings[i]` is the reading of
    /// `consumers()[i]` — across the worker threads via [`WorkQueue`].
    /// Every slot is ticked exactly once: invalid readings and
    /// quarantined meters surface as fleet-ordered [`RoundOutcome::faults`]
    /// while every healthy consumer completes its tick. The serial
    /// (`threads <= 1`) and parallel paths produce identical outcomes.
    ///
    /// # Errors
    ///
    /// [`ServeError::BatchLen`] on a malformed batch — the only
    /// round-level failure left; per-meter problems are faults, not
    /// errors.
    pub fn ingest_round(&self, readings: &[f64]) -> Result<RoundOutcome, ServeError> {
        self.round(readings, None)
    }

    /// As [`Fleet::ingest_round`], with an observation mask: slots where
    /// `observed[i]` is `false` had no reading this tick (`readings[i]`
    /// is ignored) and are recorded as [`TickFault::Missing`] gaps.
    ///
    /// # Errors
    ///
    /// [`ServeError::BatchLen`] when either slice is not fleet-sized.
    pub fn ingest_round_observed(
        &self,
        readings: &[f64],
        observed: &[bool],
    ) -> Result<RoundOutcome, ServeError> {
        if observed.len() != self.slots.len() {
            return Err(ServeError::BatchLen {
                expected: self.slots.len(),
                got: observed.len(),
            });
        }
        self.round(readings, Some(observed))
    }

    fn round(
        &self,
        readings: &[f64],
        observed: Option<&[bool]>,
    ) -> Result<RoundOutcome, ServeError> {
        if readings.len() != self.slots.len() {
            return Err(ServeError::BatchLen {
                expected: self.slots.len(),
                got: readings.len(),
            });
        }
        let mut results: Vec<Option<SlotTick>> = vec![None; self.slots.len()];
        if self.threads <= 1 {
            for (slot, result) in results.iter_mut().enumerate() {
                let is_observed = observed.is_none_or(|o| o[slot]);
                *result = Some(self.tick_slot(slot, readings[slot], is_observed));
            }
        } else {
            self.drain_round(readings, observed, &mut results);
        }
        let mut outcome = RoundOutcome::default();
        for (slot, tick) in results.into_iter().enumerate() {
            // Every slot is claimed exactly once by the drain (the loom
            // model proves it), so every entry is present.
            let Some(tick) = tick else { continue };
            if let Some(summary) = tick.summary {
                outcome.summaries.push((self.ids[slot], summary));
                outcome.alerts.extend(tick.alerts);
            }
            match tick.fault {
                Some(fault) => outcome.faults.push((self.ids[slot], fault)),
                None => outcome.completed += 1,
            }
        }
        Ok(outcome)
    }

    /// The parallel drain: workers claim fleet slots off a [`WorkQueue`]
    /// until it runs dry. There is no abort path — a slot that cannot be
    /// scored records a fault in its own result cell, and the remaining
    /// claims proceed untouched.
    fn drain_round(
        &self,
        readings: &[f64],
        observed: Option<&[bool]>,
        results: &mut [Option<SlotTick>],
    ) {
        let queue = WorkQueue::new(self.slots.len());
        let results = Mutex::new(results);
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| {
                    while let Some(slot) = queue.claim() {
                        let is_observed = observed.is_none_or(|o| o[slot]);
                        let tick = self.tick_slot(slot, readings[slot], is_observed);
                        lock(&results)[slot] = Some(tick);
                        queue.complete();
                    }
                });
            }
        });
    }

    /// Ticks one meter slot: health transition, then score or gap. All
    /// slot state mutates under the slot's lock; the fleet-wide atomics
    /// take the deltas so monitoring totals stay exact between rounds.
    fn tick_slot(&self, slot: usize, reading: f64, is_observed: bool) -> SlotTick {
        let mut guard = lock(&self.slots[slot]);
        let meter = &mut *guard;
        let valid = is_observed && reading.is_finite() && reading >= 0.0;
        let before = meter.health.state();
        let (state, mut fault) = if valid {
            (
                meter.health.observe_valid(&self.health_config, reading),
                None,
            )
        } else if is_observed {
            (
                meter.health.observe_bad(&self.health_config),
                Some(TickFault::Invalid { value: reading }),
            )
        } else {
            (
                meter.health.observe_bad(&self.health_config),
                Some(TickFault::Missing),
            )
        };
        let scored = valid && state != HealthState::Quarantined;
        let result = if scored {
            meter.scorer.ingest(reading)
        } else {
            if fault.is_none() {
                fault = Some(TickFault::Quarantined);
            }
            meter.scorer.ingest_gap()
        };
        let summary = match result {
            Ok(summary) => summary,
            Err(e) => {
                fault = Some(TickFault::Score {
                    message: e.to_string(),
                });
                None
            }
        };
        let mut alerts = Vec::new();
        if summary.is_some() {
            alerts.extend_from_slice(meter.scorer.alerts());
            for alert in &alerts {
                let tier = tier_index(alert.tier);
                meter.alert_totals[tier] += 1;
                self.alert_totals[tier].fetch_add(1, Ordering::Relaxed);
            }
        }
        drop(guard);
        if state != before {
            self.state_counts[state_index(before)].fetch_sub(1, Ordering::Relaxed);
            self.state_counts[state_index(state)].fetch_add(1, Ordering::Relaxed);
        }
        self.ticks_total.fetch_add(1, Ordering::Relaxed);
        if !scored {
            self.gaps_total.fetch_add(1, Ordering::Relaxed);
        }
        SlotTick {
            summary,
            fault,
            alerts,
            health: state,
        }
    }

    /// Point-in-time health counters from the fleet's atomic aggregates —
    /// no slot locks taken, safe to call from a monitoring thread while a
    /// round drains (counts are then transiently stale by at most the
    /// in-flight ticks; between rounds they are exact).
    pub fn health(&self) -> FleetHealth {
        FleetHealth {
            meters: self.slots.len(),
            healthy: self.state_counts[0].load(Ordering::Relaxed),
            suspect: self.state_counts[1].load(Ordering::Relaxed),
            quarantined: self.state_counts[2].load(Ordering::Relaxed),
            probation: self.state_counts[3].load(Ordering::Relaxed),
            ticks: self.ticks_total.load(Ordering::Relaxed),
            gap_ticks: self.gaps_total.load(Ordering::Relaxed),
            alerts: [
                self.alert_totals[0].load(Ordering::Relaxed),
                self.alert_totals[1].load(Ordering::Relaxed),
                self.alert_totals[2].load(Ordering::Relaxed),
            ],
        }
    }

    /// Re-derives the atomic aggregates from per-slot state — used after
    /// a checkpoint restore, where the slots are authoritative.
    pub(crate) fn rebuild_aggregates(&self) {
        let mut states = [0usize; 4];
        let mut ticks = 0u64;
        let mut gaps = 0u64;
        let mut alerts = [0u64; 3];
        for slot in &self.slots {
            let meter = lock(slot);
            states[state_index(meter.health.state())] += 1;
            ticks += meter.health.ticks();
            gaps += meter.health.gap_ticks();
            for (total, &count) in alerts.iter_mut().zip(&meter.alert_totals) {
                *total += count;
            }
        }
        for (atomic, count) in self.state_counts.iter().zip(states) {
            atomic.store(count, Ordering::Relaxed);
        }
        self.ticks_total.store(ticks, Ordering::Relaxed);
        self.gaps_total.store(gaps, Ordering::Relaxed);
        for (atomic, count) in self.alert_totals.iter().zip(alerts) {
            atomic.store(count, Ordering::Relaxed);
        }
    }

    /// Total per-consumer resident state, in bytes (excludes the
    /// `Arc`-shared trained cores — see [`StreamScorer::state_bytes`]).
    pub fn state_bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|s| {
                lock(s).scorer.state_bytes()
                    + std::mem::size_of::<MeterHealth>()
                    + std::mem::size_of::<[u64; 3]>()
            })
            .sum()
    }
}

/// Poison-safe lock: a worker that panicked mid-tick leaves a consumer's
/// window state valid (every mutation in `ingest` is ordered before the
/// next await point), so the daemon keeps serving the rest of the fleet
/// rather than cascading the panic.
pub(crate) fn lock<T: ?Sized>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `0` means auto: one worker per consumer, capped by the machine.
fn normalise_threads(threads: usize, consumers: usize) -> usize {
    let cap = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if threads == 0 {
        consumers.clamp(1, cap)
    } else {
        threads.min(cap.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdeta_cer_synth::DatasetConfig;
    use fdeta_tsdata::SLOTS_PER_WEEK;

    fn fleet(threads: usize) -> (Fleet, SyntheticDataset, EvalConfig) {
        let data = SyntheticDataset::generate(&DatasetConfig::small(4, 12, 7));
        let config = EvalConfig {
            threads: 1,
            ..EvalConfig::fast(8, 2)
        };
        let engine = EvalEngine::train(&data, &config).unwrap();
        let fleet = Fleet::from_engine(&engine, &ServeConfig::default(), threads).unwrap();
        (fleet, data, config)
    }

    /// One full week of fleet-wide rounds, fed from each artifact's
    /// held-out window.
    fn weekly_rounds(fleet: &Fleet, data: &SyntheticDataset, config: &EvalConfig) -> RoundOutcome {
        let mut last = RoundOutcome::default();
        for tick in 0..SLOTS_PER_WEEK {
            let readings: Vec<f64> = (0..fleet.len())
                .map(|c| {
                    let series = data.consumer(c).series.as_slice();
                    series[config.train_weeks * SLOTS_PER_WEEK + tick]
                })
                .collect();
            last = fleet.ingest_round(&readings).unwrap();
        }
        last
    }

    #[test]
    fn parallel_and_serial_rounds_agree() {
        let (serial, data, config) = fleet(1);
        let (parallel, _, _) = fleet(4);
        let a = weekly_rounds(&serial, &data, &config);
        let b = weekly_rounds(&parallel, &data, &config);
        assert_eq!(a.summaries.len(), serial.len());
        assert_eq!(a.summaries.len(), b.summaries.len());
        assert_eq!(a.completed, serial.len());
        assert_eq!(a.completed, b.completed);
        assert!(a.faults.is_empty() && b.faults.is_empty());
        for ((id_a, sa), (id_b, sb)) in a.summaries.iter().zip(&b.summaries) {
            assert_eq!(id_a, id_b);
            assert_eq!(sa.kld_score.to_bits(), sb.kld_score.to_bits());
            assert_eq!(sa.arima_violations, sb.arima_violations);
        }
        assert_eq!(a.alerts, b.alerts);
    }

    #[test]
    fn single_tick_routing_matches_round_order() {
        let (fleet, data, config) = fleet(2);
        let ids: Vec<u32> = fleet.consumers().to_vec();
        for tick in 0..SLOTS_PER_WEEK {
            for (c, &id) in ids.iter().enumerate() {
                let series = data.consumer(c).series.as_slice();
                let reading = series[config.train_weeks * SLOTS_PER_WEEK + tick];
                let outcome = fleet.ingest_tick(id, reading).unwrap();
                assert!(outcome.fault.is_none());
                assert_eq!(outcome.summary.is_some(), tick == SLOTS_PER_WEEK - 1);
            }
        }
        assert!(matches!(
            fleet.ingest_tick(0xDEAD, 1.0),
            Err(ServeError::UnknownConsumer(0xDEAD))
        ));
    }

    #[test]
    fn malformed_batches_are_errors_bad_readings_are_faults() {
        let (fleet, _, _) = fleet(2);
        assert!(matches!(
            fleet.ingest_round(&[1.0]),
            Err(ServeError::BatchLen { got: 1, .. })
        ));
        let mut readings = vec![0.5; fleet.len()];
        readings[1] = f64::NAN;
        let outcome = fleet.ingest_round(&readings).unwrap();
        assert_eq!(outcome.completed, fleet.len() - 1);
        assert_eq!(outcome.faults.len(), 1);
        assert_eq!(outcome.faults[0].0, fleet.consumers()[1]);
        assert!(matches!(
            outcome.faults[0].1,
            TickFault::Invalid { value } if value.is_nan()
        ));
        let health = fleet.health();
        assert_eq!(health.ticks, fleet.len() as u64);
        assert_eq!(health.gap_ticks, 1);
    }

    #[test]
    fn fleet_state_is_accounted() {
        let (fleet, _, _) = fleet(1);
        let total = fleet.state_bytes();
        assert!(total > 0);
        assert!(
            total >= fleet.len() * SLOTS_PER_WEEK * std::mem::size_of::<f64>(),
            "at least the sliding windows must be accounted"
        );
    }

    #[test]
    fn health_json_is_byte_deterministic() {
        let (a, data, config) = fleet(1);
        let (b, _, _) = fleet(4);
        weekly_rounds(&a, &data, &config);
        weekly_rounds(&b, &data, &config);
        let ja = a.health().to_json();
        assert_eq!(ja, b.health().to_json());
        assert!(ja.starts_with("{\"meters\":4,"), "{ja}");
        assert!(ja.contains("\"gap_rate\":0.000000"), "{ja}");
    }
}
