//! Streaming fleet daemon over the pure detect library.
//!
//! The detect crate is a library of pure functions over owned state; this
//! crate is the thin service layer a deployment would run. A [`Fleet`]
//! owns one [`StreamScorer`] per consumer (artifacts loaded warm from the
//! [`ArtifactStore`] when a cache exists), accepts half-hour tick batches,
//! and drains them through the same [`WorkQueue`] work-stealing scheduler
//! the batch engine trains with. Completed windows surface typed
//! [`AlertEvent`]s; nothing here re-implements scoring — every number is
//! produced by the detect library and is bit-identical to the batch path.
//!
//! No I/O beyond the artifact store, no network: the daemon's transport
//! (socket, MQTT bridge, …) is deliberately out of scope. What is in
//! scope is everything a transport would need: per-consumer routing,
//! parallel drain, alert collection, and resident-state accounting.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Mutex, PoisonError};

use fdeta_cer_synth::SyntheticDataset;
use fdeta_detect::prelude::*;
use fdeta_detect::WorkQueue;
use fdeta_tsdata::TsError;

/// Everything that can go wrong while serving.
#[derive(Debug)]
pub enum ServeError {
    /// Invalid serving or evaluation configuration.
    Config(ConfigError),
    /// Training / warm-load failure.
    Eval(EvalError),
    /// A tick carried an invalid reading.
    Data(TsError),
    /// A tick addressed a consumer the fleet does not track.
    UnknownConsumer(u32),
    /// A tick batch did not carry exactly one reading per consumer.
    BatchLen {
        /// Fleet size.
        expected: usize,
        /// Batch size received.
        got: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(e) => write!(f, "serve config: {e}"),
            ServeError::Eval(e) => write!(f, "fleet training: {e}"),
            ServeError::Data(e) => write!(f, "tick rejected: {e}"),
            ServeError::UnknownConsumer(id) => {
                write!(f, "tick for unknown consumer {id}")
            }
            ServeError::BatchLen { expected, got } => {
                write!(f, "tick batch of {got} readings for a fleet of {expected}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Config(e) => Some(e),
            ServeError::Eval(e) => Some(e),
            ServeError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Config(e)
    }
}

impl From<EvalError> for ServeError {
    fn from(e: EvalError) -> Self {
        ServeError::Eval(e)
    }
}

impl From<TsError> for ServeError {
    fn from(e: TsError) -> Self {
        ServeError::Data(e)
    }
}

/// The outcome of draining one fleet-wide tick round.
#[derive(Debug, Default)]
pub struct RoundOutcome {
    /// Weekly digests of consumers whose tick completed a window, in
    /// fleet order (deterministic regardless of drain interleaving).
    pub summaries: Vec<(u32, WeekSummary)>,
    /// Alerts raised by those completed windows, in fleet order.
    pub alerts: Vec<AlertEvent>,
}

/// Per-consumer streaming state for a whole meter fleet.
///
/// Scorers sit behind a `Mutex` each so tick rounds can drain in
/// parallel; the trained cores inside them are `Arc`-shared with the
/// engine artifacts, so fleet memory is dominated by the per-consumer
/// sliding state that [`Fleet::state_bytes`] accounts.
pub struct Fleet {
    scorers: Vec<Mutex<StreamScorer>>,
    ids: Vec<u32>,
    index: BTreeMap<u32, usize>,
    threads: usize,
}

impl Fleet {
    /// Builds one scorer per trained artifact of `engine`, draining tick
    /// rounds over `threads` workers (`0` means one worker per consumer,
    /// capped by available parallelism).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an invalid alert-tier ladder.
    pub fn from_engine(
        engine: &EvalEngine,
        serve: &ServeConfig,
        threads: usize,
    ) -> Result<Self, ServeError> {
        let artifacts = engine.artifacts();
        let mut scorers = Vec::with_capacity(artifacts.len());
        let mut ids = Vec::with_capacity(artifacts.len());
        let mut index = BTreeMap::new();
        for artifact in artifacts {
            let scorer = StreamScorer::new(artifact, serve)?;
            index.insert(scorer.consumer(), scorers.len());
            ids.push(scorer.consumer());
            scorers.push(Mutex::new(scorer));
        }
        let threads = normalise_threads(threads, scorers.len());
        Ok(Self {
            scorers,
            ids,
            index,
            threads,
        })
    }

    /// Builds a fleet from pre-built scorers — the simulation entry: a
    /// bench can clone one trained scorer per simulated meter. Duplicate
    /// consumer ids keep only the first slot for id-routed ticks
    /// ([`Fleet::ingest_tick`]); round draining is unaffected.
    pub fn from_scorers(scorers: Vec<StreamScorer>, threads: usize) -> Self {
        let mut ids = Vec::with_capacity(scorers.len());
        let mut index = BTreeMap::new();
        for (slot, scorer) in scorers.iter().enumerate() {
            ids.push(scorer.consumer());
            index.entry(scorer.consumer()).or_insert(slot);
        }
        let threads = normalise_threads(threads, scorers.len());
        Self {
            scorers: scorers.into_iter().map(Mutex::new).collect(),
            ids,
            index,
            threads,
        }
    }

    /// Warm-loads the fleet from the artifact store at `root`: a cache
    /// hit skips training entirely, a miss trains and persists for the
    /// next start. Returns the cache outcome alongside the fleet so
    /// daemons can log cold starts.
    ///
    /// # Errors
    ///
    /// [`ServeError::Eval`] when training fails, [`ServeError::Config`]
    /// for an invalid tier ladder.
    pub fn warm(
        root: &Path,
        dataset: &SyntheticDataset,
        config: &EvalConfig,
        serve: &ServeConfig,
        threads: usize,
    ) -> Result<(Self, CacheOutcome), ServeError> {
        let store = ArtifactStore::new(root);
        let (engine, outcome) = store.engine(dataset, config, None)?;
        Ok((Self::from_engine(&engine, serve, threads)?, outcome))
    }

    /// Number of consumers tracked.
    pub fn len(&self) -> usize {
        self.scorers.len()
    }

    /// Whether the fleet tracks no consumers.
    pub fn is_empty(&self) -> bool {
        self.scorers.is_empty()
    }

    /// The tracked consumer ids, in fleet (batch) order.
    pub fn consumers(&self) -> &[u32] {
        &self.ids
    }

    /// Routes a single consumer's tick.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownConsumer`] for an untracked id,
    /// [`ServeError::Data`] for an invalid reading.
    pub fn ingest_tick(
        &self,
        consumer: u32,
        reading: f64,
    ) -> Result<Option<WeekSummary>, ServeError> {
        let &slot = self
            .index
            .get(&consumer)
            .ok_or(ServeError::UnknownConsumer(consumer))?;
        let mut scorer = lock(&self.scorers[slot]);
        Ok(scorer.ingest(reading)?)
    }

    /// Drains one fleet-wide tick round — `readings[i]` is the reading of
    /// `consumers()[i]` — across the worker threads via [`WorkQueue`].
    /// An invalid reading aborts the round's remaining claims; consumers
    /// already ticked stay ticked (ticks are independent streams, so a
    /// retry may simply resend the failed consumers).
    ///
    /// # Errors
    ///
    /// [`ServeError::BatchLen`] on a malformed batch, the first
    /// [`ServeError::Data`] encountered otherwise.
    pub fn ingest_round(&self, readings: &[f64]) -> Result<RoundOutcome, ServeError> {
        if readings.len() != self.scorers.len() {
            return Err(ServeError::BatchLen {
                expected: self.scorers.len(),
                got: readings.len(),
            });
        }
        let mut completed: Vec<Option<WeekSummary>> = vec![None; self.scorers.len()];
        if self.threads <= 1 {
            for (slot, (scorer, &reading)) in self.scorers.iter().zip(readings).enumerate() {
                completed[slot] = lock(scorer).ingest(reading)?;
            }
        } else {
            self.drain_round(readings, &mut completed)?;
        }
        let mut outcome = RoundOutcome::default();
        for (slot, summary) in completed.into_iter().enumerate() {
            let Some(summary) = summary else { continue };
            outcome.summaries.push((self.ids[slot], summary));
            outcome
                .alerts
                .extend_from_slice(lock(&self.scorers[slot]).alerts());
        }
        Ok(outcome)
    }

    /// The parallel drain: workers claim fleet slots off a [`WorkQueue`]
    /// until it runs dry or a worker aborts on an invalid reading.
    fn drain_round(
        &self,
        readings: &[f64],
        completed: &mut [Option<WeekSummary>],
    ) -> Result<(), ServeError> {
        let queue = WorkQueue::new(self.scorers.len());
        let failure: Mutex<Option<TsError>> = Mutex::new(None);
        let completed = Mutex::new(completed);
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| {
                    while let Some(slot) = queue.claim() {
                        let outcome = lock(&self.scorers[slot]).ingest(readings[slot]);
                        match outcome {
                            Ok(summary) => {
                                lock(&completed)[slot] = summary;
                                queue.complete();
                            }
                            Err(e) => {
                                queue.abort();
                                let mut first = lock(&failure);
                                if first.is_none() {
                                    *first = Some(e);
                                }
                            }
                        }
                    }
                });
            }
        });
        match failure.into_inner().unwrap_or_else(PoisonError::into_inner) {
            Some(e) => Err(ServeError::Data(e)),
            None => Ok(()),
        }
    }

    /// Total per-consumer resident state, in bytes (excludes the
    /// `Arc`-shared trained cores — see [`StreamScorer::state_bytes`]).
    pub fn state_bytes(&self) -> usize {
        self.scorers.iter().map(|s| lock(s).state_bytes()).sum()
    }
}

/// Poison-safe lock: a worker that panicked mid-tick leaves a consumer's
/// window state valid (every mutation in `ingest` is ordered before the
/// next await point), so the daemon keeps serving the rest of the fleet
/// rather than cascading the panic.
fn lock<T: ?Sized>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `0` means auto: one worker per consumer, capped by the machine.
fn normalise_threads(threads: usize, consumers: usize) -> usize {
    let cap = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if threads == 0 {
        consumers.clamp(1, cap)
    } else {
        threads.min(cap.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdeta_cer_synth::DatasetConfig;
    use fdeta_tsdata::SLOTS_PER_WEEK;

    fn fleet(threads: usize) -> (Fleet, SyntheticDataset, EvalConfig) {
        let data = SyntheticDataset::generate(&DatasetConfig::small(4, 12, 7));
        let config = EvalConfig {
            threads: 1,
            ..EvalConfig::fast(8, 2)
        };
        let engine = EvalEngine::train(&data, &config).unwrap();
        let fleet = Fleet::from_engine(&engine, &ServeConfig::default(), threads).unwrap();
        (fleet, data, config)
    }

    /// One full week of fleet-wide rounds, fed from each artifact's
    /// held-out window.
    fn weekly_rounds(fleet: &Fleet, data: &SyntheticDataset, config: &EvalConfig) -> RoundOutcome {
        let mut last = RoundOutcome::default();
        for tick in 0..SLOTS_PER_WEEK {
            let readings: Vec<f64> = (0..fleet.len())
                .map(|c| {
                    let series = data.consumer(c).series.as_slice();
                    series[config.train_weeks * SLOTS_PER_WEEK + tick]
                })
                .collect();
            last = fleet.ingest_round(&readings).unwrap();
        }
        last
    }

    #[test]
    fn parallel_and_serial_rounds_agree() {
        let (serial, data, config) = fleet(1);
        let (parallel, _, _) = fleet(4);
        let a = weekly_rounds(&serial, &data, &config);
        let b = weekly_rounds(&parallel, &data, &config);
        assert_eq!(a.summaries.len(), serial.len());
        assert_eq!(a.summaries.len(), b.summaries.len());
        for ((id_a, sa), (id_b, sb)) in a.summaries.iter().zip(&b.summaries) {
            assert_eq!(id_a, id_b);
            assert_eq!(sa.kld_score.to_bits(), sb.kld_score.to_bits());
            assert_eq!(sa.arima_violations, sb.arima_violations);
        }
        assert_eq!(a.alerts, b.alerts);
    }

    #[test]
    fn single_tick_routing_matches_round_order() {
        let (fleet, data, config) = fleet(2);
        let ids: Vec<u32> = fleet.consumers().to_vec();
        for tick in 0..SLOTS_PER_WEEK {
            for (c, &id) in ids.iter().enumerate() {
                let series = data.consumer(c).series.as_slice();
                let reading = series[config.train_weeks * SLOTS_PER_WEEK + tick];
                let summary = fleet.ingest_tick(id, reading).unwrap();
                assert_eq!(summary.is_some(), tick == SLOTS_PER_WEEK - 1);
            }
        }
        assert!(matches!(
            fleet.ingest_tick(0xDEAD, 1.0),
            Err(ServeError::UnknownConsumer(0xDEAD))
        ));
    }

    #[test]
    fn malformed_batches_and_bad_readings_are_typed() {
        let (fleet, _, _) = fleet(2);
        assert!(matches!(
            fleet.ingest_round(&[1.0]),
            Err(ServeError::BatchLen { got: 1, .. })
        ));
        let mut readings = vec![0.5; fleet.len()];
        readings[1] = f64::NAN;
        assert!(matches!(
            fleet.ingest_round(&readings),
            Err(ServeError::Data(_))
        ));
    }

    #[test]
    fn fleet_state_is_accounted() {
        let (fleet, _, _) = fleet(1);
        let total = fleet.state_bytes();
        assert!(total > 0);
        assert!(
            total >= fleet.len() * SLOTS_PER_WEEK * std::mem::size_of::<f64>(),
            "at least the sliding windows must be accounted"
        );
    }
}
