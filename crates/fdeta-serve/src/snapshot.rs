//! Crash-safe fleet checkpoints.
//!
//! A [`FleetSnapshot`] captures, for every meter of a [`Fleet`], exactly
//! the state that is *not* reloadable from the artifact store: the
//! scorer's sliding window (ring, observation mask, tick count), the
//! meter-health ladder position, and the per-tier alert totals. Trained
//! cores, histogram counts, and the live forecaster are deliberately
//! excluded — they are pure functions of the artifacts plus the sliding
//! state and are rebuilt on restore by
//! [`StreamScorer::restore_sliding`], so a checkpoint can never carry
//! derived state that disagrees with its own window.
//!
//! The file format follows the [`fdeta_detect::codec`] conventions shared
//! with the artifact store: 8-byte magic, format version, an FNV-1a fleet
//! key (over the version, meter count, and consumer ids — a snapshot for
//! a different fleet is rejected before any state is touched), floats as
//! raw bit patterns, a trailing FNV-1a integrity checksum, and atomic
//! tmp-plus-rename writes so a crash mid-checkpoint leaves the previous
//! snapshot intact. Restoring a snapshot onto a freshly warmed fleet and
//! continuing the stream is **bit-identical** to a run that never died
//! (`tests/checkpoint_restore.rs` kills the fleet at arbitrary ticks to
//! prove it).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use std::sync::Mutex;

use fdeta_detect::codec::{fnv1a, ByteReader, ByteWriter, Fnv, FNV_OFFSET};
use fdeta_detect::prelude::*;
use fdeta_detect::{MeterHealthRepr, WorkQueue};

use crate::{lock, Fleet, MeterSlot};

const MAGIC: &[u8; 8] = b"FDETASNP";

/// File magic for a sharded checkpoint's manifest.
const MANIFEST_MAGIC: &[u8; 8] = b"FDETASNM";

/// File magic for one meter-range shard of a sharded checkpoint.
const SHARD_MAGIC: &[u8; 8] = b"FDETASNS";

/// Bumped on any layout change; old snapshots are rejected, not migrated
/// (re-checkpoint from a live fleet instead).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a checkpoint could not be saved or restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
    /// The file failed validation: bad magic, unsupported version,
    /// checksum mismatch, or undecodable content.
    Corrupt {
        /// The path involved.
        path: PathBuf,
        /// What failed.
        what: String,
    },
    /// The snapshot is valid but describes a different fleet (meter
    /// count, consumer ids, or health ladder do not match the restore
    /// target).
    FleetMismatch {
        /// What differs.
        what: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { path, source } => {
                write!(f, "snapshot I/O at {}: {source}", path.display())
            }
            SnapshotError::Corrupt { path, what } => {
                write!(f, "corrupt snapshot at {}: {what}", path.display())
            }
            SnapshotError::FleetMismatch { what } => {
                write!(f, "snapshot is for a different fleet: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One meter's checkpointed state.
#[derive(Debug, Clone, PartialEq)]
pub struct MeterSnapshot {
    /// The consumer's meter id.
    pub id: u32,
    /// The scorer's sliding window state.
    pub sliding: SlidingState,
    /// The health ladder position.
    pub health: MeterHealthRepr,
    /// Alerts raised so far, per tier `[low, medium, high]`.
    pub alert_totals: [u64; 3],
}

/// A decoded fleet checkpoint: the in-memory form of the snapshot file.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// The health ladder the fleet was running (restore requires an
    /// identical ladder — silently changing escalation thresholds
    /// mid-stream would make the continued run unexplainable).
    pub health: HealthConfig,
    /// Per-meter state, in fleet order.
    pub meters: Vec<MeterSnapshot>,
}

impl FleetSnapshot {
    /// Captures a point-in-time snapshot of `fleet`. Each slot is locked
    /// in turn; for a consistent fleet-wide cut, capture between tick
    /// rounds (the serving loop's natural checkpoint cadence).
    pub fn capture(fleet: &Fleet) -> Self {
        let meters = fleet
            .ids
            .iter()
            .zip(&fleet.slots)
            .map(|(&id, slot)| {
                let meter = lock(slot);
                MeterSnapshot {
                    id,
                    sliding: meter.scorer.sliding_state(),
                    health: MeterHealthRepr::from(&meter.health),
                    alert_totals: meter.alert_totals,
                }
            })
            .collect();
        Self {
            health: fleet.health_config,
            meters,
        }
    }

    /// The fleet identity key: FNV-1a over the format version, meter
    /// count, and consumer ids. Two fleets over the same consumers in the
    /// same order share a key regardless of tick position.
    pub fn fleet_key(&self) -> u64 {
        fleet_key_over(self.meters.len(), self.meters.iter().map(|m| m.id))
    }

    /// Encodes the snapshot into the on-disk byte layout, checksum
    /// included.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::default();
        w.bytes(MAGIC);
        w.u32(SNAPSHOT_VERSION);
        w.u64(self.fleet_key());
        encode_ladder(&mut w, &self.health);
        w.u64(self.meters.len() as u64);
        for meter in &self.meters {
            encode_meter(&mut w, meter);
        }
        let checksum = fnv1a(w.as_slice(), FNV_OFFSET);
        w.u64(checksum);
        w.into_bytes()
    }

    /// Decodes a snapshot file's bytes.
    ///
    /// # Errors
    ///
    /// A message describing the first validation failure: short file,
    /// checksum mismatch, bad magic, unsupported version, key/count
    /// disagreement, or truncated content.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err("file shorter than header + checksum".into());
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let mut stored = [0u8; 8];
        stored.copy_from_slice(tail);
        if fnv1a(payload, FNV_OFFSET) != u64::from_le_bytes(stored) {
            return Err("integrity checksum mismatch".into());
        }
        let mut r = ByteReader::new(payload);
        if r.bytes(MAGIC.len())? != MAGIC.as_slice() {
            return Err("bad magic (not a fleet snapshot)".into());
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(format!(
                "snapshot version {version}, this build reads {SNAPSHOT_VERSION}"
            ));
        }
        let key = r.u64()?;
        let health = decode_ladder(&mut r)?;
        let count = r.checked_len(1)?;
        let mut meters = Vec::with_capacity(count);
        for _ in 0..count {
            meters.push(decode_meter(&mut r)?);
        }
        if r.remaining() != 0 {
            return Err(format!("{} trailing bytes after content", r.remaining()));
        }
        let snapshot = Self { health, meters };
        if snapshot.fleet_key() != key {
            return Err("fleet key does not match content".into());
        }
        Ok(snapshot)
    }

    /// Writes the snapshot to `path` atomically: a temporary sibling is
    /// written first and renamed into place, so a crash mid-write leaves
    /// any previous snapshot at `path` intact.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(|source| SnapshotError::Io {
                    path: parent.to_path_buf(),
                    source,
                })?;
            }
        }
        let io_err = |source| SnapshotError::Io {
            path: path.to_path_buf(),
            source,
        };
        let tmp = path.with_extension("snap.tmp");
        fs::write(&tmp, self.encode()).map_err(io_err)?;
        fs::rename(&tmp, path).map_err(io_err)
    }

    /// Reads and validates the snapshot at `path`. The layout is
    /// auto-detected by magic: `path` may be a monolithic snapshot or a
    /// sharded checkpoint's manifest ([`FleetSnapshot::save_sharded`]),
    /// so restore call sites never need to know how the checkpoint was
    /// written.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the file cannot be read,
    /// [`SnapshotError::Corrupt`] when it fails validation.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = fs::read(path).map_err(|source| SnapshotError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        if bytes.starts_with(MANIFEST_MAGIC) {
            return Self::load_sharded(path, &bytes);
        }
        Self::decode(&bytes).map_err(|what| SnapshotError::Corrupt {
            path: path.to_path_buf(),
            what,
        })
    }

    /// Writes the snapshot as `shards` meter-range shard files plus a
    /// manifest at `path`. Shards are encoded in parallel (meter encoding
    /// is independent across ranges), each written atomically, and the
    /// manifest is written **last** — a crash mid-checkpoint can orphan
    /// shard files but never publishes a manifest whose shards are
    /// missing or stale; the previous checkpoint at `path` stays intact.
    /// With one shard (or one meter) this degrades to [`FleetSnapshot::save`].
    ///
    /// The fleet key is hashed once and threaded to the manifest and every
    /// shard, so all files of one checkpoint share a single FNV pass over
    /// the ids.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure.
    pub fn save_sharded(&self, path: &Path, shards: usize) -> Result<(), SnapshotError> {
        let ranges = shard_ranges(self.meters.len(), shards);
        if ranges.len() <= 1 {
            return self.save(path);
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(|source| SnapshotError::Io {
                    path: parent.to_path_buf(),
                    source,
                })?;
            }
        }
        let key = self.fleet_key();

        // Parallel shard encode: claim ranges off a work queue, stash each
        // encoded shard in its own slot.
        let encoded: Vec<Mutex<Option<Vec<u8>>>> =
            (0..ranges.len()).map(|_| Mutex::new(None)).collect();
        let queue = WorkQueue::new(ranges.len());
        let threads = crate::normalise_threads(0, ranges.len());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    while let Some(shard) = queue.claim() {
                        let (start, count) = ranges[shard];
                        let mut w = ByteWriter::default();
                        w.bytes(SHARD_MAGIC);
                        w.u32(SNAPSHOT_VERSION);
                        w.u64(key);
                        w.u64(shard as u64);
                        w.u64(start as u64);
                        w.u64(count as u64);
                        for meter in &self.meters[start..start + count] {
                            encode_meter(&mut w, meter);
                        }
                        let checksum = fnv1a(w.as_slice(), FNV_OFFSET);
                        w.u64(checksum);
                        *lock(&encoded[shard]) = Some(w.into_bytes());
                        queue.complete();
                    }
                });
            }
        });

        for (shard, cell) in encoded.iter().enumerate() {
            let shard_file = shard_path(path, shard);
            let io_err = |source| SnapshotError::Io {
                path: shard_file.clone(),
                source,
            };
            let bytes = lock(cell).take().unwrap_or_default();
            let tmp = shard_file.with_extension(format!("shard{shard}.tmp"));
            fs::write(&tmp, &bytes).map_err(io_err)?;
            fs::rename(&tmp, &shard_file).map_err(io_err)?;
        }

        write_manifest(path, key, &self.health, self.meters.len(), &ranges)
    }

    /// Loads a sharded checkpoint from its manifest bytes: every shard
    /// named by the manifest is read, checksummed, and decoded in
    /// parallel, then merged in range order and validated against the
    /// manifest's fleet key.
    fn load_sharded(path: &Path, manifest_bytes: &[u8]) -> Result<Self, SnapshotError> {
        let corrupt = |what: String| SnapshotError::Corrupt {
            path: path.to_path_buf(),
            what,
        };
        let Manifest {
            key,
            health,
            total,
            ranges,
        } = parse_manifest(manifest_bytes).map_err(corrupt)?;

        // Parallel shard read + decode. Each slot holds one shard's decode
        // outcome, `None` until its worker writes it.
        type ShardSlot = Mutex<Option<Result<Vec<MeterSnapshot>, SnapshotError>>>;
        let decoded: Vec<ShardSlot> = (0..ranges.len()).map(|_| Mutex::new(None)).collect();
        let queue = WorkQueue::new(ranges.len());
        let threads = crate::normalise_threads(0, ranges.len());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    while let Some(shard) = queue.claim() {
                        *lock(&decoded[shard]) = Some(read_shard(path, key, shard, ranges[shard]));
                        queue.complete();
                    }
                });
            }
        });

        let mut meters = Vec::with_capacity(total);
        for cell in &decoded {
            let result = lock(cell)
                .take()
                .unwrap_or_else(|| Err(corrupt("shard decode produced no result".into())));
            meters.extend(result?);
        }
        let snapshot = Self { health, meters };
        if snapshot.fleet_key() != key {
            return Err(corrupt("fleet key does not match shard content".into()));
        }
        Ok(snapshot)
    }
}

/// Reads and decodes one shard file, validating its header against the
/// manifest's expectation for that shard.
fn read_shard(
    manifest: &Path,
    key: u64,
    shard: usize,
    (start, count): (usize, usize),
) -> Result<Vec<MeterSnapshot>, SnapshotError> {
    let path = shard_path(manifest, shard);
    let bytes = fs::read(&path).map_err(|source| SnapshotError::Io {
        path: path.clone(),
        source,
    })?;
    (|| -> Result<Vec<MeterSnapshot>, String> {
        let mut r = shard_payload(&bytes, key, shard, (start, count))?;
        let mut meters = Vec::with_capacity(count);
        for _ in 0..count {
            meters.push(decode_meter(&mut r)?);
        }
        if r.remaining() != 0 {
            return Err(format!(
                "{} trailing bytes after shard content",
                r.remaining()
            ));
        }
        Ok(meters)
    })()
    .map_err(|what| SnapshotError::Corrupt {
        path: path.clone(),
        what,
    })
}

/// The fleet identity key over an explicit id sequence — one definition
/// shared by [`FleetSnapshot::fleet_key`] and the direct fleet checkpoint
/// paths, so a key is only ever hashed once per operation and threaded to
/// every file that needs it.
fn fleet_key_over(count: usize, ids: impl Iterator<Item = u32>) -> u64 {
    let mut fnv = Fnv::new();
    fnv.u64(u64::from(SNAPSHOT_VERSION));
    fnv.u64(count as u64);
    for id in ids {
        fnv.u64(u64::from(id));
    }
    fnv.finish()
}

/// A parsed sharded-checkpoint manifest.
struct Manifest {
    key: u64,
    health: HealthConfig,
    total: usize,
    ranges: Vec<(usize, usize)>,
}

/// Validates and parses a manifest's bytes (checksum, magic, version,
/// contiguous shard ranges covering exactly `total` meters).
fn parse_manifest(bytes: &[u8]) -> Result<Manifest, String> {
    if bytes.len() < MANIFEST_MAGIC.len() + 8 {
        return Err("file shorter than header + checksum".into());
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let mut stored = [0u8; 8];
    stored.copy_from_slice(tail);
    if fnv1a(payload, FNV_OFFSET) != u64::from_le_bytes(stored) {
        return Err("integrity checksum mismatch".into());
    }
    let mut r = ByteReader::new(payload);
    if r.bytes(MANIFEST_MAGIC.len())? != MANIFEST_MAGIC.as_slice() {
        return Err("bad manifest magic".into());
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(format!(
            "snapshot version {version}, this build reads {SNAPSHOT_VERSION}"
        ));
    }
    let key = r.u64()?;
    let health = decode_ladder(&mut r)?;
    let total = r.len()?;
    let shard_count = r.checked_len(16)?;
    let mut ranges = Vec::with_capacity(shard_count);
    let mut next_start = 0usize;
    for shard in 0..shard_count {
        let start = r.len()?;
        let count = r.len()?;
        if start != next_start {
            return Err(format!(
                "shard {shard} starts at {start}, expected {next_start}"
            ));
        }
        next_start = start
            .checked_add(count)
            .ok_or_else(|| format!("shard {shard} range overflows"))?;
        ranges.push((start, count));
    }
    if next_start != total {
        return Err(format!(
            "shard ranges cover {next_start} meters, manifest says {total}"
        ));
    }
    if r.remaining() != 0 {
        return Err(format!("{} trailing bytes after manifest", r.remaining()));
    }
    Ok(Manifest {
        key,
        health,
        total,
        ranges,
    })
}

/// Writes the manifest for a sharded checkpoint atomically. Callers write
/// every shard first — publishing the manifest is the commit point.
fn write_manifest(
    path: &Path,
    key: u64,
    health: &HealthConfig,
    total: usize,
    ranges: &[(usize, usize)],
) -> Result<(), SnapshotError> {
    let mut w = ByteWriter::default();
    w.bytes(MANIFEST_MAGIC);
    w.u32(SNAPSHOT_VERSION);
    w.u64(key);
    encode_ladder(&mut w, health);
    w.u64(total as u64);
    w.u64(ranges.len() as u64);
    for &(start, count) in ranges {
        w.u64(start as u64);
        w.u64(count as u64);
    }
    let checksum = fnv1a(w.as_slice(), FNV_OFFSET);
    w.u64(checksum);
    let io_err = |source| SnapshotError::Io {
        path: path.to_path_buf(),
        source,
    };
    let tmp = path.with_extension("snap.tmp");
    fs::write(&tmp, w.as_slice()).map_err(io_err)?;
    fs::rename(&tmp, path).map_err(io_err)
}

/// Validates one shard file's checksum and header against the manifest's
/// expectation, returning a reader positioned at the first meter.
fn shard_payload<'a>(
    bytes: &'a [u8],
    key: u64,
    shard: usize,
    range: (usize, usize),
) -> Result<ByteReader<'a>, String> {
    if bytes.len() < SHARD_MAGIC.len() + 8 {
        return Err("file shorter than header + checksum".into());
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let mut stored = [0u8; 8];
    stored.copy_from_slice(tail);
    if fnv1a(payload, FNV_OFFSET) != u64::from_le_bytes(stored) {
        return Err("integrity checksum mismatch".into());
    }
    shard_payload_unchecked(payload, key, shard, range)
}

/// [`shard_payload`] minus the checksum pass, for re-entering a shard the
/// caller has already validated. `payload` excludes the trailing checksum.
fn shard_payload_unchecked<'a>(
    payload: &'a [u8],
    key: u64,
    shard: usize,
    (start, count): (usize, usize),
) -> Result<ByteReader<'a>, String> {
    let mut r = ByteReader::new(payload);
    if r.bytes(SHARD_MAGIC.len())? != SHARD_MAGIC.as_slice() {
        return Err("bad shard magic".into());
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(format!(
            "snapshot version {version}, this build reads {SNAPSHOT_VERSION}"
        ));
    }
    let stored_key = r.u64()?;
    if stored_key != key {
        return Err(format!(
            "fleet key {stored_key:016x} does not match manifest {key:016x}"
        ));
    }
    let header = (r.len()?, r.len()?, r.len()?);
    if header != (shard, start, count) {
        return Err(format!(
            "shard header (index, start, count) = {header:?}, manifest says {:?}",
            (shard, start, count)
        ));
    }
    Ok(r)
}

/// One meter's wire form — shared verbatim by the monolithic layout and
/// every shard, so the two layouts can never drift.
fn encode_meter(w: &mut ByteWriter, meter: &MeterSnapshot) {
    w.u32(meter.id);
    w.u64(meter.sliding.ticks);
    w.u8(u8::from(meter.sliding.window_gapped));
    w.vec_f64(&meter.sliding.ring);
    w.vec_u64(&meter.sliding.ring_mask);
    w.u8(state_tag(meter.health.state));
    w.u32(meter.health.bad_run);
    w.u32(meter.health.good_run);
    w.u64(meter.health.stuck_bits);
    w.u32(meter.health.stuck_run);
    w.u64(meter.health.gap_ticks);
    w.u64(meter.health.ticks);
    for &total in &meter.alert_totals {
        w.u64(total);
    }
}

fn decode_meter(r: &mut ByteReader<'_>) -> Result<MeterSnapshot, String> {
    let mut sliding = SlidingState {
        ring: Vec::new(),
        ring_mask: Vec::new(),
        ticks: 0,
        window_gapped: false,
    };
    let (id, health, alert_totals) = decode_meter_into(r, &mut sliding)?;
    Ok(MeterSnapshot {
        id,
        sliding,
        health,
        alert_totals,
    })
}

/// As [`decode_meter`], decoding into a reused sliding-state scratch —
/// the fleet-scale direct restore decodes a million meters with zero
/// per-meter allocations.
fn decode_meter_into(
    r: &mut ByteReader<'_>,
    sliding: &mut SlidingState,
) -> Result<(u32, MeterHealthRepr, [u64; 3]), String> {
    let id = r.u32()?;
    sliding.ticks = r.u64()?;
    sliding.window_gapped = r.u8()? != 0;
    let len = r.checked_len(8)?;
    sliding.ring.clear();
    sliding.ring.extend(r.words(len)?.map(f64::from_bits));
    let len = r.checked_len(8)?;
    sliding.ring_mask.clear();
    sliding.ring_mask.extend(r.words(len)?);
    let health = MeterHealthRepr {
        state: tag_state(r.u8()?)?,
        bad_run: r.u32()?,
        good_run: r.u32()?,
        stuck_bits: r.u64()?,
        stuck_run: r.u32()?,
        gap_ticks: r.u64()?,
        ticks: r.u64()?,
    };
    let alert_totals = [r.u64()?, r.u64()?, r.u64()?];
    Ok((id, health, alert_totals))
}

fn encode_ladder(w: &mut ByteWriter, health: &HealthConfig) {
    w.u32(health.suspect_after);
    w.u32(health.quarantine_after);
    w.u32(health.probation_after);
    w.u32(health.heal_after);
    w.u32(health.stuck_after);
}

fn decode_ladder(r: &mut ByteReader<'_>) -> Result<HealthConfig, String> {
    Ok(HealthConfig {
        suspect_after: r.u32()?,
        quarantine_after: r.u32()?,
        probation_after: r.u32()?,
        heal_after: r.u32()?,
        stuck_after: r.u32()?,
    })
}

/// Splits `count` meters into `shards` contiguous `(start, count)` ranges,
/// sizes differing by at most one, never emitting an empty shard.
fn shard_ranges(count: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, count.max(1));
    let base = count / shards;
    let rem = count % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for shard in 0..shards {
        let len = base + usize::from(shard < rem);
        ranges.push((start, len));
        start += len;
    }
    ranges
}

/// Shard `k`'s file, a sibling of the manifest: `<path>.shard<k>`.
fn shard_path(path: &Path, shard: usize) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".shard{shard}"));
    PathBuf::from(os)
}

fn state_tag(state: HealthState) -> u8 {
    match state {
        HealthState::Healthy => 0,
        HealthState::Suspect => 1,
        HealthState::Quarantined => 2,
        HealthState::Probation => 3,
    }
}

fn tag_state(tag: u8) -> Result<HealthState, String> {
    match tag {
        0 => Ok(HealthState::Healthy),
        1 => Ok(HealthState::Suspect),
        2 => Ok(HealthState::Quarantined),
        3 => Ok(HealthState::Probation),
        other => Err(format!("unknown health state tag {other}")),
    }
}

impl Fleet {
    /// Checkpoints the fleet to `path` (atomic tmp-plus-rename). Capture
    /// between tick rounds for a consistent fleet-wide cut.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure.
    pub fn checkpoint(&self, path: &Path) -> Result<(), SnapshotError> {
        FleetSnapshot::capture(self).save(path)
    }

    /// As [`Fleet::checkpoint`], writing `shards` meter-range shard files
    /// under a manifest at `path`. Unlike the layered
    /// [`FleetSnapshot::save_sharded`], each shard is encoded *directly
    /// from the slots* — no fleet-wide intermediate snapshot is ever
    /// materialised, only one transient per-meter state — and shards are
    /// encoded and written in parallel across the fleet's worker threads.
    /// The wire format is byte-identical to the layered writer's, the
    /// manifest is still written last (the commit point), and
    /// [`Fleet::restore`] auto-detects the layout. With one shard (or one
    /// meter) this degrades to the monolithic [`Fleet::checkpoint`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure.
    pub fn checkpoint_sharded(&self, path: &Path, shards: usize) -> Result<(), SnapshotError> {
        let ranges = shard_ranges(self.slots.len(), shards);
        if ranges.len() <= 1 {
            return self.checkpoint(path);
        }
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(|source| SnapshotError::Io {
                    path: parent.to_path_buf(),
                    source,
                })?;
            }
        }
        let key = fleet_key_over(self.ids.len(), self.ids.iter().copied());

        let first_error: Mutex<Option<(usize, SnapshotError)>> = Mutex::new(None);
        let queue = WorkQueue::new(ranges.len());
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(ranges.len()).max(1) {
                scope.spawn(|| {
                    while let Some(shard) = queue.claim() {
                        if let Err(e) = self.write_shard(path, key, shard, ranges[shard]) {
                            let mut slot = lock(&first_error);
                            if slot.as_ref().is_none_or(|(at, _)| shard < *at) {
                                *slot = Some((shard, e));
                            }
                        }
                        queue.complete();
                    }
                });
            }
        });
        if let Some((_, error)) = lock(&first_error).take() {
            return Err(error);
        }
        write_manifest(path, key, &self.health_config, self.slots.len(), &ranges)
    }

    /// Encodes and atomically writes one meter-range shard straight from
    /// the fleet's slots. Each slot is locked just long enough to copy its
    /// state; the encode runs outside the lock.
    fn write_shard(
        &self,
        manifest: &Path,
        key: u64,
        shard: usize,
        (start, count): (usize, usize),
    ) -> Result<(), SnapshotError> {
        let mut w = ByteWriter::default();
        w.bytes(SHARD_MAGIC);
        w.u32(SNAPSHOT_VERSION);
        w.u64(key);
        w.u64(shard as u64);
        w.u64(start as u64);
        w.u64(count as u64);
        for index in start..start + count {
            let guard = lock(&self.slots[index]);
            let meter = MeterSnapshot {
                id: self.ids[index],
                sliding: guard.scorer.sliding_state(),
                health: MeterHealthRepr::from(&guard.health),
                alert_totals: guard.alert_totals,
            };
            drop(guard);
            encode_meter(&mut w, &meter);
        }
        let checksum = fnv1a(w.as_slice(), FNV_OFFSET);
        w.u64(checksum);
        let shard_file = shard_path(manifest, shard);
        let io_err = |source| SnapshotError::Io {
            path: shard_file.clone(),
            source,
        };
        let tmp = shard_file.with_extension(format!("shard{shard}.tmp"));
        fs::write(&tmp, w.as_slice()).map_err(io_err)?;
        fs::rename(&tmp, &shard_file).map_err(io_err)
    }

    /// Restores the checkpoint at `path` onto this (freshly warmed)
    /// fleet: every scorer's sliding window is rebuilt bit-identically,
    /// health ladders and alert totals resume where they were, and the
    /// monitoring aggregates are re-derived from the restored slots.
    ///
    /// A monolithic snapshot is decoded through [`FleetSnapshot::load`];
    /// a sharded checkpoint takes the direct path: the fleet's identity
    /// (meter count, ladder, id key) is validated against the manifest
    /// *before any meter is decoded*, every shard file is read and
    /// checksum-validated before any slot is touched, and the meters are
    /// then streamed straight onto the slots through reused scratch
    /// buffers — the fleet-wide `Vec<MeterSnapshot>` of the layered path
    /// is never built.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] / [`SnapshotError::Corrupt`] as
    /// [`FleetSnapshot::load`]; [`SnapshotError::FleetMismatch`] when the
    /// snapshot's consumers or health ladder differ from this fleet's.
    pub fn restore(&self, path: &Path) -> Result<(), SnapshotError> {
        let bytes = fs::read(path).map_err(|source| SnapshotError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        if !bytes.starts_with(MANIFEST_MAGIC) {
            let snapshot =
                FleetSnapshot::decode(&bytes).map_err(|what| SnapshotError::Corrupt {
                    path: path.to_path_buf(),
                    what,
                })?;
            return self.restore_snapshot(&snapshot);
        }
        let manifest = parse_manifest(&bytes).map_err(|what| SnapshotError::Corrupt {
            path: path.to_path_buf(),
            what,
        })?;
        if manifest.total != self.slots.len() {
            return Err(SnapshotError::FleetMismatch {
                what: format!(
                    "snapshot has {} meters, fleet has {}",
                    manifest.total,
                    self.slots.len()
                ),
            });
        }
        if manifest.health != self.health_config {
            return Err(SnapshotError::FleetMismatch {
                what: "health ladder configuration differs".into(),
            });
        }
        let key = fleet_key_over(self.ids.len(), self.ids.iter().copied());
        if key != manifest.key {
            return Err(SnapshotError::FleetMismatch {
                what: format!(
                    "snapshot fleet key {:016x} does not match this fleet's {key:016x}",
                    manifest.key
                ),
            });
        }

        // Pass 1: read and checksum-validate every shard before any slot
        // is mutated — a corrupt or missing file rejects the restore with
        // the fleet untouched.
        let mut shard_bytes = Vec::with_capacity(manifest.ranges.len());
        for (shard, &range) in manifest.ranges.iter().enumerate() {
            let shard_file = shard_path(path, shard);
            let bytes = fs::read(&shard_file).map_err(|source| SnapshotError::Io {
                path: shard_file.clone(),
                source,
            })?;
            shard_payload(&bytes, key, shard, range).map_err(|what| SnapshotError::Corrupt {
                path: shard_file.clone(),
                what,
            })?;
            shard_bytes.push(bytes);
        }

        // Pass 2: decode and apply, one worker per shard (disjoint slot
        // ranges), each streaming meters through one reused scratch. On a
        // failure the lowest-index error is reported (deterministic
        // regardless of interleaving); the fleet is then partially
        // restored, exactly as the monolithic path leaves it.
        let first_error: Mutex<Option<(usize, SnapshotError)>> = Mutex::new(None);
        let queue = WorkQueue::new(manifest.ranges.len());
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(manifest.ranges.len()).max(1) {
                scope.spawn(|| {
                    while let Some(shard) = queue.claim() {
                        let range = manifest.ranges[shard];
                        if let Err((index, e)) =
                            self.apply_shard(path, key, shard, range, &shard_bytes[shard])
                        {
                            let mut slot = lock(&first_error);
                            if slot.as_ref().is_none_or(|(at, _)| index < *at) {
                                *slot = Some((index, e));
                            }
                        }
                        queue.complete();
                    }
                });
            }
        });
        if let Some((_, error)) = lock(&first_error).take() {
            return Err(error);
        }
        self.rebuild_aggregates();
        Ok(())
    }

    /// Streams one validated shard's meters onto the fleet's slots. The
    /// error carries the global meter index for deterministic
    /// lowest-index reporting.
    fn apply_shard(
        &self,
        manifest: &Path,
        key: u64,
        shard: usize,
        (start, count): (usize, usize),
        bytes: &[u8],
    ) -> Result<(), (usize, SnapshotError)> {
        let shard_file = shard_path(manifest, shard);
        let corrupt = |index: usize, what: String| {
            (
                index,
                SnapshotError::Corrupt {
                    path: shard_file.clone(),
                    what,
                },
            )
        };
        // Pass 1 already validated the checksum; re-enter past the header
        // without paying a second full hash over the shard.
        let payload = &bytes[..bytes.len() - 8];
        let mut r = shard_payload_unchecked(payload, key, shard, (start, count))
            .map_err(|what| corrupt(start, what))?;
        let mut sliding = SlidingState {
            ring: Vec::new(),
            ring_mask: Vec::new(),
            ticks: 0,
            window_gapped: false,
        };
        for offset in 0..count {
            let index = start + offset;
            let (id, health, alert_totals) =
                decode_meter_into(&mut r, &mut sliding).map_err(|what| corrupt(index, what))?;
            if id != self.ids[index] {
                return Err((
                    index,
                    SnapshotError::FleetMismatch {
                        what: format!(
                            "slot {index} is consumer {id} in the snapshot, {} here",
                            self.ids[index]
                        ),
                    },
                ));
            }
            let mut guard = lock(&self.slots[index]);
            let MeterSlot {
                scorer,
                health: slot_health,
                alert_totals: slot_totals,
            } = &mut *guard;
            scorer
                .restore_sliding(&sliding)
                .map_err(|e| corrupt(index, format!("consumer {id}: {e}")))?;
            *slot_health = health.into();
            *slot_totals = alert_totals;
        }
        if r.remaining() != 0 {
            return Err(corrupt(
                start + count,
                format!("{} trailing bytes after shard content", r.remaining()),
            ));
        }
        Ok(())
    }

    /// As [`Fleet::restore`], from an already decoded snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::FleetMismatch`] for the wrong fleet,
    /// [`SnapshotError::Corrupt`] for sliding state the scorer rejects.
    pub fn restore_snapshot(&self, snapshot: &FleetSnapshot) -> Result<(), SnapshotError> {
        if snapshot.meters.len() != self.slots.len() {
            return Err(SnapshotError::FleetMismatch {
                what: format!(
                    "snapshot has {} meters, fleet has {}",
                    snapshot.meters.len(),
                    self.slots.len()
                ),
            });
        }
        if snapshot.health != self.health_config {
            return Err(SnapshotError::FleetMismatch {
                what: "health ladder configuration differs".into(),
            });
        }
        for (slot, (meter, &id)) in snapshot.meters.iter().zip(&self.ids).enumerate() {
            if meter.id != id {
                return Err(SnapshotError::FleetMismatch {
                    what: format!(
                        "slot {slot} is consumer {} in the snapshot, {id} here",
                        meter.id
                    ),
                });
            }
        }
        // Per-meter restore parallelises across the fleet's worker
        // threads: each slot's rebuild (histogram re-count + forecaster
        // replay) touches only that slot's state under its own lock. On a
        // failure the lowest-index error is reported (deterministic
        // regardless of interleaving); the fleet is then partially
        // restored, exactly as the sequential early-return left it.
        let queue = WorkQueue::new(snapshot.meters.len());
        let first_error: Mutex<Option<(usize, SnapshotError)>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| {
                    while let Some(index) = queue.claim() {
                        let meter = &snapshot.meters[index];
                        let mut guard = lock(&self.slots[index]);
                        let MeterSlot {
                            scorer,
                            health,
                            alert_totals,
                        } = &mut *guard;
                        match scorer.restore_sliding(&meter.sliding) {
                            Ok(()) => {
                                *health = meter.health.into();
                                *alert_totals = meter.alert_totals;
                            }
                            Err(e) => {
                                let mut slot = lock(&first_error);
                                if slot.as_ref().is_none_or(|(at, _)| index < *at) {
                                    *slot = Some((
                                        index,
                                        SnapshotError::Corrupt {
                                            path: PathBuf::new(),
                                            what: format!("consumer {}: {e}", meter.id),
                                        },
                                    ));
                                }
                            }
                        }
                        queue.complete();
                    }
                });
            }
        });
        if let Some((_, error)) = lock(&first_error).take() {
            return Err(error);
        }
        self.rebuild_aggregates();
        Ok(())
    }
}
