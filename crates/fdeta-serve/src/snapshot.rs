//! Crash-safe fleet checkpoints.
//!
//! A [`FleetSnapshot`] captures, for every meter of a [`Fleet`], exactly
//! the state that is *not* reloadable from the artifact store: the
//! scorer's sliding window (ring, observation mask, tick count), the
//! meter-health ladder position, and the per-tier alert totals. Trained
//! cores, histogram counts, and the live forecaster are deliberately
//! excluded — they are pure functions of the artifacts plus the sliding
//! state and are rebuilt on restore by
//! [`StreamScorer::restore_sliding`], so a checkpoint can never carry
//! derived state that disagrees with its own window.
//!
//! The file format follows the [`fdeta_detect::codec`] conventions shared
//! with the artifact store: 8-byte magic, format version, an FNV-1a fleet
//! key (over the version, meter count, and consumer ids — a snapshot for
//! a different fleet is rejected before any state is touched), floats as
//! raw bit patterns, a trailing FNV-1a integrity checksum, and atomic
//! tmp-plus-rename writes so a crash mid-checkpoint leaves the previous
//! snapshot intact. Restoring a snapshot onto a freshly warmed fleet and
//! continuing the stream is **bit-identical** to a run that never died
//! (`tests/checkpoint_restore.rs` kills the fleet at arbitrary ticks to
//! prove it).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use fdeta_detect::codec::{fnv1a, ByteReader, ByteWriter, Fnv, FNV_OFFSET};
use fdeta_detect::prelude::*;
use fdeta_detect::MeterHealthRepr;

use crate::{lock, Fleet, MeterSlot};

const MAGIC: &[u8; 8] = b"FDETASNP";

/// Bumped on any layout change; old snapshots are rejected, not migrated
/// (re-checkpoint from a live fleet instead).
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a checkpoint could not be saved or restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
    /// The file failed validation: bad magic, unsupported version,
    /// checksum mismatch, or undecodable content.
    Corrupt {
        /// The path involved.
        path: PathBuf,
        /// What failed.
        what: String,
    },
    /// The snapshot is valid but describes a different fleet (meter
    /// count, consumer ids, or health ladder do not match the restore
    /// target).
    FleetMismatch {
        /// What differs.
        what: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { path, source } => {
                write!(f, "snapshot I/O at {}: {source}", path.display())
            }
            SnapshotError::Corrupt { path, what } => {
                write!(f, "corrupt snapshot at {}: {what}", path.display())
            }
            SnapshotError::FleetMismatch { what } => {
                write!(f, "snapshot is for a different fleet: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One meter's checkpointed state.
#[derive(Debug, Clone, PartialEq)]
pub struct MeterSnapshot {
    /// The consumer's meter id.
    pub id: u32,
    /// The scorer's sliding window state.
    pub sliding: SlidingState,
    /// The health ladder position.
    pub health: MeterHealthRepr,
    /// Alerts raised so far, per tier `[low, medium, high]`.
    pub alert_totals: [u64; 3],
}

/// A decoded fleet checkpoint: the in-memory form of the snapshot file.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSnapshot {
    /// The health ladder the fleet was running (restore requires an
    /// identical ladder — silently changing escalation thresholds
    /// mid-stream would make the continued run unexplainable).
    pub health: HealthConfig,
    /// Per-meter state, in fleet order.
    pub meters: Vec<MeterSnapshot>,
}

impl FleetSnapshot {
    /// Captures a point-in-time snapshot of `fleet`. Each slot is locked
    /// in turn; for a consistent fleet-wide cut, capture between tick
    /// rounds (the serving loop's natural checkpoint cadence).
    pub fn capture(fleet: &Fleet) -> Self {
        let meters = fleet
            .ids
            .iter()
            .zip(&fleet.slots)
            .map(|(&id, slot)| {
                let meter = lock(slot);
                MeterSnapshot {
                    id,
                    sliding: meter.scorer.sliding_state(),
                    health: MeterHealthRepr::from(&meter.health),
                    alert_totals: meter.alert_totals,
                }
            })
            .collect();
        Self {
            health: fleet.health_config,
            meters,
        }
    }

    /// The fleet identity key: FNV-1a over the format version, meter
    /// count, and consumer ids. Two fleets over the same consumers in the
    /// same order share a key regardless of tick position.
    pub fn fleet_key(&self) -> u64 {
        let mut fnv = Fnv::new();
        fnv.u64(u64::from(SNAPSHOT_VERSION));
        fnv.u64(self.meters.len() as u64);
        for meter in &self.meters {
            fnv.u64(u64::from(meter.id));
        }
        fnv.finish()
    }

    /// Encodes the snapshot into the on-disk byte layout, checksum
    /// included.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::default();
        w.bytes(MAGIC);
        w.u32(SNAPSHOT_VERSION);
        w.u64(self.fleet_key());
        w.u32(self.health.suspect_after);
        w.u32(self.health.quarantine_after);
        w.u32(self.health.probation_after);
        w.u32(self.health.heal_after);
        w.u32(self.health.stuck_after);
        w.u64(self.meters.len() as u64);
        for meter in &self.meters {
            w.u32(meter.id);
            w.u64(meter.sliding.ticks);
            w.u8(u8::from(meter.sliding.window_gapped));
            w.vec_f64(&meter.sliding.ring);
            w.vec_u64(&meter.sliding.ring_mask);
            w.u8(state_tag(meter.health.state));
            w.u32(meter.health.bad_run);
            w.u32(meter.health.good_run);
            w.u64(meter.health.stuck_bits);
            w.u32(meter.health.stuck_run);
            w.u64(meter.health.gap_ticks);
            w.u64(meter.health.ticks);
            for &total in &meter.alert_totals {
                w.u64(total);
            }
        }
        let checksum = fnv1a(w.as_slice(), FNV_OFFSET);
        w.u64(checksum);
        w.into_bytes()
    }

    /// Decodes a snapshot file's bytes.
    ///
    /// # Errors
    ///
    /// A message describing the first validation failure: short file,
    /// checksum mismatch, bad magic, unsupported version, key/count
    /// disagreement, or truncated content.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err("file shorter than header + checksum".into());
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let mut stored = [0u8; 8];
        stored.copy_from_slice(tail);
        if fnv1a(payload, FNV_OFFSET) != u64::from_le_bytes(stored) {
            return Err("integrity checksum mismatch".into());
        }
        let mut r = ByteReader::new(payload);
        if r.bytes(MAGIC.len())? != MAGIC.as_slice() {
            return Err("bad magic (not a fleet snapshot)".into());
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(format!(
                "snapshot version {version}, this build reads {SNAPSHOT_VERSION}"
            ));
        }
        let key = r.u64()?;
        let health = HealthConfig {
            suspect_after: r.u32()?,
            quarantine_after: r.u32()?,
            probation_after: r.u32()?,
            heal_after: r.u32()?,
            stuck_after: r.u32()?,
        };
        let count = r.checked_len(1)?;
        let mut meters = Vec::with_capacity(count);
        for _ in 0..count {
            let id = r.u32()?;
            let ticks = r.u64()?;
            let window_gapped = r.u8()? != 0;
            let ring = r.vec_f64()?;
            let ring_mask = r.vec_u64()?;
            let health = MeterHealthRepr {
                state: tag_state(r.u8()?)?,
                bad_run: r.u32()?,
                good_run: r.u32()?,
                stuck_bits: r.u64()?,
                stuck_run: r.u32()?,
                gap_ticks: r.u64()?,
                ticks: r.u64()?,
            };
            let alert_totals = [r.u64()?, r.u64()?, r.u64()?];
            meters.push(MeterSnapshot {
                id,
                sliding: SlidingState {
                    ring,
                    ring_mask,
                    ticks,
                    window_gapped,
                },
                health,
                alert_totals,
            });
        }
        if r.remaining() != 0 {
            return Err(format!("{} trailing bytes after content", r.remaining()));
        }
        let snapshot = Self { health, meters };
        if snapshot.fleet_key() != key {
            return Err("fleet key does not match content".into());
        }
        Ok(snapshot)
    }

    /// Writes the snapshot to `path` atomically: a temporary sibling is
    /// written first and renamed into place, so a crash mid-write leaves
    /// any previous snapshot at `path` intact.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), SnapshotError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(|source| SnapshotError::Io {
                    path: parent.to_path_buf(),
                    source,
                })?;
            }
        }
        let io_err = |source| SnapshotError::Io {
            path: path.to_path_buf(),
            source,
        };
        let tmp = path.with_extension("snap.tmp");
        fs::write(&tmp, self.encode()).map_err(io_err)?;
        fs::rename(&tmp, path).map_err(io_err)
    }

    /// Reads and validates the snapshot at `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the file cannot be read,
    /// [`SnapshotError::Corrupt`] when it fails validation.
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let bytes = fs::read(path).map_err(|source| SnapshotError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        Self::decode(&bytes).map_err(|what| SnapshotError::Corrupt {
            path: path.to_path_buf(),
            what,
        })
    }
}

fn state_tag(state: HealthState) -> u8 {
    match state {
        HealthState::Healthy => 0,
        HealthState::Suspect => 1,
        HealthState::Quarantined => 2,
        HealthState::Probation => 3,
    }
}

fn tag_state(tag: u8) -> Result<HealthState, String> {
    match tag {
        0 => Ok(HealthState::Healthy),
        1 => Ok(HealthState::Suspect),
        2 => Ok(HealthState::Quarantined),
        3 => Ok(HealthState::Probation),
        other => Err(format!("unknown health state tag {other}")),
    }
}

impl Fleet {
    /// Checkpoints the fleet to `path` (atomic tmp-plus-rename). Capture
    /// between tick rounds for a consistent fleet-wide cut.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure.
    pub fn checkpoint(&self, path: &Path) -> Result<(), SnapshotError> {
        FleetSnapshot::capture(self).save(path)
    }

    /// Restores the checkpoint at `path` onto this (freshly warmed)
    /// fleet: every scorer's sliding window is rebuilt bit-identically,
    /// health ladders and alert totals resume where they were, and the
    /// monitoring aggregates are re-derived from the restored slots.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] / [`SnapshotError::Corrupt`] as
    /// [`FleetSnapshot::load`]; [`SnapshotError::FleetMismatch`] when the
    /// snapshot's consumers or health ladder differ from this fleet's.
    pub fn restore(&self, path: &Path) -> Result<(), SnapshotError> {
        self.restore_snapshot(&FleetSnapshot::load(path)?)
    }

    /// As [`Fleet::restore`], from an already decoded snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::FleetMismatch`] for the wrong fleet,
    /// [`SnapshotError::Corrupt`] for sliding state the scorer rejects.
    pub fn restore_snapshot(&self, snapshot: &FleetSnapshot) -> Result<(), SnapshotError> {
        if snapshot.meters.len() != self.slots.len() {
            return Err(SnapshotError::FleetMismatch {
                what: format!(
                    "snapshot has {} meters, fleet has {}",
                    snapshot.meters.len(),
                    self.slots.len()
                ),
            });
        }
        if snapshot.health != self.health_config {
            return Err(SnapshotError::FleetMismatch {
                what: "health ladder configuration differs".into(),
            });
        }
        for (slot, (meter, &id)) in snapshot.meters.iter().zip(&self.ids).enumerate() {
            if meter.id != id {
                return Err(SnapshotError::FleetMismatch {
                    what: format!(
                        "slot {slot} is consumer {} in the snapshot, {id} here",
                        meter.id
                    ),
                });
            }
        }
        for (meter, slot) in snapshot.meters.iter().zip(&self.slots) {
            let mut guard = lock(slot);
            let MeterSlot {
                scorer,
                health,
                alert_totals,
            } = &mut *guard;
            scorer
                .restore_sliding(&meter.sliding)
                .map_err(|e| SnapshotError::Corrupt {
                    path: PathBuf::new(),
                    what: format!("consumer {}: {e}", meter.id),
                })?;
            *health = meter.health.into();
            *alert_totals = meter.alert_totals;
        }
        self.rebuild_aggregates();
        Ok(())
    }
}
