//! AVX2 variants of the kernels. Four f64 lanes map one-to-one onto the
//! four scalar accumulators, and each lane receives the same values in
//! the same order as its scalar counterpart — work is reordered *across*
//! accumulators only — so every result is bit-identical to
//! [`crate::scalar`]. No FMA anywhere: fused multiply-add would skip the
//! intermediate product rounding the scalar path performs.
//!
//! The `unsafe` in this module is confined to two obligations, both
//! discharged locally:
//!
//! * calling `#[target_feature(enable = "avx2")]` functions — guarded by
//!   the dispatcher in `lib.rs`, which only routes here after
//!   `is_x86_feature_detected!("avx2")`;
//! * unaligned vector loads/stores — every pointer is derived from a
//!   slice with an explicit in-bounds range check in the surrounding
//!   loop condition.
#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_cmp_pd, _mm256_loadu_pd, _mm256_max_pd, _mm256_movemask_pd,
    _mm256_mul_pd, _mm256_permute2f128_pd, _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd,
    _mm256_sub_pd, _mm256_unpackhi_pd, _mm256_unpacklo_pd, _CMP_LT_OQ,
};

use crate::scalar;
use crate::INTERLEAVE_MAX_BINS;

/// Transposes four product vectors `p0..p3` (vector `j` holding
/// accumulator `j`'s products for elements `i..i+4`) into four column
/// vectors (column `k` holding element `i+k`'s product for each of the
/// four accumulators). Accumulating the columns in order `0..4` then
/// feeds every lane its products in ascending element order — the
/// lane-order contract.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn transpose4(p0: __m256d, p1: __m256d, p2: __m256d, p3: __m256d) -> [__m256d; 4] {
    let t0 = _mm256_unpacklo_pd(p0, p1); // [p0_0, p1_0, p0_2, p1_2]
    let t1 = _mm256_unpackhi_pd(p0, p1); // [p0_1, p1_1, p0_3, p1_3]
    let t2 = _mm256_unpacklo_pd(p2, p3); // [p2_0, p3_0, p2_2, p3_2]
    let t3 = _mm256_unpackhi_pd(p2, p3); // [p2_1, p3_1, p2_3, p3_3]
    [
        _mm256_permute2f128_pd::<0x20>(t0, t2), // element i+0 across lanes
        _mm256_permute2f128_pd::<0x20>(t1, t3), // element i+1
        _mm256_permute2f128_pd::<0x31>(t0, t2), // element i+2
        _mm256_permute2f128_pd::<0x31>(t1, t3), // element i+3
    ]
}

/// See [`crate::dot4`]; dispatched only after AVX2 detection.
pub fn dot4(r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64], v: &[f64]) -> [f64; 4] {
    // SAFETY: the dispatcher verified AVX2 support.
    unsafe { dot4_avx2(r0, r1, r2, r3, v) }
}

#[target_feature(enable = "avx2")]
unsafe fn dot4_avx2(r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64], v: &[f64]) -> [f64; 4] {
    // Zip semantics: the shortest slice bounds the loop.
    let n = v
        .len()
        .min(r0.len())
        .min(r1.len())
        .min(r2.len())
        .min(r3.len());
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: `i + 4 <= n` and `n` is within every slice's length.
        let y = _mm256_loadu_pd(v.as_ptr().add(i));
        let p0 = _mm256_mul_pd(_mm256_loadu_pd(r0.as_ptr().add(i)), y);
        let p1 = _mm256_mul_pd(_mm256_loadu_pd(r1.as_ptr().add(i)), y);
        let p2 = _mm256_mul_pd(_mm256_loadu_pd(r2.as_ptr().add(i)), y);
        let p3 = _mm256_mul_pd(_mm256_loadu_pd(r3.as_ptr().add(i)), y);
        for column in transpose4(p0, p1, p2, p3) {
            acc = _mm256_add_pd(acc, column);
        }
        i += 4;
    }
    let mut out = [0.0f64; 4];
    _mm256_storeu_pd(out.as_mut_ptr(), acc);
    while i < n {
        let y = v[i];
        out[0] += r0[i] * y;
        out[1] += r1[i] * y;
        out[2] += r2[i] * y;
        out[3] += r3[i] * y;
        i += 1;
    }
    out
}

/// See [`crate::lag_quad_sums`]; dispatched only after AVX2 detection.
pub fn lag_quad_sums(series: &[f64], mean: f64, lag: usize) -> [f64; 4] {
    // SAFETY: the dispatcher verified AVX2 support.
    unsafe { lag_quad_sums_avx2(series, mean, lag) }
}

#[target_feature(enable = "avx2")]
unsafe fn lag_quad_sums_avx2(series: &[f64], mean: f64, lag: usize) -> [f64; 4] {
    let len = series.len();
    // Ragged heads, identical to the scalar reference.
    let (mut s0, mut s1, mut s2) = (0.0f64, 0.0f64, 0.0f64);
    for t in lag..(lag + 3).min(len) {
        s0 += (series[t] - mean) * (series[t - lag] - mean);
    }
    for t in lag + 1..(lag + 3).min(len) {
        s1 += (series[t] - mean) * (series[t - lag - 1] - mean);
    }
    for t in lag + 2..(lag + 3).min(len) {
        s2 += (series[t] - mean) * (series[t - lag - 2] - mean);
    }
    let mut sums = [s0, s1, s2, 0.0];
    let mut acc = _mm256_loadu_pd(sums.as_ptr());
    let mm = _mm256_set1_pd(mean);
    let mut t = lag + 3;
    while t + 4 <= len {
        // SAFETY: `t + 4 <= len`, and `t >= lag + 3` keeps every lagged
        // index `t - lag - 3 ..` non-negative and in bounds.
        let x = _mm256_sub_pd(_mm256_loadu_pd(series.as_ptr().add(t)), mm);
        let base = series.as_ptr().add(t - lag);
        let p0 = _mm256_mul_pd(x, _mm256_sub_pd(_mm256_loadu_pd(base), mm));
        let p1 = _mm256_mul_pd(x, _mm256_sub_pd(_mm256_loadu_pd(base.sub(1)), mm));
        let p2 = _mm256_mul_pd(x, _mm256_sub_pd(_mm256_loadu_pd(base.sub(2)), mm));
        let p3 = _mm256_mul_pd(x, _mm256_sub_pd(_mm256_loadu_pd(base.sub(3)), mm));
        for column in transpose4(p0, p1, p2, p3) {
            acc = _mm256_add_pd(acc, column);
        }
        t += 4;
    }
    _mm256_storeu_pd(sums.as_mut_ptr(), acc);
    while t < len {
        let x = series[t] - mean;
        sums[0] += x * (series[t - lag] - mean);
        sums[1] += x * (series[t - lag - 1] - mean);
        sums[2] += x * (series[t - lag - 2] - mean);
        sums[3] += x * (series[t - lag - 3] - mean);
        t += 1;
    }
    sums
}

/// See [`crate::hist_count`]; dispatched only after AVX2 detection.
pub fn hist_count(edges: &[f64], sample: &[f64], counts: &mut [u64]) {
    // SAFETY: the dispatcher verified AVX2 support.
    unsafe { hist_count_avx2(edges, sample, counts) }
}

#[target_feature(enable = "avx2")]
unsafe fn hist_count_avx2(edges: &[f64], sample: &[f64], counts: &mut [u64]) {
    let bins = counts.len();
    if bins > INTERLEAVE_MAX_BINS {
        // Wide layouts take the sequential reference walk; nothing to
        // vectorise around the per-value scatter.
        scalar::hist_count(edges, sample, counts);
        return;
    }
    let lo = edges[0];
    let hi = edges[bins];
    let scale = bins as f64 / (hi - lo);
    const MASK: usize = INTERLEAVE_MAX_BINS - 1;
    const MAGIC: f64 = 6_755_399_441_055_744.0; // 1.5 * 2^52
    let vlo = _mm256_set1_pd(lo);
    let vhi = _mm256_set1_pd(hi);
    let vscale = _mm256_set1_pd(scale);
    let vhalf = _mm256_set1_pd(0.5);
    let vmagic = _mm256_set1_pd(MAGIC);
    let mut acc = [[0u64; INTERLEAVE_MAX_BINS]; 4];
    let mut i = 0;
    while i + 4 <= sample.len() {
        // SAFETY: `i + 4 <= sample.len()`.
        let x = _mm256_loadu_pd(sample.as_ptr().add(i));
        // Lane-parallel clamp + guess, the exact scalar expression
        // `((value.max(lo) - lo) * scale - 0.5 + MAGIC)`: `_mm256_max_pd`
        // returns its second operand on NaN, matching `f64::max`'s
        // NaN-propagation for `value.max(lo)` — though NaN lanes are
        // routed to the clamp below and never read the guess.
        let m = _mm256_max_pd(x, vlo);
        let g = _mm256_add_pd(
            _mm256_sub_pd(_mm256_mul_pd(_mm256_sub_pd(m, vlo), vscale), vhalf),
            vmagic,
        );
        // Lane mask of `value < hi` (ordered: NaN compares false, landing
        // in the last-bin clamp exactly like the scalar `!(value < hi)`).
        let below_hi = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LT_OQ>(x, vhi));
        let mut guesses = [0.0f64; 4];
        let mut clamped = [0.0f64; 4];
        _mm256_storeu_pd(guesses.as_mut_ptr(), g);
        _mm256_storeu_pd(clamped.as_mut_ptr(), m);
        for k in 0..4 {
            let bin = if below_hi & (1 << k) == 0 {
                bins - 1
            } else {
                // lint:allow(lossy-cast-in-datapath, same 2^52 mantissa trick as the scalar guess: the low 32 bits hold the rounded value; the fixup walk repairs any miss)
                let guess = (guesses[k].to_bits() as u32 as usize).min(bins - 1);
                fixup(edges, clamped[k], guess)
            };
            acc[k][bin & MASK] += 1;
        }
        i += 4;
    }
    for &v in &sample[i..] {
        acc[0][scalar::guess_bin(edges, lo, hi, scale, bins, v) & MASK] += 1;
    }
    for (j, slot) in counts.iter_mut().enumerate() {
        *slot += acc[0][j] + acc[1][j] + acc[2][j] + acc[3][j];
    }
}

/// The guess-repair walk shared with the scalar path: moves the guessed
/// index until `edges[i] <= v < edges[i + 1]`.
#[inline(always)]
fn fixup(edges: &[f64], v: f64, guess: usize) -> usize {
    let mut i = guess;
    while v < edges[i] {
        i -= 1;
    }
    while v >= edges[i + 1] {
        i += 1;
    }
    i
}
