//! Explicit-SIMD kernels for the workspace's hot loops, with a scalar
//! reference implementation that is the source of truth.
//!
//! Three loops dominate the training and serving profiles, and each was
//! already hand-interleaved four ways before this crate existed:
//!
//! * histogram counting (`fdeta-tsdata`'s `BinEdges::count_into`) — four
//!   independent accumulator arrays;
//! * the autocovariance sweep (`fdeta-arima`'s `autocovariance`) — four
//!   lags per pass;
//! * the PCA power-iteration dot products (`fdeta-detect`'s `dot4`) —
//!   four rows per pass.
//!
//! The interleaving was chosen so that **four accumulators map exactly
//! onto four SIMD lanes**: lane `j` *is* scalar accumulator `j`, and every
//! lane sums its own products in the same ascending element order as the
//! scalar loop. The vector path therefore differs from the scalar path
//! only in instruction selection — same IEEE-754 multiplies, same adds,
//! same association — so results are **bit-identical**, which the
//! workspace's fingerprint equality gates and this crate's proptests
//! enforce. Fused multiply-add is deliberately never used: FMA contracts
//! the intermediate rounding step and would break bit-identity.
//!
//! # Lane-order contract
//!
//! Every kernel here upholds one rule: *an accumulator only ever receives
//! the same values, in the same order, as its scalar counterpart.* SIMD
//! reorders work **across** accumulators (which is free — they are
//! independent) and never **within** one. Horizontal reductions are
//! forbidden; the four lanes are stored out as four results.
//!
//! # Dispatch
//!
//! With the default `simd` feature on an `x86_64` with AVX2, the vector
//! path is selected by cached runtime detection; everywhere else (feature
//! off, other architectures, no AVX2) the scalar reference runs. The two
//! paths are interchangeable at every call site.

mod scalar;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2;

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide override forcing the scalar reference paths even when the
/// vector paths are available. Benchmarks flip this to fingerprint the
/// scalar and SIMD pipelines inside one process.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Forces (or un-forces) the scalar reference paths process-wide, for
/// in-process scalar-vs-SIMD equivalence gates. The override is observed
/// by every dispatched entry point and by [`simd_active`]; it has no
/// effect on correctness — the two paths are bit-identical by contract —
/// only on which instructions produce the result.
pub fn set_force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Whether [`set_force_scalar`] currently pins dispatch to the scalar
/// reference paths.
#[inline]
#[must_use]
pub fn force_scalar_active() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed)
}

/// Maximum bin count served by the interleaved counting fast path (the
/// paper's histograms use 10 bins; ablation sweeps stay under this too).
/// Larger layouts take a sequential walk in both implementations.
pub const INTERLEAVE_MAX_BINS: usize = 16;

/// Whether the explicit-SIMD paths are selected at runtime (the `simd`
/// feature is enabled and the CPU reports AVX2). Exposed so benchmarks
/// can record which path produced their timings.
#[inline]
#[must_use]
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        !force_scalar_active() && std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Index of the bin containing `value` among strictly increasing `edges`,
/// clamping out-of-range values into the first or last bin. `lo`, `hi`,
/// `scale` and `bins` are hoisted by the caller (`lo = edges[0]`,
/// `hi = edges[bins]`, `scale = bins / (hi - lo)`).
///
/// The guess `(value - lo) * scale` lands on the exact bin for uniform
/// edges (up to f64 rounding) and the fixup walk repairs any guess against
/// the real edges, so the returned index always satisfies
/// `edges[i] <= value < edges[i + 1]` (with clamping at the ends) — the
/// same invariant a binary search would enforce, for every finite input
/// on any strictly increasing edges.
///
/// # Panics
///
/// Contract: `edges.len() == bins + 1` and `bins >= 1`; a shorter slice
/// panics on the walk's bounds check.
#[inline(always)]
#[must_use]
pub fn guess_bin(edges: &[f64], lo: f64, hi: f64, scale: f64, bins: usize, value: f64) -> usize {
    scalar::guess_bin(edges, lo, hi, scale, bins, value)
}

/// Counts `sample` into `counts` (one slot per bin, incremented — callers
/// zero the slice when they want a fresh histogram). The layout contract
/// is [`guess_bin`]'s: `edges.len() == counts.len() + 1`.
///
/// Counting is exact integer accumulation, so the result is independent
/// of path and order by construction; the SIMD path vectorises the bin
/// *guess* arithmetic four values at a time and keeps the four
/// accumulator arrays of the scalar path.
pub fn hist_count(edges: &[f64], sample: &[f64], counts: &mut [u64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if !force_scalar_active() && std::arch::is_x86_feature_detected!("avx2") {
        avx2::hist_count(edges, sample, counts);
        return;
    }
    scalar::hist_count(edges, sample, counts);
}

/// The four lagged product sums
/// `s_j = Σ_t (x[t] - mean) · (x[t - lag - j] - mean)` for `j ∈ 0..4`,
/// each over its full range `t ∈ (lag + j)..len` — one grouped pass of the
/// autocovariance sweep, ragged heads included. Each `s_j` sums in
/// ascending `t`, exactly the order of a one-lag-at-a-time loop, so every
/// lag is bit-identical to a per-lag sweep.
///
/// Contract: `series.len() > lag` (the lag-0 sum must be non-empty);
/// shorter trailing lags simply sum fewer terms.
#[must_use]
pub fn lag_quad_sums(series: &[f64], mean: f64, lag: usize) -> [f64; 4] {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if !force_scalar_active() && std::arch::is_x86_feature_detected!("avx2") {
        return avx2::lag_quad_sums(series, mean, lag);
    }
    scalar::lag_quad_sums(series, mean, lag)
}

/// Dot products of four equal-length rows against `v` in one pass. Lane
/// `j` sums row `j`'s products in ascending element order — the same
/// order as a plain `zip`/`sum` dot product — so all four results are
/// bit-identical to four separate scalar dots.
///
/// Effective length is the shortest of the five slices (zip semantics).
#[must_use]
pub fn dot4(r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64], v: &[f64]) -> [f64; 4] {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if !force_scalar_active() && std::arch::is_x86_feature_detected!("avx2") {
        return avx2::dot4(r0, r1, r2, r3, v);
    }
    scalar::dot4(r0, r1, r2, r3, v)
}

/// The scalar reference implementations, exported for differential tests
/// and fingerprint gates: `scalar_ref::hist_count` et al. are what the
/// dispatched entry points must match bit for bit.
pub mod scalar_ref {
    pub use crate::scalar::{dot4, hist_count, lag_quad_sums};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatched_paths_match_scalar_reference() {
        // Smoke-level check; the exhaustive sweeps live in tests/.
        let v: Vec<f64> = (0..337).map(|i| (i as f64 * 0.37).sin().abs()).collect();
        let r: Vec<f64> = (0..337).map(|i| (i as f64 * 0.11).cos() + 2.0).collect();
        let d = dot4(&v, &r, &v, &r, &r);
        let s = scalar_ref::dot4(&v, &r, &v, &r, &r);
        for j in 0..4 {
            assert_eq!(d[j].to_bits(), s[j].to_bits(), "lane {j}");
        }

        let lags = lag_quad_sums(&v, 0.5, 2);
        let ref_lags = scalar_ref::lag_quad_sums(&v, 0.5, 2);
        for j in 0..4 {
            assert_eq!(lags[j].to_bits(), ref_lags[j].to_bits(), "lag {j}");
        }

        let edges: Vec<f64> = (0..=10).map(|i| i as f64 * 0.1).collect();
        let mut a = vec![0u64; 10];
        let mut b = vec![0u64; 10];
        hist_count(&edges, &v, &mut a);
        scalar_ref::hist_count(&edges, &v, &mut b);
        assert_eq!(a, b);
    }
}
