//! Scalar reference implementations — the semantics every SIMD variant
//! must reproduce bit for bit. These are the workspace's original
//! hand-interleaved hot loops, moved here verbatim so the vector paths
//! and the reference share one home.

use crate::INTERLEAVE_MAX_BINS;

/// See [`crate::guess_bin`].
#[inline(always)]
// The negation is load-bearing: `value >= hi` is false for NaN, which
// must take the clamp branch rather than reach the indexing arithmetic.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn guess_bin(edges: &[f64], lo: f64, hi: f64, scale: f64, bins: usize, value: f64) -> usize {
    if !(value < hi) {
        // Clamp `value >= hi` into the last bin; a NaN (which fails the
        // comparison) also lands here instead of indexing out of bounds.
        return bins - 1;
    }
    // Clamp the low side arithmetically (`max` is a single branchless
    // instruction) rather than with an early `value <= lo` return: real
    // meter data is full of exact zeros scattered among ordinary readings,
    // and a data-dependent branch on them mispredicts constantly.
    let v = value.max(lo);
    // Float-to-int via the 2^52 mantissa trick: adding 1.5 * 2^52 to a
    // small non-negative double leaves round-to-nearest(x) in the low
    // mantissa bits, skipping the saturation fixups `as usize` emits.
    // The guess rounds instead of truncating, so it can sit one bin high
    // or low — the fixup walk below repairs that; only the walk's
    // invariant, not the guess, carries the exactness argument.
    const MAGIC: f64 = 6_755_399_441_055_744.0; // 1.5 * 2^52
                                                // lint:allow(lossy-cast-in-datapath, the low 32 mantissa bits hold the whole rounded guess by construction; any impossible truncation is repaired by the fixup walk)
    let g = ((v - lo) * scale - 0.5 + MAGIC).to_bits() as u32 as usize;
    let mut i = g.min(bins - 1);
    while v < edges[i] {
        i -= 1;
    }
    while v >= edges[i + 1] {
        i += 1;
    }
    i
}

/// See [`crate::hist_count`].
pub fn hist_count(edges: &[f64], sample: &[f64], counts: &mut [u64]) {
    let bins = counts.len();
    let lo = edges[0];
    let hi = edges[bins];
    let scale = bins as f64 / (hi - lo);
    if bins <= INTERLEAVE_MAX_BINS {
        // Four independent accumulator arrays break the store-to-load
        // dependency chain that serialises repeated increments of the same
        // (often-hit) bin; u64 addition is associative and commutative, so
        // the merged counts are identical to the sequential walk.
        // The `& (INTERLEAVE_MAX_BINS - 1)` mask is an identity here
        // (every index is `< bins <= INTERLEAVE_MAX_BINS`); it exists to
        // make the in-boundedness visible to the compiler so the
        // increments carry no bounds-check branches.
        const MASK: usize = INTERLEAVE_MAX_BINS - 1;
        let mut acc = [[0u64; INTERLEAVE_MAX_BINS]; 4];
        let mut quads = sample.chunks_exact(4);
        for quad in &mut quads {
            acc[0][guess_bin(edges, lo, hi, scale, bins, quad[0]) & MASK] += 1;
            acc[1][guess_bin(edges, lo, hi, scale, bins, quad[1]) & MASK] += 1;
            acc[2][guess_bin(edges, lo, hi, scale, bins, quad[2]) & MASK] += 1;
            acc[3][guess_bin(edges, lo, hi, scale, bins, quad[3]) & MASK] += 1;
        }
        for &v in quads.remainder() {
            acc[0][guess_bin(edges, lo, hi, scale, bins, v) & MASK] += 1;
        }
        for (i, slot) in counts.iter_mut().enumerate() {
            *slot += acc[0][i] + acc[1][i] + acc[2][i] + acc[3][i];
        }
    } else {
        for &v in sample {
            counts[guess_bin(edges, lo, hi, scale, bins, v)] += 1;
        }
    }
}

/// See [`crate::lag_quad_sums`]. The ragged heads (`t < lag + 3`, where
/// the later lags are not yet in range) are peeled off first, in the same
/// ascending-`t` order as the main loop.
pub fn lag_quad_sums(series: &[f64], mean: f64, lag: usize) -> [f64; 4] {
    let len = series.len();
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for t in lag..(lag + 3).min(len) {
        s0 += (series[t] - mean) * (series[t - lag] - mean);
    }
    for t in lag + 1..(lag + 3).min(len) {
        s1 += (series[t] - mean) * (series[t - lag - 1] - mean);
    }
    for t in lag + 2..(lag + 3).min(len) {
        s2 += (series[t] - mean) * (series[t - lag - 2] - mean);
    }
    for t in lag + 3..len {
        let x = series[t] - mean;
        s0 += x * (series[t - lag] - mean);
        s1 += x * (series[t - lag - 1] - mean);
        s2 += x * (series[t - lag - 2] - mean);
        s3 += x * (series[t - lag - 3] - mean);
    }
    [s0, s1, s2, s3]
}

/// See [`crate::dot4`].
pub fn dot4(r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64], v: &[f64]) -> [f64; 4] {
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (((&y, &x0), (&x1, &x2)), &x3) in v.iter().zip(r0).zip(r1.iter().zip(r2)).zip(r3) {
        a0 += x0 * y;
        a1 += x1 * y;
        a2 += x2 * y;
        a3 += x3 * y;
    }
    [a0, a1, a2, a3]
}
