//! Differential bit-identity tests: the dispatched kernels (SIMD when the
//! CPU supports it) must agree with the scalar reference to the last bit,
//! across remainder lengths (`len % 4 ∈ {0, 1, 2, 3}`), empty and
//! single-element inputs, and denormal-adjacent magnitudes.

use proptest::prelude::*;

use fdeta_kernels::{dot4, hist_count, lag_quad_sums, scalar_ref, simd_active};

/// Values spanning ordinary magnitudes, signed values, exact zeros, and
/// denormal-adjacent tiny magnitudes (scaled down to the subnormal range)
/// so the lanes exercise gradual-underflow rounding too.
fn element() -> impl Strategy<Value = f64> {
    prop_oneof![
        (-100.0f64..100.0).boxed(),
        Just(0.0f64).boxed(),
        // f64::MIN_POSITIVE is the smallest *normal*; dividing by up to
        // 2^40 pushes products and sums through the subnormal range.
        (1.0f64..1024.0)
            .prop_map(|m| m * f64::MIN_POSITIVE / 1099511627776.0)
            .boxed(),
        (1.0f64..1024.0)
            .prop_map(|m| -m * f64::MIN_POSITIVE)
            .boxed(),
    ]
}

/// Lengths concentrated around the lane-width boundaries: every remainder
/// class of 4 at small sizes, plus longer runs for the main loops.
fn lane_len() -> impl Strategy<Value = usize> {
    prop_oneof![0usize..12, 330usize..342, 64usize..90]
}

fn series(len: impl Strategy<Value = usize>) -> impl Strategy<Value = Vec<f64>> {
    len.prop_flat_map(|n| proptest::collection::vec(element(), n))
}

fn assert_bits4(got: [f64; 4], want: [f64; 4]) {
    for j in 0..4 {
        assert_eq!(
            got[j].to_bits(),
            want[j].to_bits(),
            "lane {} diverged: {:e} vs {:e}",
            j,
            got[j],
            want[j]
        );
    }
}

proptest! {
    /// `dot4` over every remainder class and magnitude mix is bit-identical
    /// to the scalar zip-chain reference.
    #[test]
    fn dot4_matches_scalar_bit_for_bit(
        rows in series(lane_len()).prop_flat_map(|v| {
            let n = v.len();
            (
                Just(v),
                proptest::collection::vec(element(), n),
                proptest::collection::vec(element(), n),
                proptest::collection::vec(element(), n),
                proptest::collection::vec(element(), n),
            )
        }),
    ) {
        let (v, r0, r1, r2, r3) = rows;
        assert_bits4(
            dot4(&r0, &r1, &r2, &r3, &v),
            scalar_ref::dot4(&r0, &r1, &r2, &r3, &v),
        );
    }

    /// `lag_quad_sums` — ragged heads, short tails, and every alignment of
    /// the main loop — is bit-identical to the scalar reference for each of
    /// the four lags.
    #[test]
    fn lag_quad_sums_matches_scalar_bit_for_bit(
        series in series(1usize..96),
        lag_frac in 0.0f64..1.0,
        mean in -50.0f64..50.0,
    ) {
        // lag ∈ [0, len): keeps the lag-0 sum non-empty per the contract.
        let lag = ((series.len() as f64 - 1.0) * lag_frac) as usize;
        assert_bits4(
            lag_quad_sums(&series, mean, lag),
            scalar_ref::lag_quad_sums(&series, mean, lag),
        );
    }

    /// `hist_count` produces identical u64 counts through the SIMD guess
    /// path and the scalar path, for narrow (interleaved) and wide
    /// (sequential) bin layouts, including empty samples and values outside
    /// the edge range.
    #[test]
    fn hist_count_matches_scalar_exactly(
        sample in series(0usize..48),
        bins in 1usize..24,
        span in 1.0f64..200.0,
    ) {
        let lo = -span / 2.0;
        let edges: Vec<f64> = (0..=bins)
            .map(|i| lo + span * i as f64 / bins as f64)
            .collect();
        let mut fast = vec![0u64; bins];
        let mut reference = vec![0u64; bins];
        hist_count(&edges, &sample, &mut fast);
        scalar_ref::hist_count(&edges, &sample, &mut reference);
        prop_assert_eq!(&fast, &reference);
        prop_assert_eq!(fast.iter().sum::<u64>() as usize, sample.len());
    }
}

/// The fixed boundary cases the property strategies only hit by chance:
/// exactly-empty and single-element inputs through both dispatch paths.
#[test]
fn empty_and_single_element_inputs() {
    let empty: [f64; 0] = [];
    let one = [3.5f64];

    assert_eq!(dot4(&empty, &empty, &empty, &empty, &empty), [0.0; 4]);
    let d = dot4(&one, &one, &one, &one, &one);
    let s = scalar_ref::dot4(&one, &one, &one, &one, &one);
    assert_eq!(d.map(f64::to_bits), s.map(f64::to_bits));

    // Single element, lag 0: only s0 has a term; s1..s3 are empty sums.
    let lags = lag_quad_sums(&one, 1.0, 0);
    let ref_lags = scalar_ref::lag_quad_sums(&one, 1.0, 0);
    assert_eq!(lags.map(f64::to_bits), ref_lags.map(f64::to_bits));
    assert_eq!(lags[1], 0.0);
    assert_eq!(lags[2], 0.0);
    assert_eq!(lags[3], 0.0);

    let edges = [0.0, 1.0, 2.0];
    let mut counts = [0u64; 2];
    hist_count(&edges, &empty, &mut counts);
    assert_eq!(counts, [0, 0]);
    hist_count(&edges, &one, &mut counts);
    assert_eq!(counts, [0, 1]); // 3.5 clamps into the last bin
}

/// On this CI matrix the x86_64 runners have AVX2, so the differential
/// sweeps above genuinely cross the SIMD/scalar boundary; record which
/// path ran so a silent fallback shows up in the test log.
#[test]
fn report_dispatch_path() {
    if cfg!(all(feature = "simd", target_arch = "x86_64")) && simd_active() {
        eprintln!("kernels: SIMD (AVX2) path active");
    } else {
        eprintln!("kernels: scalar fallback active");
    }
}
