//! Property-based tests of the evaluation aggregation itself: Metric 1
//! and Metric 2 must satisfy structural invariants for *any* per-consumer
//! outcome matrix, not just ones produced by real runs.

use proptest::prelude::*;

use fdeta_detect::eval::{ConsumerEval, DetectorKind, EvalConfig, Evaluation, Metric2, Scenario};

const ND: usize = 8;
const NS: usize = 5;

fn consumer_strategy() -> impl Strategy<Value = ConsumerEval> {
    (
        any::<u32>(),
        proptest::collection::vec(any::<bool>(), ND),
        proptest::collection::vec(any::<bool>(), ND * NS),
        proptest::collection::vec(0.0f64..1000.0, NS * 2),
        proptest::collection::vec(0.0f64..1000.0, ND * NS * 2),
        any::<bool>(),
    )
        .prop_map(|(id, fps, detected, full, evading, skipped)| {
            let mut eval = ConsumerEval {
                id,
                skipped,
                false_positive: [false; ND],
                detected: [[false; NS]; ND],
                full_gain: [Metric2::default(); NS],
                evading_gain: [[Metric2::default(); NS]; ND],
            };
            for d in 0..ND {
                eval.false_positive[d] = fps[d];
                for s in 0..NS {
                    eval.detected[d][s] = detected[d * NS + s];
                }
            }
            for s in 0..NS {
                let kwh = full[s * 2];
                let dollars = full[s * 2 + 1];
                eval.full_gain[s] = Metric2 {
                    stolen_kwh: kwh,
                    profit_dollars: dollars,
                };
                for d in 0..ND {
                    // Evading gains never exceed the full gain.
                    let base = (d * NS + s) * 2;
                    eval.evading_gain[d][s] = Metric2 {
                        stolen_kwh: evading[base].min(kwh),
                        profit_dollars: evading[base + 1].min(dollars),
                    };
                }
            }
            eval
        })
}

fn evaluation_strategy() -> impl Strategy<Value = Evaluation> {
    proptest::collection::vec(consumer_strategy(), 0..12).prop_map(|consumers| Evaluation {
        consumers,
        config: EvalConfig::default(),
    })
}

proptest! {
    /// Metric 1 is a probability for every cell.
    #[test]
    fn metric1_is_a_probability(eval in evaluation_strategy()) {
        for d in DetectorKind::ALL {
            for s in Scenario::ALL {
                let m1 = eval.metric1(d, s);
                prop_assert!((0.0..=1.0).contains(&m1), "{d:?}/{s:?}: {m1}");
            }
        }
    }

    /// Metric 2 is non-negative, and a detector that succeeds for every
    /// consumer (all detected, no FPs, zero evading gains) leaves nothing.
    #[test]
    fn metric2_nonnegative(eval in evaluation_strategy()) {
        for d in DetectorKind::ALL {
            for s in Scenario::ALL {
                let m2 = eval.metric2(d, s);
                prop_assert!(m2.stolen_kwh >= 0.0);
                prop_assert!(m2.profit_dollars >= 0.0);
            }
        }
    }

    /// Perfect detectors leave zero residual gain.
    #[test]
    fn perfect_detector_zero_residual(mut eval in evaluation_strategy()) {
        for c in &mut eval.consumers {
            c.false_positive = [false; ND];
            c.detected = [[true; NS]; ND];
            c.evading_gain = [[Metric2::default(); NS]; ND];
        }
        for d in DetectorKind::ALL {
            for s in Scenario::ALL {
                let m2 = eval.metric2(d, s);
                prop_assert_eq!(m2.stolen_kwh, 0.0);
                prop_assert_eq!(m2.profit_dollars, 0.0);
                if eval.evaluated_consumers() > 0 {
                    prop_assert_eq!(eval.metric1(d, s), 1.0);
                }
            }
        }
    }

    /// For summing scenarios (Class 1B) the aggregate dominates any single
    /// consumer's residual; for max scenarios it equals some consumer's
    /// residual (or zero).
    #[test]
    fn aggregation_mode_respected(eval in evaluation_strategy()) {
        for d in DetectorKind::ALL {
            for s in Scenario::ALL {
                let m2 = eval.metric2(d, s);
                let per_consumer: Vec<f64> = eval
                    .consumers
                    .iter()
                    .filter(|c| !c.skipped)
                    .map(|c| {
                        let idx_d = DetectorKind::ALL.iter().position(|&x| x == d).unwrap();
                        let idx_s = Scenario::ALL.iter().position(|&x| x == s).unwrap();
                        if c.false_positive[idx_d] {
                            c.full_gain[idx_s].profit_dollars.max(0.0)
                        } else {
                            c.evading_gain[idx_d][idx_s].profit_dollars.max(0.0)
                        }
                    })
                    .collect();
                if s.metric2_sums() {
                    let total: f64 = per_consumer.iter().sum();
                    prop_assert!((m2.profit_dollars - total).abs() < 1e-6);
                } else {
                    let max = per_consumer.iter().cloned().fold(0.0, f64::max);
                    prop_assert!((m2.profit_dollars - max).abs() < 1e-6);
                }
            }
        }
    }

    /// Skipped consumers never contribute to either metric.
    #[test]
    fn skipped_consumers_are_inert(eval in evaluation_strategy()) {
        let mut all_skipped = eval.clone();
        for c in &mut all_skipped.consumers {
            c.skipped = true;
        }
        prop_assert_eq!(all_skipped.evaluated_consumers(), 0);
        for d in DetectorKind::ALL {
            for s in Scenario::ALL {
                prop_assert_eq!(all_skipped.metric1(d, s), 0.0);
                prop_assert_eq!(all_skipped.metric2(d, s).profit_dollars, 0.0);
            }
        }
    }
}
