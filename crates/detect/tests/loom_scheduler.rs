//! Loom model check of the eval scheduler's claim/abort protocol.
//!
//! The work-stealing fan-out in `engine::run_work_stealing` coordinates
//! its workers through [`WorkQueue`]: an `AtomicUsize` hands out work
//! indices, an `AtomicBool` aborts the fleet on the first error. These
//! tests let [loom](https://docs.rs/loom) exhaust every interleaving of
//! that protocol for small fleets and assert the invariants the engine's
//! correctness rests on:
//!
//! 1. no index is ever claimed twice (no double execution);
//! 2. absent an abort, every index is claimed exactly once (no lost
//!    items);
//! 3. once a worker aborts, claims quiesce — work claimed *after* the
//!    abort flag is visible is impossible.
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p fdeta-detect --test loom_scheduler --release
//! ```
//!
//! Without `--cfg loom` this file compiles to nothing, so the ordinary
//! test suite is unaffected.
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;

use fdeta_detect::engine::WorkQueue;

/// Each claimed index lands in exactly one worker's local buffer.
#[test]
fn no_index_is_claimed_twice() {
    loom::model(|| {
        const N: usize = 3;
        let queue = Arc::new(WorkQueue::new(N));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    let mut claimed = Vec::new();
                    while let Some(index) = queue.claim() {
                        claimed.push(index);
                        queue.complete();
                    }
                    claimed
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut deduped = all.clone();
        deduped.dedup();
        assert_eq!(all, deduped, "an index was claimed by two workers");
    });
}

/// With no abort, the fleet drains the queue completely: every index in
/// `0..n` is claimed exactly once and `completed()` reaches `n`.
#[test]
fn no_items_are_lost_without_abort() {
    loom::model(|| {
        const N: usize = 3;
        let queue = Arc::new(WorkQueue::new(N));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                thread::spawn(move || {
                    let mut claimed = Vec::new();
                    while let Some(index) = queue.claim() {
                        claimed.push(index);
                        queue.complete();
                    }
                    claimed
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..N).collect::<Vec<_>>(), "an index was lost");
        assert_eq!(queue.completed(), N);
    });
}

/// One worker aborts after its first claim; the other keeps claiming.
/// Every interleaving must uphold both safety invariants: no index is
/// claimed twice, and no claim succeeds after the abort flag is visible
/// to the claiming thread.
#[test]
fn abort_quiesces_the_fleet() {
    loom::model(|| {
        const N: usize = 3;
        let queue = Arc::new(WorkQueue::new(N));

        let aborter = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                let claimed = queue.claim();
                queue.abort();
                claimed
            })
        };
        let worker = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                let mut claimed = Vec::new();
                while let Some(index) = queue.claim() {
                    // claim() checked the abort flag before handing this
                    // index out, so at that moment the flag was unset.
                    claimed.push(index);
                    queue.complete();
                }
                claimed
            })
        };

        let mut all: Vec<usize> = worker.join().unwrap();
        all.extend(aborter.join().unwrap());
        all.sort_unstable();
        let mut deduped = all.clone();
        deduped.dedup();
        assert_eq!(all, deduped, "an index was claimed by two workers");

        // The fleet has quiesced: with the abort flag set, no further
        // work is handed out, in any interleaving.
        assert!(queue.is_aborted());
        assert_eq!(queue.claim(), None, "claim succeeded after abort");
    });
}
