//! Acceptance test for the dirty-fleet path: dropout plus a comms burst
//! over a synthetic fleet must never abort the run, must quarantine only
//! consumers the fault log actually touched, and must leave the clean
//! subset's Table II numbers bit-identical to a no-fault run.

use std::collections::BTreeSet;

use fdeta_cer_synth::{DatasetConfig, FaultModel, ObservedDataset, SyntheticDataset};
use fdeta_detect::{EvalConfig, EvalEngine, RobustEngine, RobustnessConfig};

fn fleet(consumers: usize, weeks: usize, seed: u64) -> SyntheticDataset {
    SyntheticDataset::generate(&DatasetConfig::small(consumers, weeks, seed))
}

fn config(threads: usize) -> EvalConfig {
    EvalConfig {
        threads,
        ..EvalConfig::fast(8, 3)
    }
}

/// Runs the acceptance scenario — 5% dropout plus one fleet-wide comms
/// burst — over `consumers` meters and checks every acceptance property.
fn check_fleet(consumers: usize, seed: u64) {
    let data = fleet(consumers, 12, seed);
    let model = FaultModel::dropout_and_burst(seed, 0.05);
    let (observed, log) = model.degrade(&data).expect("degrade never fails");
    let affected = log.affected_consumers();

    let robust = RobustEngine::train(&observed, &config(3), &RobustnessConfig::default())
        .expect("the fleet completes despite faults");
    let report = robust.evaluate().expect("scoring completes");

    // Quarantine only ever hits consumers the fault log touched.
    let quarantined: BTreeSet<u32> = robust.quarantined_ids().into_iter().collect();
    assert!(
        quarantined.is_subset(&affected),
        "quarantined {quarantined:?} not a subset of fault-affected {affected:?}"
    );
    assert_eq!(
        report.evaluation.consumers.len() + quarantined.len(),
        consumers,
        "every consumer is either evaluated or quarantined"
    );

    // The untouched subset's per-consumer results are bit-identical to a
    // run that never saw a fault model at all.
    let baseline = EvalEngine::train(&data, &config(3))
        .expect("clean fleet trains")
        .evaluate()
        .expect("clean fleet scores");
    for eval in &report.evaluation.consumers {
        if affected.contains(&eval.id) {
            continue;
        }
        let clean = baseline
            .consumers
            .iter()
            .find(|c| c.id == eval.id)
            .expect("clean run covers every meter");
        assert_eq!(
            eval, clean,
            "consumer {} drifted from the no-fault run",
            eval.id
        );
    }

    // Same seed, different thread count: byte-identical quarantine set and
    // per-consumer results.
    let rerun = RobustEngine::train(&observed, &config(1), &RobustnessConfig::default())
        .expect("single-threaded rerun completes");
    assert_eq!(robust.quarantined(), rerun.quarantined());
    assert_eq!(
        report.evaluation.consumers,
        rerun.evaluate().expect("scores").evaluation.consumers
    );
}

#[test]
fn dropout_and_burst_fleet_degrades_gracefully() {
    check_fleet(24, 90);
}

#[test]
fn fault_injection_is_deterministic_in_the_seed() {
    let data = fleet(10, 12, 91);
    let model = FaultModel::dropout_and_burst(91, 0.05);
    let (a, log_a) = model.degrade(&data).expect("degrades");
    let (b, log_b) = model.degrade(&data).expect("degrades");
    assert_eq!(log_a, log_b, "fault logs must be identical run to run");
    for (ra, rb) in a.iter().zip(b.iter()) {
        assert_eq!(ra.id, rb.id);
        assert_eq!(ra.observed, rb.observed);
    }
}

#[test]
fn heavy_faults_still_complete_the_fleet() {
    // A much dirtier fleet: higher dropout, stuck meters, spikes. The run
    // must still complete with every consumer accounted for — zero panics
    // is the whole point of the lenient path.
    let data = fleet(12, 12, 92);
    let (observed, _log) = FaultModel::dirty(92).degrade(&data).expect("degrades");
    let robust = RobustEngine::train(&observed, &config(2), &RobustnessConfig::default())
        .expect("completes");
    let report = robust.evaluate().expect("scores");
    assert_eq!(
        report.evaluation.consumers.len() + report.quarantined.len(),
        12
    );
}

/// The paper-scale acceptance criterion: 500 consumers, 5% dropout plus a
/// comms burst. Run with `cargo test -- --ignored` when you have minutes
/// to spare.
#[test]
#[ignore = "paper-scale: ~500 consumers, minutes of wall clock"]
fn paper_scale_fleet_degrades_gracefully() {
    check_fleet(500, 93);
}

#[test]
fn observed_dataset_wraps_without_loss() {
    let data = fleet(4, 12, 94);
    let observed = ObservedDataset::fully_observed(&data).expect("wraps");
    assert_eq!(observed.len(), 4);
    for (record, clean) in observed.iter().zip(data.iter()) {
        assert_eq!(record.id, clean.id);
        assert!((record.observed.coverage() - 1.0).abs() < f64::EPSILON);
    }
}
