//! Cold-vs-warm equivalence for the on-disk artifact store.
//!
//! The store's whole contract is that a warm run is indistinguishable from
//! a cold one: loading persisted artifacts must reproduce the cold run's
//! every number **bit-identically**, because floats are persisted as raw
//! bit patterns and everything derived is recomputed by the same code the
//! cold path runs. These tests pin that contract, plus the degradation
//! behaviour for corrupt entries and the key's invalidation rules.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use fdeta_cer_synth::{DatasetConfig, SyntheticDataset};
use fdeta_detect::store::{ArtifactStore, CacheStatus};
use fdeta_detect::{EvalConfig, EvalEngine};

fn corpus(consumers: usize, weeks: usize, seed: u64) -> SyntheticDataset {
    SyntheticDataset::generate(&DatasetConfig::small(consumers, weeks, seed))
}

fn config() -> EvalConfig {
    EvalConfig {
        threads: 2,
        ..EvalConfig::fast(8, 4)
    }
}

/// A unique, self-cleaning store directory per test.
struct TempStore {
    root: PathBuf,
}

impl TempStore {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("fdeta-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        Self { root }
    }

    fn store(&self) -> ArtifactStore {
        ArtifactStore::new(&self.root)
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn warm_load_is_bit_identical_to_cold_training() {
    let data = corpus(5, 12, 41);
    let cfg = config();
    let tmp = TempStore::new("equivalence");
    let store = tmp.store();

    // Cold run: trains, persists.
    let (cold, outcome) = store.engine(&data, &cfg, None).expect("cold engine");
    assert_eq!(outcome.status, CacheStatus::Miss);
    assert_eq!(outcome.save_error, None, "save must succeed");
    assert!(outcome.path.exists(), "artifact file written");
    let cold_eval = cold.evaluate().expect("cold evaluation");

    // Warm run: loads, retrains nothing.
    let (warm, outcome) = store.engine(&data, &cfg, None).expect("warm engine");
    assert_eq!(outcome.status, CacheStatus::Hit);
    assert_eq!(
        warm.stats().train_wall,
        Duration::ZERO,
        "a cache hit must skip the training stage entirely"
    );
    let warm_eval = warm.evaluate().expect("warm evaluation");

    // The headline contract: every score, gain, and verdict matches the
    // cold run exactly — not approximately.
    assert_eq!(cold_eval, warm_eval);

    // Threshold sweeps score from the same cached state.
    let alphas = [0.02, 0.05, 0.10, 0.25];
    assert_eq!(
        cold.kld_alpha_sweep(&alphas).expect("cold sweep"),
        warm.kld_alpha_sweep(&alphas).expect("warm sweep")
    );
    assert_eq!(
        cold.kld_roc(&alphas).expect("cold roc"),
        warm.kld_roc(&alphas).expect("warm roc")
    );

    // The serialized Table II report (what the binaries write to disk)
    // must be byte-for-byte identical. With the offline serde stubs both
    // sides render empty; with real serde this is the full JSON document.
    let cold_json = serde_json::to_string(&cold_eval).expect("serialize");
    let warm_json = serde_json::to_string(&warm_eval).expect("serialize");
    assert_eq!(cold_json, warm_json);
}

#[test]
fn explicit_save_load_round_trip_matches() {
    let data = corpus(4, 12, 42);
    let cfg = config();
    let tmp = TempStore::new("save-load");
    let store = tmp.store();

    let engine = EvalEngine::train(&data, &cfg).expect("train");
    let cold_eval = engine.evaluate().expect("cold evaluation");
    store.save(&data, &cfg, engine.artifacts()).expect("save");

    let artifacts = store
        .load(&data, &cfg)
        .expect("load")
        .expect("entry exists");
    assert_eq!(artifacts.len(), data.len());
    let warm = EvalEngine::from_artifacts(&cfg, artifacts).expect("from_artifacts");
    assert_eq!(warm.evaluate().expect("warm evaluation"), cold_eval);
}

#[test]
fn missing_entry_is_a_clean_miss_not_an_error() {
    let data = corpus(2, 12, 43);
    let tmp = TempStore::new("miss");
    assert!(tmp
        .store()
        .load(&data, &config())
        .expect("no entry")
        .is_none());
}

#[test]
fn corrupt_entry_degrades_to_a_retrain() {
    let data = corpus(3, 12, 44);
    let cfg = config();
    let tmp = TempStore::new("corrupt");
    let store = tmp.store();

    let (cold, _) = store.engine(&data, &cfg, None).expect("cold engine");
    let cold_eval = cold.evaluate().expect("cold evaluation");
    let path = store.path_for(&data, &cfg);

    // Flip one byte in the middle of the payload: the checksum must catch
    // it, and the engine must fall back to retraining rather than erroring
    // or silently using mangled artifacts.
    let mut bytes = fs::read(&path).expect("read entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&path, &bytes).expect("rewrite entry");

    assert!(store.load(&data, &cfg).is_err(), "corruption is detected");
    let (rebuilt, outcome) = store.engine(&data, &cfg, None).expect("rebuilt engine");
    assert_eq!(outcome.status, CacheStatus::Invalid);
    assert!(outcome.load_error.is_some(), "the rejection is reported");
    assert_eq!(outcome.save_error, None, "the entry is rewritten");
    assert_eq!(rebuilt.evaluate().expect("rebuilt evaluation"), cold_eval);

    // And the rewritten entry is valid again.
    let (warm, outcome) = store.engine(&data, &cfg, None).expect("warm engine");
    assert_eq!(outcome.status, CacheStatus::Hit);
    assert_eq!(warm.evaluate().expect("warm evaluation"), cold_eval);
}

#[test]
fn truncated_entry_is_rejected() {
    let data = corpus(2, 12, 45);
    let cfg = config();
    let tmp = TempStore::new("truncated");
    let store = tmp.store();
    let engine = EvalEngine::train(&data, &cfg).expect("train");
    let path = store.save(&data, &cfg, engine.artifacts()).expect("save");
    let bytes = fs::read(&path).expect("read");
    fs::write(&path, &bytes[..bytes.len() / 3]).expect("truncate");
    assert!(store.load(&data, &cfg).is_err());
}

#[test]
fn key_ignores_attack_parameters_but_tracks_training_parameters() {
    let data = corpus(2, 12, 46);
    let base = config();

    // Attack-side knobs share the cache entry: the trained state does not
    // depend on them.
    let mut reseeded = base.clone();
    reseeded.seed ^= 0xABCD;
    reseeded.attack_vectors += 3;
    reseeded.threads = 1;
    assert_eq!(
        ArtifactStore::corpus_key(&data, &base),
        ArtifactStore::corpus_key(&data, &reseeded)
    );

    // Training-side knobs invalidate.
    let mut more_bins = base.clone();
    more_bins.bins += 1;
    assert_ne!(
        ArtifactStore::corpus_key(&data, &base),
        ArtifactStore::corpus_key(&data, &more_bins)
    );
    let mut longer = base.clone();
    longer.train_weeks += 1;
    assert_ne!(
        ArtifactStore::corpus_key(&data, &base),
        ArtifactStore::corpus_key(&data, &longer)
    );

    // A different corpus invalidates.
    let other = corpus(2, 12, 47);
    assert_ne!(
        ArtifactStore::corpus_key(&data, &base),
        ArtifactStore::corpus_key(&other, &base)
    );
}

#[test]
fn entries_for_different_configs_coexist() {
    let data = corpus(2, 12, 48);
    let base = config();
    let mut more_bins = base.clone();
    more_bins.bins += 2;
    let tmp = TempStore::new("coexist");
    let store = tmp.store();

    let (_, a) = store.engine(&data, &base, None).expect("first config");
    let (_, b) = store
        .engine(&data, &more_bins, None)
        .expect("second config");
    assert_ne!(a.path, b.path, "distinct keys, distinct files");
    assert_eq!(
        store.engine(&data, &base, None).expect("warm").1.status,
        CacheStatus::Hit
    );
    assert_eq!(
        store
            .engine(&data, &more_bins, None)
            .expect("warm")
            .1
            .status,
        CacheStatus::Hit
    );
}

#[test]
fn sharded_save_load_matches_monolithic_bit_for_bit() {
    let data = corpus(7, 12, 49);
    let cfg = config();
    let tmp = TempStore::new("sharded");
    let mono_store = ArtifactStore::new(tmp.root.join("mono"));
    let shard_store = ArtifactStore::sharded(tmp.root.join("sharded"), 3);
    assert_eq!(shard_store.shard_count(), 3);

    let engine = EvalEngine::train(&data, &cfg).expect("train");
    let cold_eval = engine.evaluate().expect("cold evaluation");
    mono_store
        .save(&data, &cfg, engine.artifacts())
        .expect("monolithic save");
    let manifest = shard_store
        .save(&data, &cfg, engine.artifacts())
        .expect("sharded save");
    assert!(
        manifest.to_string_lossy().ends_with(".manifest"),
        "sharded save reports the manifest path"
    );

    // Both layouts load fleets that evaluate bit-identically to the cold
    // run and to each other.
    for store in [&mono_store, &shard_store] {
        let artifacts = store
            .load(&data, &cfg)
            .expect("load")
            .expect("entry exists");
        assert_eq!(artifacts.len(), data.len());
        let warm = EvalEngine::from_artifacts(&cfg, artifacts).expect("from_artifacts");
        assert_eq!(warm.evaluate().expect("warm evaluation"), cold_eval);
    }

    // Layout auto-detection: a monolithic-configured store pointed at the
    // sharded directory loads the manifest layout, and vice versa.
    let cross = ArtifactStore::new(shard_store.root());
    let artifacts = cross
        .load(&data, &cfg)
        .expect("cross-layout load")
        .expect("entry exists");
    let warm = EvalEngine::from_artifacts(&cfg, artifacts).expect("from_artifacts");
    assert_eq!(warm.evaluate().expect("cross evaluation"), cold_eval);
}

#[test]
fn sharded_entry_with_corrupt_or_missing_shard_is_rejected() {
    let data = corpus(5, 12, 50);
    let cfg = config();
    let tmp = TempStore::new("sharded-corrupt");
    let store = ArtifactStore::sharded(&tmp.root, 2);
    let engine = EvalEngine::train(&data, &cfg).expect("train");
    store.save(&data, &cfg, engine.artifacts()).expect("save");

    // Corrupt one shard: the load must fail, not silently mix fleets.
    let shard0: PathBuf = fs::read_dir(&tmp.root)
        .expect("read dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.to_string_lossy().ends_with(".shard0"))
        .expect("shard file exists");
    let mut bytes = fs::read(&shard0).expect("read shard");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&shard0, &bytes).expect("rewrite shard");
    assert!(store.load(&data, &cfg).is_err(), "corrupt shard detected");

    // Remove it entirely: still an error (the manifest promises it), and
    // the engine entry point degrades to a retrain.
    fs::remove_file(&shard0).expect("remove shard");
    assert!(store.load(&data, &cfg).is_err(), "missing shard detected");
    let (rebuilt, outcome) = store.engine(&data, &cfg, None).expect("rebuilt engine");
    assert_eq!(outcome.status, CacheStatus::Invalid);
    assert_eq!(
        rebuilt.evaluate().expect("rebuilt evaluation"),
        engine.evaluate().expect("cold evaluation")
    );
}

#[test]
fn shard_count_clamps_to_fleet_size() {
    let data = corpus(2, 12, 51);
    let cfg = config();
    let tmp = TempStore::new("sharded-clamp");
    let store = ArtifactStore::sharded(&tmp.root, 16);
    let engine = EvalEngine::train(&data, &cfg).expect("train");
    store.save(&data, &cfg, engine.artifacts()).expect("save");
    let shard_files = fs::read_dir(&tmp.root)
        .expect("read dir")
        .filter_map(Result::ok)
        .filter(|e| {
            e.path()
                .extension()
                .is_some_and(|x| x.to_string_lossy().starts_with("shard"))
        })
        .count();
    assert_eq!(shard_files, 2, "no empty shards for a tiny fleet");
    let artifacts = store.load(&data, &cfg).expect("load").expect("entry");
    assert_eq!(artifacts.len(), 2);
}
