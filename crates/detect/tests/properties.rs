//! Property-based tests for the detectors: structural invariants that
//! must hold on arbitrary consumption histories.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fdeta_detect::{ConditionedKldDetector, Detector, KldDetector, PcaDetector, SignificanceLevel};
use fdeta_gridsim::pricing::TouPlan;
use fdeta_tsdata::week::{WeekMatrix, WeekVector};
use fdeta_tsdata::{SLOTS_PER_DAY, SLOTS_PER_WEEK};

/// Random but structured training matrices: level, daily amplitude, noise.
fn history(weeks: usize, level: f64, amplitude: f64, noise: f64, seed: u64) -> WeekMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let values: Vec<f64> = (0..weeks * SLOTS_PER_WEEK)
        .map(|i| {
            let slot = i % SLOTS_PER_DAY;
            let bump: f64 = if (34..46).contains(&slot) {
                amplitude
            } else {
                0.0
            };
            (level + bump + rng.gen_range(-noise..noise)).max(0.0)
        })
        .collect();
    WeekMatrix::from_flat(values).expect("constructed aligned")
}

fn params() -> impl Strategy<Value = (f64, f64, f64, u64)> {
    (0.2f64..4.0, 0.0f64..2.0, 0.01f64..0.5, 0u64..1000)
}

/// A deterministic permutation of a week's readings keyed by `seed`.
fn permuted(week: &WeekVector, seed: u64) -> WeekVector {
    let mut values = week.as_slice().to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..values.len()).rev() {
        let j = rng.gen_range(0..=i);
        values.swap(i, j);
    }
    WeekVector::new(values).expect("permutation of valid readings")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The unconditioned KLD score is invariant under any permutation of
    /// the week's readings — the formal statement of "the KLD detector
    /// sees only the value distribution", which is why the paper needs
    /// price conditioning for Attack Classes 3A/3B.
    #[test]
    fn kld_score_is_permutation_invariant(
        (level, amplitude, noise, seed) in params(),
        perm_seed in 0u64..100,
    ) {
        let train = history(8, level, amplitude, noise, seed);
        let detector = KldDetector::train(&train, 10, SignificanceLevel::Five)
            .expect("valid training matrix");
        let week = train.week_vector(7);
        let shuffled = permuted(&week, perm_seed);
        let a = detector.score(&week).unwrap();
        let b = detector.score(&shuffled).unwrap();
        prop_assert!((a - b).abs() < 1e-12, "KLD must ignore ordering: {a} vs {b}");
    }

    /// Thresholds are monotone in the percentile: a stricter significance
    /// level (higher percentile) never lowers the threshold.
    #[test]
    fn kld_threshold_monotone_in_percentile((level, amplitude, noise, seed) in params()) {
        let train = history(10, level, amplitude, noise, seed);
        let mut last = f64::NEG_INFINITY;
        for pct in [0.5, 0.8, 0.9, 0.95, 0.99] {
            let det = KldDetector::train_at_percentile(&train, 10, pct)
                .expect("valid training matrix");
            prop_assert!(det.threshold() >= last - 1e-12);
            last = det.threshold();
        }
    }

    /// Scaling every reading by a constant factor leaves the *training
    /// weeks'* verdicts unchanged (bin edges scale along), i.e. the
    /// detector is unit-free.
    #[test]
    fn kld_is_scale_free((level, amplitude, noise, seed) in params(), factor in 0.1f64..10.0) {
        let train = history(8, level, amplitude, noise, seed);
        let scaled = WeekMatrix::from_flat(
            train.flat().iter().map(|v| v * factor).collect(),
        ).expect("scaled stays valid");
        let det = KldDetector::train(&train, 10, SignificanceLevel::Ten).expect("valid");
        let det_scaled = KldDetector::train(&scaled, 10, SignificanceLevel::Ten).expect("valid");
        for w in 0..train.weeks() {
            let a = det.score(&train.week_vector(w)).unwrap();
            let b = det_scaled.score(&scaled.week_vector(w)).unwrap();
            prop_assert!((a - b).abs() < 1e-9, "week {w}: {a} vs {b}");
        }
        prop_assert!((det.threshold() - det_scaled.threshold()).abs() < 1e-9);
    }

    /// The conditioned detector never scores a training week's bands with
    /// non-finite values, and the verdict is consistent with its band
    /// scores.
    #[test]
    fn conditioned_verdict_matches_band_scores((level, amplitude, noise, seed) in params()) {
        let train = history(8, level, amplitude, noise, seed);
        let det = ConditionedKldDetector::train_tou(
            &train,
            &TouPlan::ireland_nightsaver(),
            10,
            SignificanceLevel::Ten,
        ).expect("valid training matrix");
        for w in 0..train.weeks() {
            let week = train.week_vector(w);
            let scores = det.band_scores(&week).unwrap();
            prop_assert!(scores.iter().all(|(s, t)| s.is_finite() && t.is_finite()));
            let expected = scores.iter().any(|(s, t)| s > t);
            prop_assert_eq!(det.is_anomalous(&week), expected);
        }
    }

    /// PCA residuals are invariant under adding a multiple of a retained
    /// component... weakened to the checkable surrogate: the residual of
    /// the training mean week is (near) zero.
    #[test]
    fn pca_mean_week_has_small_residual((level, amplitude, noise, seed) in params()) {
        let train = history(10, level, amplitude, noise, seed);
        let det = PcaDetector::train(&train, 3, SignificanceLevel::Ten)
            .expect("valid training matrix");
        // The per-slot mean week: centring makes it the zero vector in
        // feature space, so its residual must be ~0 regardless of data.
        let mut mean = vec![0.0; SLOTS_PER_WEEK];
        for week in train.iter_weeks() {
            for (acc, v) in mean.iter_mut().zip(week) {
                *acc += v / train.weeks() as f64;
            }
        }
        let mean_week = WeekVector::new(mean).expect("means of valid readings");
        prop_assert!(det.score(&mean_week) < 1e-6);
    }

    /// For every detector, verdicts agree with `assess().anomalous` (the
    /// `Detector` trait contract).
    #[test]
    fn is_anomalous_agrees_with_assess((level, amplitude, noise, seed) in params()) {
        let train = history(8, level, amplitude, noise, seed);
        let detectors: Vec<Box<dyn Detector>> = vec![
            Box::new(KldDetector::train(&train, 10, SignificanceLevel::Five).expect("valid")),
            Box::new(PcaDetector::train(&train, 2, SignificanceLevel::Five).expect("valid")),
        ];
        let week = train.week_vector(0);
        for det in &detectors {
            prop_assert_eq!(det.is_anomalous(&week), det.assess(&week).anomalous);
        }
    }
}
