//! Streamed degraded-mode scoring vs the batch masked path.
//!
//! The degraded-mode contract: a [`StreamScorer`] fed a faulty tick
//! stream — gaps via [`StreamScorer::ingest_gap`] for every missing or
//! invalid reading — scores each completed window over its observed mass
//! **bit-identically** to [`KldDetector::score_masked`] on the same week
//! and the same effective mask. The property is exercised with
//! cer-synth's [`FaultModel`] (the same dropout/burst/dirty machinery the
//! robustness harness uses), so the masks have realistic structure:
//! multi-tick comms bursts, isolated dropouts, and dirty values that the
//! serving layer would have rejected as invalid.
//!
//! Why this holds: the streamed histogram counts are incremental `u64`
//! counts over exactly the observed slots, and `u64` addition is
//! order-independent — by window close they equal the histogram the batch
//! path builds by gathering observed values, so both sides call
//! `kl_divergence_smoothed_counts` with identical arguments. A fully
//! masked window produces no summary, mirroring the batch path's
//! [`KldError::EmptyBand`] rejection.

use proptest::prelude::*;

use fdeta_cer_synth::{DatasetConfig, FaultModel, SyntheticDataset};
use fdeta_detect::{EvalConfig, EvalEngine, KldError, ServeConfig, StreamScorer};
use fdeta_tsdata::week::WeekVector;
use fdeta_tsdata::SLOTS_PER_WEEK;

/// A serving layer's validity check: what `Fleet::tick_slot` scores.
fn is_valid(reading: f64) -> bool {
    reading.is_finite() && reading >= 0.0
}

fn fault_model(kind: u8, seed: u64, dropout: f64) -> FaultModel {
    match kind % 3 {
        0 => FaultModel::clean(seed),
        1 => FaultModel::dropout_and_burst(seed, dropout),
        _ => FaultModel::dirty(seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every completed window of a degraded stream scores bit-identically
    /// to the batch masked path on the same effective mask, and fully
    /// masked windows yield no summary at all.
    #[test]
    fn degraded_stream_windows_match_batch_masked_scores(
        corpus_seed in 0u64..500,
        fault_seed in 0u64..500,
        kind in 0u8..3,
        dropout in 0.02f64..0.35,
    ) {
        let data = SyntheticDataset::generate(&DatasetConfig::small(3, 10, corpus_seed));
        let config = EvalConfig { threads: 1, ..EvalConfig::fast(8, 2) };
        let engine = EvalEngine::train(&data, &config).expect("train");
        let (degraded, _log) = fault_model(kind, fault_seed, dropout)
            .degrade(&data)
            .expect("degrade");

        for artifact in engine.artifacts() {
            let record = degraded.by_id(artifact.id()).expect("same corpus");
            let values = record.observed.values();
            let mask = record.observed.mask();
            let mut scorer =
                StreamScorer::new(artifact, &ServeConfig::default()).expect("scorer");

            // The mask the batch path must renormalise over: observed AND
            // valid — the serving layer turns invalid readings into gaps.
            let eff_mask: Vec<bool> = values
                .iter()
                .zip(mask)
                .map(|(&v, &m)| m && is_valid(v))
                .collect();

            let mut summaries = Vec::new();
            for (tick, &reading) in values.iter().enumerate() {
                let out = if eff_mask[tick] {
                    scorer.ingest(reading).expect("valid ingest")
                } else {
                    scorer.ingest_gap().expect("gap ingest")
                };
                if let Some(summary) = out {
                    summaries.push(summary);
                }
            }

            let kld = artifact.kld_base();
            let cond = artifact.conditioned_base();
            for window in 0..values.len() / SLOTS_PER_WEEK {
                let start = window * SLOTS_PER_WEEK;
                let range = start..start + SLOTS_PER_WEEK;
                let window_mask = &eff_mask[range.clone()];
                let observed = window_mask.iter().filter(|&&m| m).count();
                // Masked slots (and invalid observed values) are zeroed so
                // the WeekVector constructor accepts the week; the batch
                // masked path never reads them.
                let week_values: Vec<f64> = values[range]
                    .iter()
                    .zip(window_mask)
                    .map(|(&v, &m)| if m { v } else { 0.0 })
                    .collect();
                let week = WeekVector::new(week_values).expect("sanitised week");
                let summary = summaries.iter().find(|s| s.window == window as u64);

                if observed == 0 {
                    prop_assert!(
                        summary.is_none(),
                        "consumer {}: fully masked window {window} must not score",
                        artifact.id()
                    );
                    prop_assert!(matches!(
                        kld.score_masked(&week, window_mask),
                        Err(KldError::EmptyBand { .. })
                    ));
                    continue;
                }
                let summary = summary.unwrap_or_else(|| {
                    panic!(
                        "consumer {}: window {window} with {observed} observed \
                         ticks produced no summary",
                        artifact.id()
                    )
                });
                prop_assert_eq!(summary.observed_ticks as usize, observed);

                let batch = kld.score_masked(&week, window_mask).expect("observed mass");
                prop_assert_eq!(
                    summary.kld_score.to_bits(),
                    batch.to_bits(),
                    "consumer {}: window {} stream {} vs batch {}",
                    artifact.id(),
                    window,
                    summary.kld_score,
                    batch
                );

                // Band parity is only comparable when every band kept some
                // observed mass: the batch API rejects a fully masked band
                // (EmptyBand) while the stream skips it.
                match cond.band_scores_masked(&week, window_mask) {
                    Ok(bands) => {
                        let worst = bands
                            .iter()
                            .fold(f64::NEG_INFINITY, |acc, &(score, threshold)| {
                                acc.max(score - threshold)
                            });
                        prop_assert_eq!(
                            summary.worst_band_excess.to_bits(),
                            worst.to_bits(),
                            "consumer {}: window {} band excess diverged",
                            artifact.id(),
                            window
                        );
                    }
                    Err(KldError::EmptyBand { .. }) => {}
                    Err(e) => panic!("unexpected band scoring error: {e}"),
                }
            }
        }
    }

    /// A clean stream through the degraded entry points (all ticks
    /// observed and valid) is indistinguishable from the ordinary dense
    /// path: the mask machinery must cost nothing when nothing is masked.
    #[test]
    fn fully_observed_stream_matches_dense_batch_scores(corpus_seed in 0u64..500) {
        let data = SyntheticDataset::generate(&DatasetConfig::small(2, 10, corpus_seed));
        let config = EvalConfig { threads: 1, ..EvalConfig::fast(8, 2) };
        let engine = EvalEngine::train(&data, &config).expect("train");
        for (index, artifact) in engine.artifacts().iter().enumerate() {
            let mut scorer =
                StreamScorer::new(artifact, &ServeConfig::default()).expect("scorer");
            let series = data.consumer(index).series.as_slice();
            let kld = artifact.kld_base();
            for (tick, &reading) in series.iter().enumerate() {
                if let Some(summary) = scorer.ingest(reading).expect("ingest") {
                    let window = tick / SLOTS_PER_WEEK;
                    let start = window * SLOTS_PER_WEEK;
                    let week =
                        WeekVector::new(series[start..start + SLOTS_PER_WEEK].to_vec())
                            .expect("aligned week");
                    let dense = kld.score(&week).expect("dense score");
                    prop_assert_eq!(summary.kld_score.to_bits(), dense.to_bits());
                    prop_assert_eq!(summary.observed_ticks, SLOTS_PER_WEEK as u32);
                }
            }
        }
    }
}
