//! Slab-vs-dataset training equivalence.
//!
//! The columnar corpus path exists so million-meter fleets can train
//! without a resident dataset — but it must change *where the readings
//! come from*, never *what gets trained*. These tests pin that training
//! from a `SlabCorpus` read back off disk is bit-identical to training
//! from the materialised `SyntheticDataset` the slabs were written from,
//! all the way down to the persisted artifact bytes.

use std::fs;
use std::path::PathBuf;

use fdeta_cer_synth::{DatasetConfig, SyntheticDataset};
use fdeta_detect::store::ArtifactStore;
use fdeta_detect::{EvalConfig, EvalEngine};
use fdeta_tsdata::SlabCorpus;

struct TempDir {
    root: PathBuf,
}

impl TempDir {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("fdeta-slab-train-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create temp dir");
        Self { root }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn slab_training_is_bit_identical_to_dataset_training() {
    let data_config = DatasetConfig::small(6, 12, 53);
    let config = EvalConfig {
        threads: 2,
        ..EvalConfig::fast(8, 4)
    };
    let tmp = TempDir::new("equivalence");

    // Write the corpus as slabs (streaming) and reopen it cold.
    let slab_path = tmp.root.join("corpus.col");
    SyntheticDataset::write_slabs(&data_config, &slab_path).expect("write slabs");
    let corpus = SlabCorpus::open(&slab_path).expect("open slabs");

    let data = SyntheticDataset::generate(&data_config);
    let from_dataset = EvalEngine::train(&data, &config).expect("dataset training");
    let from_slabs = EvalEngine::train_slabs(&corpus, &config).expect("slab training");

    // Same fleet shape and identities.
    assert_eq!(from_slabs.artifacts().len(), from_dataset.artifacts().len());
    for (a, b) in from_slabs.artifacts().iter().zip(from_dataset.artifacts()) {
        assert_eq!(a.id(), b.id());
        assert_eq!(a.index(), b.index());
    }

    // Bit-identical evaluations.
    assert_eq!(
        from_slabs.evaluate().expect("slab evaluation"),
        from_dataset.evaluate().expect("dataset evaluation")
    );

    // Bit-identical persisted artifacts: saving both fleets through the
    // store produces byte-for-byte equal files.
    let store_a = ArtifactStore::new(tmp.root.join("a"));
    let store_b = ArtifactStore::new(tmp.root.join("b"));
    let path_a = store_a
        .save(&data, &config, from_dataset.artifacts())
        .expect("save dataset fleet");
    let path_b = store_b
        .save(&data, &config, from_slabs.artifacts())
        .expect("save slab fleet");
    assert_eq!(
        fs::read(&path_a).expect("read a"),
        fs::read(&path_b).expect("read b"),
        "slab-trained artifacts must serialize byte-identically"
    );
}
