//! The Section VIII evaluation protocol: attacks × detectors × consumers,
//! with the false-positive penalty rule, Metric 1, and Metric 2.
//!
//! The heavy lifting — per-consumer artifact training and work-stealing
//! scheduling — lives in [`crate::engine`]; this module owns the protocol
//! vocabulary ([`DetectorKind`], [`Scenario`], [`EvalConfig`]), the output
//! types, and the [`evaluate`] entry point.
//!
//! Two protocol details matter and are documented here because the paper
//! states them only implicitly:
//!
//! * **False positives are assessed per week.** Metric 1's composite
//!   numbers (e.g. 90.3% at 5% significance) decompose as
//!   `P(detect) × P(no FP on a clean week)` — at the 5% level the KLD
//!   detector's clean-week exceedance is ~5% by construction, and
//!   0.95 × 0.95 ≈ 0.903. A consumer therefore fails on FP grounds when
//!   the detector flags the designated clean test week (the week following
//!   the attack week).
//! * **Metric 2 uses the worst *evading* vector.** Section VIII-F.2: "the
//!   attack for Consumer 1333 was not detected ... in at least one of the
//!   50 simulation trajectories. Hence we say that the detector failed for
//!   that attack" — the attacker keeps the best profit among the vectors a
//!   detector misses; if the detector false-positives, her gain is
//!   maximised over all vectors (the Section VIII-E penalty).

use serde::{Deserialize, Serialize};

use fdeta_attacks::AttackVector;
use fdeta_cer_synth::SyntheticDataset;
use fdeta_gridsim::pricing::PricingScheme;

use crate::detector::Detector;
use crate::engine::{EvalEngine, TrainedConsumer};
use crate::error::{ConfigError, EvalError, TrainError};
use crate::kld::SignificanceLevel;

/// The detectors under evaluation (Table II/III rows, plus the
/// price-conditioned variants used for Attack Classes 3A/3B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectorKind {
    /// Per-reading confidence-interval detector.
    Arima,
    /// Interval detector plus weekly mean/variance range checks.
    Integrated,
    /// KLD detector at 5% significance.
    Kld5,
    /// KLD detector at 10% significance.
    Kld10,
    /// Price-conditioned KLD at 5% significance.
    CondKld5,
    /// Price-conditioned KLD at 10% significance.
    CondKld10,
    /// PCA subspace detector (companion QEST 2015 work) at 5% significance.
    Pca5,
    /// PCA subspace detector at 10% significance.
    Pca10,
}

impl DetectorKind {
    /// All evaluated detectors.
    pub const ALL: [DetectorKind; 8] = [
        DetectorKind::Arima,
        DetectorKind::Integrated,
        DetectorKind::Kld5,
        DetectorKind::Kld10,
        DetectorKind::CondKld5,
        DetectorKind::CondKld10,
        DetectorKind::Pca5,
        DetectorKind::Pca10,
    ];

    /// Row label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DetectorKind::Arima => "ARIMA detector",
            DetectorKind::Integrated => "Integrated ARIMA detector",
            DetectorKind::Kld5 => "KLD detector (5% significance)",
            DetectorKind::Kld10 => "KLD detector (10% significance)",
            DetectorKind::CondKld5 => "Conditioned KLD detector (5% significance)",
            DetectorKind::CondKld10 => "Conditioned KLD detector (10% significance)",
            DetectorKind::Pca5 => "PCA detector (5% significance)",
            DetectorKind::Pca10 => "PCA detector (10% significance)",
        }
    }

    /// Stable row index (Table II/III row order).
    pub fn index(self) -> usize {
        match self {
            DetectorKind::Arima => 0,
            DetectorKind::Integrated => 1,
            DetectorKind::Kld5 => 2,
            DetectorKind::Kld10 => 3,
            DetectorKind::CondKld5 => 4,
            DetectorKind::CondKld10 => 5,
            DetectorKind::Pca5 => 6,
            DetectorKind::Pca10 => 7,
        }
    }

    /// The significance level of this row's detector.
    pub fn level(self) -> SignificanceLevel {
        match self {
            DetectorKind::Kld10 | DetectorKind::CondKld10 | DetectorKind::Pca10 => {
                SignificanceLevel::Ten
            }
            _ => SignificanceLevel::Five,
        }
    }

    /// Builds this row's detector from a consumer's cached artifact — the
    /// single construction point shared by the engine, the monitoring
    /// pipeline, and the bench binaries. Re-thresholding from the cached
    /// training statistics is identical to retraining at the level.
    ///
    /// # Errors
    ///
    /// [`TrainError::ModelUnavailable`] for the interval detectors when
    /// the ARIMA fit failed, [`TrainError::SubspaceUnavailable`] for the
    /// PCA rows when the artifact was trained without a subspace.
    pub fn train(self, artifact: &TrainedConsumer) -> Result<Box<dyn Detector>, TrainError> {
        let level = self.level();
        Ok(match self {
            DetectorKind::Arima | DetectorKind::Integrated => {
                let (arima, integrated) =
                    artifact
                        .interval_detectors()
                        .ok_or(TrainError::ModelUnavailable {
                            consumer: artifact.id(),
                        })?;
                if self == DetectorKind::Arima {
                    Box::new(arima)
                } else {
                    Box::new(integrated)
                }
            }
            DetectorKind::Kld5 | DetectorKind::Kld10 => Box::new(artifact.kld_at(level)),
            DetectorKind::CondKld5 | DetectorKind::CondKld10 => {
                Box::new(artifact.conditioned_at(level))
            }
            DetectorKind::Pca5 | DetectorKind::Pca10 => Box::new(artifact.pca_at(level).ok_or(
                TrainError::SubspaceUnavailable {
                    consumer: artifact.id(),
                },
            )?),
        })
    }
}

/// The injected attack scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Plain ARIMA attack, neighbour over-report (Attack Class 1B shape).
    ArimaOver,
    /// Plain ARIMA attack, self under-report (Attack Classes 2A/2B).
    ArimaUnder,
    /// Integrated ARIMA attack, neighbour over-report (Attack Class 1B).
    IntegratedOver,
    /// Integrated ARIMA attack, self under-report (Attack Classes 2A/2B).
    IntegratedUnder,
    /// Optimal Swap attack (Attack Classes 3A/3B).
    Swap,
}

impl Scenario {
    /// All scenarios.
    pub const ALL: [Scenario; 5] = [
        Scenario::ArimaOver,
        Scenario::ArimaUnder,
        Scenario::IntegratedOver,
        Scenario::IntegratedUnder,
        Scenario::Swap,
    ];

    /// Which paper attack-class group the scenario realises.
    pub fn class_label(self) -> &'static str {
        match self {
            Scenario::ArimaOver | Scenario::IntegratedOver => "1B",
            Scenario::ArimaUnder | Scenario::IntegratedUnder => "2A/2B",
            Scenario::Swap => "3A/3B",
        }
    }

    /// Whether Metric 2 aggregates by *summing* over unprotected consumers
    /// (Class 1B: every victim contributes) instead of taking the
    /// single-attacker maximum.
    pub fn metric2_sums(self) -> bool {
        matches!(self, Scenario::ArimaOver | Scenario::IntegratedOver)
    }

    /// Stable column index (also salts the per-scenario attack seeds).
    pub fn index(self) -> usize {
        match self {
            Scenario::ArimaOver => 0,
            Scenario::ArimaUnder => 1,
            Scenario::IntegratedOver => 2,
            Scenario::IntegratedUnder => 3,
            Scenario::Swap => 4,
        }
    }
}

pub(crate) const ND: usize = 8;
pub(crate) const NS: usize = 5;

/// Evaluation configuration. Defaults reproduce the paper's protocol.
///
/// Prefer [`EvalConfig::builder`], which rejects unusable configurations
/// at construction; a hand-written struct literal is validated when the
/// engine starts instead. `threads` is execution policy, not protocol: it
/// is excluded from serialisation so an [`Evaluation`] JSON is identical
/// at any thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Training weeks (paper: 60).
    pub train_weeks: usize,
    /// Truncated-normal attack vectors drawn per consumer (paper: 50).
    pub attack_vectors: usize,
    /// Histogram bins for the KLD detectors (paper: 10).
    pub bins: usize,
    /// Confidence level of the interval detectors (paper: 95%).
    pub confidence: f64,
    /// Seed for the attack-vector draws.
    pub seed: u64,
    /// ARIMA order `(p, d, q)` used by the utility model.
    pub arima_order: (usize, usize, usize),
    /// Worker threads (0 = one per available core). Not part of the
    /// protocol: skipped by serde so results are thread-count invariant.
    #[serde(skip)]
    pub threads: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            train_weeks: 60,
            attack_vectors: 50,
            bins: 10,
            confidence: 0.95,
            seed: 0xF_DE7A,
            arima_order: (2, 0, 1),
            threads: 0,
        }
    }
}

impl EvalConfig {
    /// A cheaper configuration for tests: fewer attack vectors.
    pub fn fast(train_weeks: usize, attack_vectors: usize) -> Self {
        Self {
            train_weeks,
            attack_vectors,
            ..Self::default()
        }
    }

    /// A builder that validates at construction.
    pub fn builder() -> EvalConfigBuilder {
        EvalConfigBuilder::default()
    }

    /// Rejects configurations that can never produce a valid run.
    ///
    /// # Errors
    ///
    /// A [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.train_weeks == 0 {
            return Err(ConfigError::ZeroTrainWeeks);
        }
        if self.attack_vectors == 0 {
            return Err(ConfigError::ZeroAttackVectors);
        }
        if self.bins == 0 {
            return Err(ConfigError::ZeroBins);
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(ConfigError::InvalidConfidence {
                confidence: self.confidence,
            });
        }
        Ok(())
    }

    /// Worker threads to actually spawn for `jobs` units of work:
    /// `0` expands to the available parallelism, and the count never
    /// exceeds the job count.
    pub(crate) fn worker_threads(&self, jobs: usize) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        } else {
            self.threads
        };
        requested.clamp(1, jobs.max(1))
    }
}

/// Builder for [`EvalConfig`]: invalid configurations are rejected by
/// [`EvalConfigBuilder::build`] instead of mid-sweep, and `threads = 0`
/// is normalised to the available parallelism.
#[derive(Debug, Clone, Default)]
pub struct EvalConfigBuilder {
    config: EvalConfig,
}

impl EvalConfigBuilder {
    /// Training weeks (paper: 60).
    pub fn train_weeks(mut self, weeks: usize) -> Self {
        self.config.train_weeks = weeks;
        self
    }

    /// Attack vectors drawn per consumer (paper: 50).
    pub fn attack_vectors(mut self, vectors: usize) -> Self {
        self.config.attack_vectors = vectors;
        self
    }

    /// KLD histogram bins (paper: 10).
    pub fn bins(mut self, bins: usize) -> Self {
        self.config.bins = bins;
        self
    }

    /// Interval-detector confidence, strictly inside (0, 1).
    pub fn confidence(mut self, confidence: f64) -> Self {
        self.config.confidence = confidence;
        self
    }

    /// Seed for the attack-vector draws.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Utility ARIMA order `(p, d, q)`.
    pub fn arima_order(mut self, order: (usize, usize, usize)) -> Self {
        self.config.arima_order = order;
        self
    }

    /// Worker threads; `0` means one per available core.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Validates and normalises the configuration.
    ///
    /// # Errors
    ///
    /// A [`ConfigError`] naming the first invalid field.
    pub fn build(self) -> Result<EvalConfig, ConfigError> {
        let mut config = self.config;
        config.validate()?;
        if config.threads == 0 {
            config.threads = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4);
        }
        Ok(config)
    }
}

/// Attacker gains: energy and money.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Metric2 {
    /// kWh stolen in the week.
    pub stolen_kwh: f64,
    /// Attacker profit in dollars.
    pub profit_dollars: f64,
}

impl Metric2 {
    pub(crate) fn max(self, other: Metric2) -> Metric2 {
        if other.profit_dollars > self.profit_dollars {
            other
        } else {
            self
        }
    }
}

/// Per-consumer evaluation record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsumerEval {
    /// Meter id.
    pub id: u32,
    /// True if the consumer was skipped (utility model failed to fit,
    /// e.g. a degenerate constant history).
    pub skipped: bool,
    /// Per-detector: whether the designated clean test week was (falsely)
    /// flagged.
    pub false_positive: [bool; ND],
    /// Per-detector, per-scenario: whether the *worst-case* (max-profit)
    /// attack vector was flagged.
    pub detected: [[bool; NS]; ND],
    /// Per-scenario gain of the worst-case vector (the attacker's ceiling
    /// for this consumer).
    pub full_gain: [Metric2; NS],
    /// Per-detector, per-scenario: the best gain among vectors that
    /// *evaded* the detector (zero if every vector was flagged).
    pub evading_gain: [[Metric2; NS]; ND],
}

impl ConsumerEval {
    /// A blank record for one consumer, ready to be filled in by scoring.
    pub fn empty(id: u32) -> Self {
        Self {
            id,
            skipped: false,
            false_positive: [false; ND],
            detected: [[false; NS]; ND],
            full_gain: [Metric2::default(); NS],
            evading_gain: [[Metric2::default(); NS]; ND],
        }
    }
}

/// One (detector, scenario) cell with both metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Metric 1: fraction of consumers for whom the detector succeeded
    /// (worst-case attack flagged, no clean-week false positive).
    pub detection_rate: f64,
    /// Metric 2 over the detector's failures.
    pub residual: Metric2,
}

/// The full evaluation output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Per-consumer records (skipped consumers retained for transparency).
    pub consumers: Vec<ConsumerEval>,
    /// The configuration that produced this evaluation.
    pub config: EvalConfig,
}

impl Evaluation {
    fn active(&self) -> impl Iterator<Item = &ConsumerEval> {
        self.consumers.iter().filter(|c| !c.skipped)
    }

    /// Whether the detector *succeeded* for the consumer under the
    /// scenario: flagged the worst-case attack and raised no clean-week
    /// false positive (the Section VIII-E rule).
    fn success(c: &ConsumerEval, d: DetectorKind, s: Scenario) -> bool {
        c.detected[d.index()][s.index()] && !c.false_positive[d.index()]
    }

    /// What the attacker keeps against this detector for this consumer:
    /// nothing on success; the best evading vector on a miss; the full
    /// worst case when a false positive voids the detector.
    fn residual_gain(c: &ConsumerEval, d: DetectorKind, s: Scenario) -> Metric2 {
        if c.false_positive[d.index()] {
            c.full_gain[s.index()]
        } else {
            c.evading_gain[d.index()][s.index()]
        }
    }

    /// Metric 1: the fraction (0..=1) of consumers for whom the detector
    /// successfully detected the attack.
    pub fn metric1(&self, d: DetectorKind, s: Scenario) -> f64 {
        let mut total = 0usize;
        let mut succeeded = 0usize;
        for c in self.active() {
            total += 1;
            if Self::success(c, d, s) {
                succeeded += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            succeeded as f64 / total as f64
        }
    }

    /// Metric 2: attacker gains despite the detector — summed across
    /// consumers for Class 1B (every unprotected neighbour is a victim),
    /// maximum single consumer otherwise.
    pub fn metric2(&self, d: DetectorKind, s: Scenario) -> Metric2 {
        if s.metric2_sums() {
            let mut total = Metric2::default();
            for c in self.active() {
                let gain = Self::residual_gain(c, d, s);
                total.stolen_kwh += gain.stolen_kwh.max(0.0);
                total.profit_dollars += gain.profit_dollars.max(0.0);
            }
            total
        } else {
            self.active()
                .map(|c| Self::residual_gain(c, d, s))
                .fold(Metric2::default(), Metric2::max)
        }
    }

    /// Both metrics for one cell.
    pub fn cell(&self, d: DetectorKind, s: Scenario) -> ScenarioResult {
        ScenarioResult {
            detection_rate: self.metric1(d, s),
            residual: self.metric2(d, s),
        }
    }

    /// Percentage improvement of detector `b` over detector `a` in
    /// mitigating the scenario (reduction in stolen energy), the paper's
    /// headline statistic (94.8% for KLD over Integrated ARIMA on 1B).
    pub fn improvement_pct(&self, a: DetectorKind, b: DetectorKind, s: Scenario) -> f64 {
        let base = self.metric2(a, s).stolen_kwh;
        let ours = self.metric2(b, s).stolen_kwh;
        if base <= 0.0 {
            0.0
        } else {
            (1.0 - ours / base) * 100.0
        }
    }

    /// Number of consumers evaluated (excluding skipped).
    pub fn evaluated_consumers(&self) -> usize {
        self.active().count()
    }
}

/// Runs the full protocol over a dataset.
///
/// For every consumer: split `train_weeks` / rest, fit the utility ARIMA
/// model, train all detectors, inject every scenario into the first test
/// week (drawing `attack_vectors` truncated-normal vectors for the
/// Integrated scenarios), score the following clean week for false
/// positives, and record the paper's metrics. Consumers whose model cannot
/// be fitted are marked skipped.
///
/// This is a thin wrapper over [`crate::engine::EvalEngine`] — train the
/// engine directly to reuse the artifacts across sweeps or to attach a
/// progress callback.
///
/// # Errors
///
/// [`EvalError::Config`] for an invalid configuration,
/// [`EvalError::Train`] when a consumer has fewer than `train_weeks + 2`
/// whole weeks or a detector cannot be trained, and
/// [`EvalError::WorkerPanicked`] if a worker thread dies.
pub fn evaluate(dataset: &SyntheticDataset, config: &EvalConfig) -> Result<Evaluation, EvalError> {
    EvalEngine::train(dataset, config)?.evaluate()
}

/// Gain of one attack vector from the attacker's perspective.
pub(crate) fn gain_of(attack: &AttackVector, s: Scenario, scheme: &PricingScheme) -> Metric2 {
    let advantage = attack.advantage(scheme).dollars();
    match s {
        Scenario::ArimaOver | Scenario::IntegratedOver => Metric2 {
            // Subject is the victimised neighbour: Mallory pockets the
            // over-billed energy.
            stolen_kwh: attack.energy_overbilled_kwh(),
            profit_dollars: -advantage,
        },
        Scenario::ArimaUnder | Scenario::IntegratedUnder => Metric2 {
            stolen_kwh: attack.energy_delta_kwh(),
            profit_dollars: advantage,
        },
        // No net energy stolen; the gain is purely monetary.
        Scenario::Swap => Metric2 {
            stolen_kwh: 0.0,
            profit_dollars: advantage,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdeta_cer_synth::DatasetConfig;

    fn tiny_eval() -> Evaluation {
        // 6 consumers × 12 weeks (8 train, 1 attack, 3 clean) with few
        // attack vectors keeps this test fast.
        let data = SyntheticDataset::generate(&DatasetConfig::small(6, 12, 31));
        let config = EvalConfig {
            threads: 2,
            bins: 10,
            ..EvalConfig::fast(8, 5)
        };
        evaluate(&data, &config).expect("valid corpus and config")
    }

    #[test]
    fn evaluation_covers_every_consumer() {
        let eval = tiny_eval();
        assert_eq!(eval.consumers.len(), 6);
        assert_eq!(
            eval.evaluated_consumers(),
            6,
            "no synthetic consumer should be skipped"
        );
    }

    #[test]
    fn metrics_are_well_formed() {
        let eval = tiny_eval();
        for d in DetectorKind::ALL {
            for s in Scenario::ALL {
                let cell = eval.cell(d, s);
                assert!((0.0..=1.0).contains(&cell.detection_rate), "{d:?}/{s:?}");
                assert!(cell.residual.stolen_kwh >= 0.0);
                assert!(cell.residual.profit_dollars >= 0.0);
            }
        }
    }

    #[test]
    fn kld_beats_interval_detectors_on_integrated_attack() {
        // The paper's core qualitative result at miniature scale: the
        // interval detectors are blind to the Integrated ARIMA attack, the
        // KLD detector is not.
        let eval = tiny_eval();
        let kld = eval
            .metric1(DetectorKind::Kld5, Scenario::IntegratedOver)
            .max(eval.metric1(DetectorKind::Kld10, Scenario::IntegratedOver));
        let arima = eval.metric1(DetectorKind::Arima, Scenario::IntegratedOver);
        assert!(kld > arima, "KLD {kld} must beat ARIMA {arima}");
    }

    #[test]
    fn conditioned_kld_dominates_on_swap() {
        let eval = tiny_eval();
        let cond = eval.metric1(DetectorKind::CondKld10, Scenario::Swap);
        let plain = eval.metric1(DetectorKind::Kld10, Scenario::Swap);
        assert!(
            cond >= plain,
            "conditioning must not hurt swap detection ({cond} vs {plain})"
        );
    }

    #[test]
    fn swap_steals_no_energy() {
        let eval = tiny_eval();
        for c in &eval.consumers {
            assert_eq!(c.full_gain[Scenario::Swap.index()].stolen_kwh, 0.0);
        }
    }

    #[test]
    fn evading_gain_never_exceeds_full_gain() {
        let eval = tiny_eval();
        for c in &eval.consumers {
            for d in DetectorKind::ALL {
                for s in Scenario::ALL {
                    let evading = c.evading_gain[d.index()][s.index()].profit_dollars;
                    // Evading gains are floored at zero (an attacker
                    // abstains rather than losing money), so compare
                    // against the zero-floored ceiling.
                    let full = c.full_gain[s.index()].profit_dollars.max(0.0);
                    assert!(
                        evading <= full + 1e-9,
                        "evading {evading} > full {full} for {d:?}/{s:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn residual_zero_when_everything_detected_and_clean() {
        // Construct the condition by hand on one record.
        let eval = tiny_eval();
        let mut c = eval.consumers[0].clone();
        c.false_positive = [false; ND];
        c.detected = [[true; NS]; ND];
        c.evading_gain = [[Metric2::default(); NS]; ND];
        let synthetic = Evaluation {
            consumers: vec![c],
            config: eval.config.clone(),
        };
        for d in DetectorKind::ALL {
            for s in Scenario::ALL {
                assert_eq!(synthetic.metric2(d, s).profit_dollars, 0.0);
            }
        }
    }

    #[test]
    fn improvement_is_bounded_above_by_100() {
        let eval = tiny_eval();
        let imp = eval.improvement_pct(
            DetectorKind::Integrated,
            DetectorKind::Kld5,
            Scenario::IntegratedOver,
        );
        assert!(imp <= 100.0);
    }

    #[test]
    fn builder_validates_and_normalises() {
        assert!(matches!(
            EvalConfig::builder().train_weeks(0).build(),
            Err(ConfigError::ZeroTrainWeeks)
        ));
        assert!(matches!(
            EvalConfig::builder().attack_vectors(0).build(),
            Err(ConfigError::ZeroAttackVectors)
        ));
        assert!(matches!(
            EvalConfig::builder().bins(0).build(),
            Err(ConfigError::ZeroBins)
        ));
        assert!(matches!(
            EvalConfig::builder().confidence(1.5).build(),
            Err(ConfigError::InvalidConfidence { .. })
        ));
        let config = EvalConfig::builder()
            .train_weeks(8)
            .attack_vectors(5)
            .threads(0)
            .build()
            .expect("valid config");
        assert_eq!(config.train_weeks, 8);
        assert!(config.threads >= 1, "threads must be normalised");
    }

    #[test]
    fn threads_are_not_part_of_the_serialised_config() {
        let a = EvalConfig {
            threads: 1,
            ..EvalConfig::default()
        };
        let b = EvalConfig {
            threads: 8,
            ..EvalConfig::default()
        };
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "thread count is execution policy, not protocol"
        );
    }
}
