//! The Section VIII evaluation protocol: attacks × detectors × consumers,
//! with the false-positive penalty rule, Metric 1, and Metric 2.
//!
//! Two protocol details matter and are documented here because the paper
//! states them only implicitly:
//!
//! * **False positives are assessed per week.** Metric 1's composite
//!   numbers (e.g. 90.3% at 5% significance) decompose as
//!   `P(detect) × P(no FP on a clean week)` — at the 5% level the KLD
//!   detector's clean-week exceedance is ~5% by construction, and
//!   0.95 × 0.95 ≈ 0.903. A consumer therefore fails on FP grounds when
//!   the detector flags the designated clean test week (the week following
//!   the attack week).
//! * **Metric 2 uses the worst *evading* vector.** Section VIII-F.2: "the
//!   attack for Consumer 1333 was not detected ... in at least one of the
//!   50 simulation trajectories. Hence we say that the detector failed for
//!   that attack" — the attacker keeps the best profit among the vectors a
//!   detector misses; if the detector false-positives, her gain is
//!   maximised over all vectors (the Section VIII-E penalty).

use serde::{Deserialize, Serialize};

use fdeta_arima::{ArimaModel, ArimaSpec};
use fdeta_attacks::{
    arima_attack, integrated_arima_attack, optimal_swap, AttackVector, Direction, InjectionContext,
};
use fdeta_cer_synth::{ConsumerRecord, SyntheticDataset};
use fdeta_gridsim::pricing::{PricingScheme, TouPlan};
use fdeta_tsdata::week::WeekVector;
use fdeta_tsdata::SLOTS_PER_WEEK;

use crate::arima_detector::ArimaDetector;
use crate::detector::Detector;
use crate::integrated::IntegratedArimaDetector;
use crate::kld::{ConditionedKldDetector, KldDetector, SignificanceLevel};
use crate::pca::PcaDetector;

/// The detectors under evaluation (Table II/III rows, plus the
/// price-conditioned variants used for Attack Classes 3A/3B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectorKind {
    /// Per-reading confidence-interval detector.
    Arima,
    /// Interval detector plus weekly mean/variance range checks.
    Integrated,
    /// KLD detector at 5% significance.
    Kld5,
    /// KLD detector at 10% significance.
    Kld10,
    /// Price-conditioned KLD at 5% significance.
    CondKld5,
    /// Price-conditioned KLD at 10% significance.
    CondKld10,
    /// PCA subspace detector (companion QEST 2015 work) at 5% significance.
    Pca5,
    /// PCA subspace detector at 10% significance.
    Pca10,
}

impl DetectorKind {
    /// All evaluated detectors.
    pub const ALL: [DetectorKind; 8] = [
        DetectorKind::Arima,
        DetectorKind::Integrated,
        DetectorKind::Kld5,
        DetectorKind::Kld10,
        DetectorKind::CondKld5,
        DetectorKind::CondKld10,
        DetectorKind::Pca5,
        DetectorKind::Pca10,
    ];

    /// Row label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            DetectorKind::Arima => "ARIMA detector",
            DetectorKind::Integrated => "Integrated ARIMA detector",
            DetectorKind::Kld5 => "KLD detector (5% significance)",
            DetectorKind::Kld10 => "KLD detector (10% significance)",
            DetectorKind::CondKld5 => "Conditioned KLD detector (5% significance)",
            DetectorKind::CondKld10 => "Conditioned KLD detector (10% significance)",
            DetectorKind::Pca5 => "PCA detector (5% significance)",
            DetectorKind::Pca10 => "PCA detector (10% significance)",
        }
    }

    fn index(self) -> usize {
        match self {
            DetectorKind::Arima => 0,
            DetectorKind::Integrated => 1,
            DetectorKind::Kld5 => 2,
            DetectorKind::Kld10 => 3,
            DetectorKind::CondKld5 => 4,
            DetectorKind::CondKld10 => 5,
            DetectorKind::Pca5 => 6,
            DetectorKind::Pca10 => 7,
        }
    }
}

/// The injected attack scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scenario {
    /// Plain ARIMA attack, neighbour over-report (Attack Class 1B shape).
    ArimaOver,
    /// Plain ARIMA attack, self under-report (Attack Classes 2A/2B).
    ArimaUnder,
    /// Integrated ARIMA attack, neighbour over-report (Attack Class 1B).
    IntegratedOver,
    /// Integrated ARIMA attack, self under-report (Attack Classes 2A/2B).
    IntegratedUnder,
    /// Optimal Swap attack (Attack Classes 3A/3B).
    Swap,
}

impl Scenario {
    /// All scenarios.
    pub const ALL: [Scenario; 5] = [
        Scenario::ArimaOver,
        Scenario::ArimaUnder,
        Scenario::IntegratedOver,
        Scenario::IntegratedUnder,
        Scenario::Swap,
    ];

    /// Which paper attack-class group the scenario realises.
    pub fn class_label(self) -> &'static str {
        match self {
            Scenario::ArimaOver | Scenario::IntegratedOver => "1B",
            Scenario::ArimaUnder | Scenario::IntegratedUnder => "2A/2B",
            Scenario::Swap => "3A/3B",
        }
    }

    /// Whether Metric 2 aggregates by *summing* over unprotected consumers
    /// (Class 1B: every victim contributes) instead of taking the
    /// single-attacker maximum.
    pub fn metric2_sums(self) -> bool {
        matches!(self, Scenario::ArimaOver | Scenario::IntegratedOver)
    }

    fn index(self) -> usize {
        match self {
            Scenario::ArimaOver => 0,
            Scenario::ArimaUnder => 1,
            Scenario::IntegratedOver => 2,
            Scenario::IntegratedUnder => 3,
            Scenario::Swap => 4,
        }
    }
}

const ND: usize = 8;
const NS: usize = 5;

/// Evaluation configuration. Defaults reproduce the paper's protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Training weeks (paper: 60).
    pub train_weeks: usize,
    /// Truncated-normal attack vectors drawn per consumer (paper: 50).
    pub attack_vectors: usize,
    /// Histogram bins for the KLD detectors (paper: 10).
    pub bins: usize,
    /// Confidence level of the interval detectors (paper: 95%).
    pub confidence: f64,
    /// Seed for the attack-vector draws.
    pub seed: u64,
    /// ARIMA order `(p, d, q)` used by the utility model.
    pub arima_order: (usize, usize, usize),
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            train_weeks: 60,
            attack_vectors: 50,
            bins: 10,
            confidence: 0.95,
            seed: 0xF_DE7A,
            arima_order: (2, 0, 1),
            threads: 0,
        }
    }
}

impl EvalConfig {
    /// A cheaper configuration for tests: fewer attack vectors.
    pub fn fast(train_weeks: usize, attack_vectors: usize) -> Self {
        Self {
            train_weeks,
            attack_vectors,
            ..Self::default()
        }
    }
}

/// Attacker gains: energy and money.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Metric2 {
    /// kWh stolen in the week.
    pub stolen_kwh: f64,
    /// Attacker profit in dollars.
    pub profit_dollars: f64,
}

impl Metric2 {
    fn max(self, other: Metric2) -> Metric2 {
        if other.profit_dollars > self.profit_dollars {
            other
        } else {
            self
        }
    }
}

/// Per-consumer evaluation record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsumerEval {
    /// Meter id.
    pub id: u32,
    /// True if the consumer was skipped (utility model failed to fit,
    /// e.g. a degenerate constant history).
    pub skipped: bool,
    /// Per-detector: whether the designated clean test week was (falsely)
    /// flagged.
    pub false_positive: [bool; ND],
    /// Per-detector, per-scenario: whether the *worst-case* (max-profit)
    /// attack vector was flagged.
    pub detected: [[bool; NS]; ND],
    /// Per-scenario gain of the worst-case vector (the attacker's ceiling
    /// for this consumer).
    pub full_gain: [Metric2; NS],
    /// Per-detector, per-scenario: the best gain among vectors that
    /// *evaded* the detector (zero if every vector was flagged).
    pub evading_gain: [[Metric2; NS]; ND],
}

/// One (detector, scenario) cell with both metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Metric 1: fraction of consumers for whom the detector succeeded
    /// (worst-case attack flagged, no clean-week false positive).
    pub detection_rate: f64,
    /// Metric 2 over the detector's failures.
    pub residual: Metric2,
}

/// The full evaluation output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Per-consumer records (skipped consumers retained for transparency).
    pub consumers: Vec<ConsumerEval>,
    /// The configuration that produced this evaluation.
    pub config: EvalConfig,
}

impl Evaluation {
    fn active(&self) -> impl Iterator<Item = &ConsumerEval> {
        self.consumers.iter().filter(|c| !c.skipped)
    }

    /// Whether the detector *succeeded* for the consumer under the
    /// scenario: flagged the worst-case attack and raised no clean-week
    /// false positive (the Section VIII-E rule).
    fn success(c: &ConsumerEval, d: DetectorKind, s: Scenario) -> bool {
        c.detected[d.index()][s.index()] && !c.false_positive[d.index()]
    }

    /// What the attacker keeps against this detector for this consumer:
    /// nothing on success; the best evading vector on a miss; the full
    /// worst case when a false positive voids the detector.
    fn residual_gain(c: &ConsumerEval, d: DetectorKind, s: Scenario) -> Metric2 {
        if c.false_positive[d.index()] {
            c.full_gain[s.index()]
        } else {
            c.evading_gain[d.index()][s.index()]
        }
    }

    /// Metric 1: the fraction (0..=1) of consumers for whom the detector
    /// successfully detected the attack.
    pub fn metric1(&self, d: DetectorKind, s: Scenario) -> f64 {
        let mut total = 0usize;
        let mut succeeded = 0usize;
        for c in self.active() {
            total += 1;
            if Self::success(c, d, s) {
                succeeded += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            succeeded as f64 / total as f64
        }
    }

    /// Metric 2: attacker gains despite the detector — summed across
    /// consumers for Class 1B (every unprotected neighbour is a victim),
    /// maximum single consumer otherwise.
    pub fn metric2(&self, d: DetectorKind, s: Scenario) -> Metric2 {
        if s.metric2_sums() {
            let mut total = Metric2::default();
            for c in self.active() {
                let gain = Self::residual_gain(c, d, s);
                total.stolen_kwh += gain.stolen_kwh.max(0.0);
                total.profit_dollars += gain.profit_dollars.max(0.0);
            }
            total
        } else {
            self.active()
                .map(|c| Self::residual_gain(c, d, s))
                .fold(Metric2::default(), Metric2::max)
        }
    }

    /// Both metrics for one cell.
    pub fn cell(&self, d: DetectorKind, s: Scenario) -> ScenarioResult {
        ScenarioResult {
            detection_rate: self.metric1(d, s),
            residual: self.metric2(d, s),
        }
    }

    /// Percentage improvement of detector `b` over detector `a` in
    /// mitigating the scenario (reduction in stolen energy), the paper's
    /// headline statistic (94.8% for KLD over Integrated ARIMA on 1B).
    pub fn improvement_pct(&self, a: DetectorKind, b: DetectorKind, s: Scenario) -> f64 {
        let base = self.metric2(a, s).stolen_kwh;
        let ours = self.metric2(b, s).stolen_kwh;
        if base <= 0.0 {
            0.0
        } else {
            (1.0 - ours / base) * 100.0
        }
    }

    /// Number of consumers evaluated (excluding skipped).
    pub fn evaluated_consumers(&self) -> usize {
        self.active().count()
    }
}

/// Runs the full protocol over a dataset.
///
/// For every consumer: split `train_weeks` / rest, fit the utility ARIMA
/// model, train all detectors, inject every scenario into the first test
/// week (drawing `attack_vectors` truncated-normal vectors for the
/// Integrated scenarios), score the following clean week for false
/// positives, and record the paper's metrics. Consumers whose model cannot
/// be fitted are marked skipped.
///
/// # Panics
///
/// Panics if the dataset has consumers with fewer than `train_weeks + 2`
/// whole weeks (one attack week plus one clean week are needed).
pub fn evaluate(dataset: &SyntheticDataset, config: &EvalConfig) -> Evaluation {
    let n = dataset.len();
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    } else {
        config.threads
    };
    let mut consumers: Vec<Option<ConsumerEval>> = vec![None; n];
    let chunk = n.div_ceil(threads.max(1));
    crossbeam::thread::scope(|scope| {
        for (t, slot_chunk) in consumers.chunks_mut(chunk).enumerate() {
            let config = config.clone();
            scope.spawn(move |_| {
                for (offset, slot) in slot_chunk.iter_mut().enumerate() {
                    let index = t * chunk + offset;
                    *slot = Some(evaluate_consumer(dataset.consumer(index), index, &config));
                }
            });
        }
    })
    .expect("evaluation worker panicked");
    Evaluation {
        consumers: consumers
            .into_iter()
            .map(|c| c.expect("all slots filled"))
            .collect(),
        config: config.clone(),
    }
}

/// Gain of one attack vector from the attacker's perspective.
fn gain_of(attack: &AttackVector, s: Scenario, scheme: &PricingScheme) -> Metric2 {
    let advantage = attack.advantage(scheme).dollars();
    match s {
        Scenario::ArimaOver | Scenario::IntegratedOver => Metric2 {
            // Subject is the victimised neighbour: Mallory pockets the
            // over-billed energy.
            stolen_kwh: attack.energy_overbilled_kwh(),
            profit_dollars: -advantage,
        },
        Scenario::ArimaUnder | Scenario::IntegratedUnder => Metric2 {
            stolen_kwh: attack.energy_delta_kwh(),
            profit_dollars: advantage,
        },
        // No net energy stolen; the gain is purely monetary.
        Scenario::Swap => Metric2 {
            stolen_kwh: 0.0,
            profit_dollars: advantage,
        },
    }
}

fn evaluate_consumer(record: &ConsumerRecord, index: usize, config: &EvalConfig) -> ConsumerEval {
    let scheme = PricingScheme::tou_ireland();
    let plan = TouPlan::ireland_nightsaver();
    let total_weeks = record.series.whole_weeks();
    assert!(
        total_weeks >= config.train_weeks + 2,
        "consumer {} has {total_weeks} weeks; need train+2",
        record.id
    );
    let week_vector = |w: usize| -> WeekVector {
        WeekVector::new(
            record
                .series
                .week_range(w, w + 1)
                .expect("length checked above")
                .as_slice()
                .to_vec(),
        )
        .expect("validated readings")
    };
    let train = record
        .series
        .week_range(0, config.train_weeks)
        .and_then(|s| s.to_week_matrix())
        .expect("length checked above");
    let attack_week_actual = week_vector(config.train_weeks);
    // The designated clean week for the per-week FP assessment.
    let clean_week = week_vector(config.train_weeks + 1);

    let mut eval = ConsumerEval {
        id: record.id,
        skipped: false,
        false_positive: [false; ND],
        detected: [[false; NS]; ND],
        full_gain: [Metric2::default(); NS],
        evading_gain: [[Metric2::default(); NS]; ND],
    };

    let (p, d, q) = config.arima_order;
    let spec = ArimaSpec::new(p, d, q).expect("static order is valid");
    let Ok(model) = ArimaModel::fit(train.flat(), spec) else {
        eval.skipped = true;
        return eval;
    };

    // --- Detectors --------------------------------------------------------
    let detectors: [Box<dyn Detector>; ND] = [
        Box::new(ArimaDetector::new(model.clone(), &train, config.confidence)),
        Box::new(IntegratedArimaDetector::new(
            model.clone(),
            &train,
            config.confidence,
        )),
        Box::new(
            KldDetector::train(&train, config.bins, SignificanceLevel::Five)
                .expect("bins > 0 and train nonempty"),
        ),
        Box::new(
            KldDetector::train(&train, config.bins, SignificanceLevel::Ten)
                .expect("bins > 0 and train nonempty"),
        ),
        Box::new(
            ConditionedKldDetector::train_tou(&train, &plan, config.bins, SignificanceLevel::Five)
                .expect("bins > 0 and train nonempty"),
        ),
        Box::new(
            ConditionedKldDetector::train_tou(&train, &plan, config.bins, SignificanceLevel::Ten)
                .expect("bins > 0 and train nonempty"),
        ),
        {
            // Clamp the subspace rank for very short training windows.
            let components = config.train_weeks.saturating_sub(2).clamp(1, 3);
            Box::new(
                PcaDetector::train(&train, components, SignificanceLevel::Five)
                    .expect("component count clamped below window length"),
            )
        },
        {
            let components = config.train_weeks.saturating_sub(2).clamp(1, 3);
            Box::new(
                PcaDetector::train(&train, components, SignificanceLevel::Ten)
                    .expect("component count clamped below window length"),
            )
        },
    ];

    for dkind in DetectorKind::ALL {
        eval.false_positive[dkind.index()] = detectors[dkind.index()].is_anomalous(&clean_week);
    }

    // --- Attacks -----------------------------------------------------------
    let start_slot = config.train_weeks * SLOTS_PER_WEEK;
    let ctx = InjectionContext {
        train: &train,
        actual_week: &attack_week_actual,
        model: &model,
        confidence: config.confidence,
        start_slot,
    };
    let consumer_seed = config.seed ^ (index as u64).wrapping_mul(0xD134_2543_DE82_EF95);

    for s in Scenario::ALL {
        // The vector family realising this scenario.
        let vectors: Vec<AttackVector> = match s {
            Scenario::ArimaOver => vec![arima_attack(&ctx, Direction::OverReport)],
            Scenario::ArimaUnder => vec![arima_attack(&ctx, Direction::UnderReport)],
            Scenario::IntegratedOver | Scenario::IntegratedUnder => {
                let direction = if s == Scenario::IntegratedOver {
                    Direction::OverReport
                } else {
                    Direction::UnderReport
                };
                (0..config.attack_vectors)
                    .map(|i| {
                        let mut rng = rand::SeedableRng::seed_from_u64(
                            consumer_seed
                                ^ (0x9E37_79B9_7F4A_7C15u64
                                    .wrapping_mul((i as u64 + 1) * (s.index() as u64 + 1))),
                        );
                        integrated_arima_attack(&ctx, direction, &mut rng)
                    })
                    .collect()
            }
            Scenario::Swap => vec![optimal_swap(&attack_week_actual, &plan, start_slot)],
        };
        let gains: Vec<Metric2> = vectors.iter().map(|v| gain_of(v, s, &scheme)).collect();
        // Worst case overall: the vector the paper evaluates detectors on.
        let worst_index = gains
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.profit_dollars
                    .partial_cmp(&b.1.profit_dollars)
                    .expect("finite profits")
            })
            .map(|(i, _)| i)
            .expect("at least one vector");
        eval.full_gain[s.index()] = gains[worst_index];

        for dkind in DetectorKind::ALL {
            let det = &detectors[dkind.index()];
            let mut best_evading = Metric2::default();
            let mut worst_detected = false;
            for (i, vector) in vectors.iter().enumerate() {
                let flagged = det.is_anomalous(&vector.reported);
                if i == worst_index {
                    worst_detected = flagged;
                }
                if !flagged {
                    best_evading = best_evading.max(gains[i]);
                }
            }
            eval.detected[dkind.index()][s.index()] = worst_detected;
            eval.evading_gain[dkind.index()][s.index()] = best_evading;
        }
    }
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdeta_cer_synth::DatasetConfig;

    fn tiny_eval() -> Evaluation {
        // 6 consumers × 12 weeks (8 train, 1 attack, 3 clean) with few
        // attack vectors keeps this test fast.
        let data = SyntheticDataset::generate(&DatasetConfig::small(6, 12, 31));
        let config = EvalConfig {
            threads: 2,
            bins: 10,
            ..EvalConfig::fast(8, 5)
        };
        evaluate(&data, &config)
    }

    #[test]
    fn evaluation_covers_every_consumer() {
        let eval = tiny_eval();
        assert_eq!(eval.consumers.len(), 6);
        assert_eq!(
            eval.evaluated_consumers(),
            6,
            "no synthetic consumer should be skipped"
        );
    }

    #[test]
    fn metrics_are_well_formed() {
        let eval = tiny_eval();
        for d in DetectorKind::ALL {
            for s in Scenario::ALL {
                let cell = eval.cell(d, s);
                assert!((0.0..=1.0).contains(&cell.detection_rate), "{d:?}/{s:?}");
                assert!(cell.residual.stolen_kwh >= 0.0);
                assert!(cell.residual.profit_dollars >= 0.0);
            }
        }
    }

    #[test]
    fn kld_beats_interval_detectors_on_integrated_attack() {
        // The paper's core qualitative result at miniature scale: the
        // interval detectors are blind to the Integrated ARIMA attack, the
        // KLD detector is not.
        let eval = tiny_eval();
        let kld = eval
            .metric1(DetectorKind::Kld5, Scenario::IntegratedOver)
            .max(eval.metric1(DetectorKind::Kld10, Scenario::IntegratedOver));
        let arima = eval.metric1(DetectorKind::Arima, Scenario::IntegratedOver);
        assert!(kld > arima, "KLD {kld} must beat ARIMA {arima}");
    }

    #[test]
    fn conditioned_kld_dominates_on_swap() {
        let eval = tiny_eval();
        let cond = eval.metric1(DetectorKind::CondKld10, Scenario::Swap);
        let plain = eval.metric1(DetectorKind::Kld10, Scenario::Swap);
        assert!(
            cond >= plain,
            "conditioning must not hurt swap detection ({cond} vs {plain})"
        );
    }

    #[test]
    fn swap_steals_no_energy() {
        let eval = tiny_eval();
        for c in &eval.consumers {
            assert_eq!(c.full_gain[Scenario::Swap.index()].stolen_kwh, 0.0);
        }
    }

    #[test]
    fn evading_gain_never_exceeds_full_gain() {
        let eval = tiny_eval();
        for c in &eval.consumers {
            for d in DetectorKind::ALL {
                for s in Scenario::ALL {
                    let evading = c.evading_gain[d.index()][s.index()].profit_dollars;
                    // Evading gains are floored at zero (an attacker
                    // abstains rather than losing money), so compare
                    // against the zero-floored ceiling.
                    let full = c.full_gain[s.index()].profit_dollars.max(0.0);
                    assert!(
                        evading <= full + 1e-9,
                        "evading {evading} > full {full} for {d:?}/{s:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn residual_zero_when_everything_detected_and_clean() {
        // Construct the condition by hand on one record.
        let eval = tiny_eval();
        let mut c = eval.consumers[0].clone();
        c.false_positive = [false; ND];
        c.detected = [[true; NS]; ND];
        c.evading_gain = [[Metric2::default(); NS]; ND];
        let synthetic = Evaluation {
            consumers: vec![c],
            config: eval.config.clone(),
        };
        for d in DetectorKind::ALL {
            for s in Scenario::ALL {
                assert_eq!(synthetic.metric2(d, s).profit_dollars, 0.0);
            }
        }
    }

    #[test]
    fn improvement_is_bounded_above_by_100() {
        let eval = tiny_eval();
        let imp = eval.improvement_pct(
            DetectorKind::Integrated,
            DetectorKind::Kld5,
            Scenario::IntegratedOver,
        );
        assert!(imp <= 100.0);
    }
}
