//! The stable surface of the detect crate in one import.
//!
//! Downstream binaries, examples, and integration tests should reach for
//! `use fdeta_detect::prelude::*;` instead of enumerating items — the
//! prelude is the compatibility contract: items re-exported here follow
//! the deprecation cycle documented in `CHANGELOG.md`, while anything
//! only reachable through its defining module may change between PRs.

pub use crate::arima_detector::ArimaDetector;
pub use crate::detector::{Detector, Verdict};
pub use crate::engine::{EvalEngine, TrainedConsumer};
pub use crate::error::{ConfigError, EvalError, TrainError};
pub use crate::eval::{evaluate, DetectorKind, EvalConfig, Evaluation, Metric2, Scenario};
pub use crate::integrated::IntegratedArimaDetector;
pub use crate::kld::{ConditionedKldDetector, KldDetector, KldError, SignificanceLevel};
pub use crate::pca::PcaDetector;
pub use crate::robustness::{RobustEngine, RobustEvaluation, RobustnessConfig};
pub use crate::store::{ArtifactStore, CacheOutcome, CacheStatus, StoreError};
pub use crate::stream::{
    AlertEvent, AlertTier, HealthConfig, HealthState, MeterHealth, ServeConfig, SlidingState,
    StreamDetector, StreamScorer, WeekSummary,
};
