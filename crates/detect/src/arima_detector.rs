//! The ARIMA detector: per-reading confidence-interval checks.

use fdeta_arima::ArimaModel;
use fdeta_tsdata::week::{WeekMatrix, WeekVector};
use fdeta_tsdata::SLOTS_PER_WEEK;

use crate::detector::{Detector, Verdict};

/// The CRITIS-2015 baseline detector: forecast each reading one step ahead
/// and count readings outside the confidence interval.
///
/// A clean week is *expected* to violate a 95% interval in about 5% of its
/// 336 readings, so flagging on any single violation would flag every
/// clean week. The detector therefore flags a week when the violation
/// count exceeds the nominal rate by more than `z_margin` binomial
/// standard deviations — a calibrated "more violations than chance" rule.
///
/// The forecaster updates on the *reported* readings while scanning, so an
/// attack that rides the interval boundary drags the interval with it —
/// the poisoning weakness the paper's attacks exploit.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ArimaDetector {
    seeded: fdeta_arima::Forecaster,
    confidence: f64,
    z_margin: f64,
}

impl ArimaDetector {
    /// Trains the detector: fits nothing new, but seeds a forecaster with
    /// the training history once; each assessment clones that small
    /// seeded state instead of replaying the history.
    ///
    /// # Errors
    ///
    /// Returns [`fdeta_arima::ArimaError`] if the training history cannot
    /// seed the model's forecaster (shorter than the differencing warmup).
    pub fn new(
        model: ArimaModel,
        train: &WeekMatrix,
        confidence: f64,
    ) -> Result<Self, fdeta_arima::ArimaError> {
        let seeded = model.forecaster(train.flat())?;
        Ok(Self {
            seeded,
            confidence,
            z_margin: 4.0,
        })
    }

    /// Overrides the violation-count margin (in binomial standard
    /// deviations above the nominal violation rate).
    pub fn with_margin(mut self, z_margin: f64) -> Self {
        self.z_margin = z_margin;
        self
    }

    /// Counts readings of `week` falling outside the (poisoned) interval.
    pub fn violations(&self, week: &WeekVector) -> usize {
        let mut forecaster = self.seeded.clone();
        let mut violations = 0;
        for &reading in week.as_slice() {
            let f = forecaster.forecast(self.confidence);
            if !(f.lower.max(0.0)..=f.upper.max(0.0)).contains(&reading) {
                violations += 1;
            }
            forecaster.observe(reading);
        }
        violations
    }

    /// The violation-count threshold: nominal violations per week plus
    /// `z_margin` binomial standard deviations.
    pub fn threshold(&self) -> f64 {
        let n = SLOTS_PER_WEEK as f64;
        let p = 1.0 - self.confidence;
        n * p + self.z_margin * (n * p * (1.0 - p)).sqrt()
    }

    /// The forecaster seeded with the training history — cloning it is how
    /// a streaming consumer starts a fresh scan without replaying the
    /// history ([`ArimaDetector::violations`] does the same internally).
    pub fn seeded_forecaster(&self) -> &fdeta_arima::Forecaster {
        &self.seeded
    }

    /// The confidence level of the per-reading interval.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The violation-count margin in binomial standard deviations.
    pub fn z_margin(&self) -> f64 {
        self.z_margin
    }
}

impl Detector for ArimaDetector {
    fn name(&self) -> &'static str {
        "arima"
    }

    fn assess(&self, week: &WeekVector) -> Verdict {
        let violations = self.violations(week) as f64;
        if violations > self.threshold() {
            Verdict::flagged(violations)
        } else {
            Verdict::clean(violations)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdeta_arima::ArimaSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn training(weeks: usize, seed: u64) -> WeekMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..weeks * SLOTS_PER_WEEK)
            .map(|i| {
                let daily = 1.0 + 0.4 * ((i % 48) as f64 / 48.0 * std::f64::consts::TAU).sin();
                (daily + rng.gen_range(-0.15..0.15)).max(0.0)
            })
            .collect();
        WeekMatrix::from_flat(values).unwrap()
    }

    fn detector(train: &WeekMatrix) -> ArimaDetector {
        let model = ArimaModel::fit(train.flat(), ArimaSpec::new(2, 0, 1).unwrap()).unwrap();
        ArimaDetector::new(model, train, 0.95).unwrap()
    }

    #[test]
    fn clean_week_is_not_flagged() {
        let train = training(8, 1);
        let det = detector(&train);
        let clean = train.week_vector(7);
        assert!(!det.is_anomalous(&clean));
    }

    #[test]
    fn blatant_spike_week_is_flagged() {
        let train = training(8, 2);
        let det = detector(&train);
        // A week of wild oscillation far outside any one-step interval.
        let wild: Vec<f64> = (0..SLOTS_PER_WEEK)
            .map(|i| if i % 2 == 0 { 30.0 } else { 0.0 })
            .collect();
        let week = WeekVector::new(wild).unwrap();
        let verdict = det.assess(&week);
        assert!(verdict.anomalous, "violations = {}", verdict.score);
    }

    #[test]
    fn boundary_riding_attack_is_not_flagged() {
        // The ARIMA attack by construction: reported = CI bound each step.
        use fdeta_attacks::{arima_attack, Direction, InjectionContext};
        let train = training(8, 3);
        let model = ArimaModel::fit(train.flat(), ArimaSpec::new(2, 0, 1).unwrap()).unwrap();
        let actual = train.week_vector(7);
        let ctx = InjectionContext {
            train: &train,
            actual_week: &actual,
            model: &model,
            confidence: 0.95,
            start_slot: 0,
        };
        let det = ArimaDetector::new(model.clone(), &train, 0.95).unwrap();
        for direction in [Direction::UnderReport, Direction::OverReport] {
            let attack = arima_attack(&ctx, direction);
            assert!(
                !det.is_anomalous(&attack.reported),
                "ARIMA attack must evade the ARIMA detector ({direction:?})"
            );
        }
    }

    #[test]
    fn margin_tunes_aggressiveness() {
        let train = training(8, 4);
        let strict = detector(&train).with_margin(-10.0); // absurdly aggressive
        let clean = train.week_vector(7);
        assert!(
            strict.is_anomalous(&clean),
            "negative margin flags everything"
        );
    }
}
