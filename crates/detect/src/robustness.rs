//! Graceful degradation for dirty fleets: repair, retry, quarantine.
//!
//! [`EvalEngine::train`](crate::engine::EvalEngine::train) is deliberately
//! strict: the first consumer whose artifact cannot be trained aborts the
//! whole run. That is the right contract for a clean synthetic corpus,
//! where a failure means a configuration bug — and the wrong one for real
//! AMI telemetry, where one meter with a dead comms card must not take
//! down a 500-consumer evaluation.
//!
//! [`RobustEngine`] is the lenient path. Per consumer, it:
//!
//! 1. repairs the gap-aware [`ObservedSeries`](fdeta_tsdata::ObservedSeries)
//!    into a dense week matrix under the **primary**
//!    [`RepairPolicy`], rejecting any surviving week whose original
//!    observation coverage is below [`RobustnessConfig::min_coverage`]
//!    (imputation is only trusted up to a point);
//! 2. on any typed failure, retries **once** under the fallback policy;
//! 3. on a second failure, **quarantines** the consumer — both attempts'
//!    error chains are kept in the run report — and carries on with the
//!    rest of the fleet.
//!
//! Artifacts of surviving consumers keep their original corpus index, so
//! their attack-vector draws (seeded by index) are bit-identical to a
//! no-fault run: quarantining a dirty consumer never perturbs the results
//! of a clean one. The scheduling is the engine's work-stealing fan-out,
//! and the outcome — artifacts, quarantine list, evaluation — is
//! deterministic in the seed and invariant to the thread count.

use std::fmt;

use fdeta_cer_synth::{ConsumerRecord, ObservedDataset, ObservedRecord};
use fdeta_tsdata::{RepairOutcome, RepairPolicy};

use crate::engine::{run_work_stealing, EngineStage, EvalEngine, TrainedConsumer};
use crate::error::{ConfigError, EvalError, TrainError};
use crate::eval::{EvalConfig, Evaluation};

/// How the robust training path repairs dirty consumers.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessConfig {
    /// Repair policy tried first for every consumer.
    pub primary: RepairPolicy,
    /// Policy for the single retry after the primary attempt fails. Set it
    /// equal to `primary` to disable the retry.
    pub fallback: RepairPolicy,
    /// Minimum observation coverage, in `[0, 1]`, required of every week
    /// that survives repair (measured on the *original* mask — imputed
    /// slots do not count). Weeks dropped by
    /// [`RepairPolicy::DropWeek`] are exempt because they do not survive.
    pub min_coverage: f64,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        Self {
            primary: RepairPolicy::HistoricalMedian,
            fallback: RepairPolicy::LinearInterpolate,
            min_coverage: 0.5,
        }
    }
}

impl RobustnessConfig {
    /// A builder that validates at construction — the same builder family
    /// as [`EvalConfig::builder`] and `ServeConfig::builder`, sharing
    /// [`ConfigError`] variants.
    pub fn builder() -> RobustnessConfigBuilder {
        RobustnessConfigBuilder::default()
    }

    /// Rejects thresholds outside `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::InvalidCoverage`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(0.0..=1.0).contains(&self.min_coverage) {
            return Err(ConfigError::InvalidCoverage {
                coverage: self.min_coverage,
            });
        }
        Ok(())
    }

    /// The bounded attempt sequence: primary, then (if different) the
    /// fallback.
    fn attempt_policies(&self) -> Vec<RepairPolicy> {
        if self.fallback == self.primary {
            vec![self.primary]
        } else {
            vec![self.primary, self.fallback]
        }
    }
}

/// Builder for [`RobustnessConfig`]: invalid thresholds are rejected by
/// [`RobustnessConfigBuilder::build`] instead of when training starts.
#[derive(Debug, Clone, Default)]
pub struct RobustnessConfigBuilder {
    config: RobustnessConfig,
}

impl RobustnessConfigBuilder {
    /// Repair policy tried first for every consumer.
    pub fn primary(mut self, policy: RepairPolicy) -> Self {
        self.config.primary = policy;
        self
    }

    /// Policy for the single retry after the primary attempt fails.
    pub fn fallback(mut self, policy: RepairPolicy) -> Self {
        self.config.fallback = policy;
        self
    }

    /// Minimum observation coverage in `[0, 1]` for surviving weeks.
    pub fn min_coverage(mut self, coverage: f64) -> Self {
        self.config.min_coverage = coverage;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::InvalidCoverage`].
    pub fn build(self) -> Result<RobustnessConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// One failed repair-and-train attempt for a quarantined consumer.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairAttempt {
    /// The repair policy this attempt used.
    pub policy: RepairPolicy,
    /// Why the attempt failed.
    pub error: TrainError,
}

/// A consumer excluded from the run, with every attempt's error retained.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedConsumer {
    /// Meter id.
    pub id: u32,
    /// Original corpus index.
    pub index: usize,
    /// The failed attempts, in the order they were made.
    pub attempts: Vec<RepairAttempt>,
}

impl QuarantinedConsumer {
    /// The attempts' errors as one `policy: error; policy: error` line.
    pub fn error_chain(&self) -> String {
        let parts: Vec<String> = self
            .attempts
            .iter()
            .map(|a| format!("{}: {}", a.policy, a.error))
            .collect();
        parts.join("; ")
    }
}

impl fmt::Display for QuarantinedConsumer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "consumer {} quarantined after {} attempt(s): {}",
            self.id,
            self.attempts.len(),
            self.error_chain()
        )
    }
}

/// An evaluation plus the quarantine section of the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustEvaluation {
    /// The Tables II/III protocol over the surviving consumers.
    pub evaluation: Evaluation,
    /// The consumers that never made it into the engine.
    pub quarantined: Vec<QuarantinedConsumer>,
}

/// Per-consumer training outcome of the lenient path.
enum ConsumerOutcome {
    Trained(Box<TrainedConsumer>),
    Quarantined(QuarantinedConsumer),
}

/// An [`EvalEngine`] trained leniently over an [`ObservedDataset`], plus
/// the consumers it had to quarantine. See the module docs.
pub struct RobustEngine {
    engine: EvalEngine,
    quarantined: Vec<QuarantinedConsumer>,
}

impl RobustEngine {
    /// Repairs, trains, retries, and quarantines per consumer — the fleet
    /// always completes unless the configuration itself is unusable or a
    /// worker thread dies.
    ///
    /// # Errors
    ///
    /// [`EvalError::Config`] for an invalid [`EvalConfig`] or
    /// [`RobustnessConfig`], and [`EvalError::WorkerPanicked`] for a dead
    /// worker. Per-consumer failures do **not** surface here; they land in
    /// [`RobustEngine::quarantined`].
    pub fn train(
        dataset: &ObservedDataset,
        config: &EvalConfig,
        robustness: &RobustnessConfig,
    ) -> Result<Self, EvalError> {
        config.validate()?;
        robustness.validate()?;
        let threads = config.worker_threads(dataset.len());
        let outcomes =
            run_work_stealing(dataset.len(), threads, None, EngineStage::Train, |index| {
                Ok::<_, TrainError>(train_one(
                    dataset.consumer(index),
                    index,
                    config,
                    robustness,
                ))
            })?;
        let mut artifacts = Vec::new();
        let mut quarantined = Vec::new();
        for outcome in outcomes {
            match outcome {
                ConsumerOutcome::Trained(artifact) => artifacts.push(*artifact),
                ConsumerOutcome::Quarantined(q) => quarantined.push(q),
            }
        }
        let engine = EvalEngine::from_artifacts(config, artifacts)?;
        Ok(Self {
            engine,
            quarantined,
        })
    }

    /// The engine over the surviving consumers.
    pub fn engine(&self) -> &EvalEngine {
        &self.engine
    }

    /// The quarantined consumers, in corpus order.
    pub fn quarantined(&self) -> &[QuarantinedConsumer] {
        &self.quarantined
    }

    /// Meter ids of the quarantined consumers, in corpus order.
    pub fn quarantined_ids(&self) -> Vec<u32> {
        self.quarantined.iter().map(|q| q.id).collect()
    }

    /// Consumers that survived into the engine.
    pub fn survivors(&self) -> usize {
        self.engine.artifacts().len()
    }

    /// Scores the full protocol over the survivors and attaches the
    /// quarantine list to the run report.
    ///
    /// # Errors
    ///
    /// As [`EvalEngine::evaluate`].
    pub fn evaluate(&self) -> Result<RobustEvaluation, EvalError> {
        Ok(RobustEvaluation {
            evaluation: self.engine.evaluate()?,
            quarantined: self.quarantined.clone(),
        })
    }
}

/// Runs the bounded attempt sequence for one consumer.
fn train_one(
    record: &ObservedRecord,
    index: usize,
    config: &EvalConfig,
    robustness: &RobustnessConfig,
) -> ConsumerOutcome {
    let mut attempts = Vec::new();
    for policy in robustness.attempt_policies() {
        match attempt(record, index, config, robustness, policy) {
            Ok(artifact) => return ConsumerOutcome::Trained(Box::new(artifact)),
            Err(error) => attempts.push(RepairAttempt { policy, error }),
        }
    }
    ConsumerOutcome::Quarantined(QuarantinedConsumer {
        id: record.id,
        index,
        attempts,
    })
}

/// One repair-gate-train attempt under one policy.
fn attempt(
    record: &ObservedRecord,
    index: usize,
    config: &EvalConfig,
    robustness: &RobustnessConfig,
    policy: RepairPolicy,
) -> Result<TrainedConsumer, TrainError> {
    let outcome = record
        .observed
        .repair(policy)
        .map_err(|source| TrainError::Repair {
            consumer: record.id,
            policy,
            source,
        })?;
    enforce_coverage(record, &outcome, robustness.min_coverage)?;
    let repaired = ConsumerRecord {
        id: record.id,
        class: record.class,
        profile: None,
        series: outcome.series,
    };
    TrainedConsumer::train(&repaired, index, config)
}

/// Rejects any surviving week whose original coverage is below the
/// threshold: repair may fill gaps, but it must not be asked to invent
/// most of a week.
fn enforce_coverage(
    record: &ObservedRecord,
    outcome: &RepairOutcome,
    min_coverage: f64,
) -> Result<(), TrainError> {
    for &week in &outcome.kept_weeks {
        let Some(coverage) = record.observed.week_coverage(week) else {
            continue;
        };
        if coverage < min_coverage {
            return Err(TrainError::LowCoverage {
                consumer: record.id,
                week,
                coverage,
                required: min_coverage,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdeta_cer_synth::{DatasetConfig, FaultModel, SyntheticDataset};
    use fdeta_tsdata::{ObservedSeries, SLOTS_PER_WEEK};

    fn corpus(consumers: usize, seed: u64) -> SyntheticDataset {
        SyntheticDataset::generate(&DatasetConfig::small(consumers, 12, seed))
    }

    fn config(threads: usize) -> EvalConfig {
        EvalConfig {
            threads,
            ..EvalConfig::fast(8, 3)
        }
    }

    /// A hand-built observed record with a caller-chosen mask over a
    /// smooth, repairable series.
    fn crafted_record(id: u32, weeks: usize, mask_out: impl Fn(usize) -> bool) -> ObservedRecord {
        let n = weeks * SLOTS_PER_WEEK;
        let values: Vec<f64> = (0..n)
            .map(|i| 1.0 + 0.5 * ((i % SLOTS_PER_WEEK) as f64 / 48.0).sin())
            .collect();
        let mask: Vec<bool> = (0..n).map(|i| !mask_out(i)).collect();
        ObservedRecord {
            id,
            class: fdeta_cer_synth::ConsumerClass::Residential,
            observed: ObservedSeries::from_parts(values, mask).expect("valid fixture"),
        }
    }

    #[test]
    fn clean_corpus_survives_whole_and_matches_the_strict_engine() {
        let data = corpus(4, 71);
        let observed = ObservedDataset::fully_observed(&data).expect("clean corpus wraps");
        let robust = RobustEngine::train(&observed, &config(2), &RobustnessConfig::default())
            .expect("trains");
        assert!(robust.quarantined().is_empty());
        assert_eq!(robust.survivors(), 4);
        let lenient = robust.evaluate().expect("scores");
        let strict = EvalEngine::train(&data, &config(2))
            .expect("trains")
            .evaluate()
            .expect("scores");
        assert_eq!(
            lenient.evaluation, strict,
            "a fully observed corpus must evaluate bit-identically to the strict path"
        );
    }

    #[test]
    fn quarantine_and_evaluation_are_thread_count_invariant() {
        let data = corpus(6, 72);
        let (observed, _log) = FaultModel::dirty(72).degrade(&data).expect("degrades");
        let a = RobustEngine::train(&observed, &config(1), &RobustnessConfig::default())
            .expect("trains");
        let b = RobustEngine::train(&observed, &config(4), &RobustnessConfig::default())
            .expect("trains");
        assert_eq!(a.quarantined(), b.quarantined());
        // The embedded config legitimately differs in `threads`; the
        // per-consumer results must not.
        assert_eq!(
            a.evaluate().expect("scores").evaluation.consumers,
            b.evaluate().expect("scores").evaluation.consumers
        );
    }

    #[test]
    fn historical_median_failure_retries_under_the_fallback() {
        // Slot 7 of every week is missing: the same-slot median has no
        // donors, so the primary (HistoricalMedian) fails with
        // ResidualGaps — and linear interpolation repairs it.
        let records = vec![
            crafted_record(2000, 12, |i| i % SLOTS_PER_WEEK == 7),
            crafted_record(2001, 12, |i| i % SLOTS_PER_WEEK == 7),
        ];
        let observed = ObservedDataset::from_records(records);
        let robust = RobustEngine::train(&observed, &config(2), &RobustnessConfig::default())
            .expect("trains");
        assert!(
            robust.quarantined().is_empty(),
            "fallback must rescue the consumer: {:?}",
            robust.quarantined_ids()
        );
        assert_eq!(robust.survivors(), 2);
    }

    #[test]
    fn hopeless_weeks_are_quarantined_with_both_attempts_on_record() {
        // Week 2 is entirely unobserved: both imputers repair it, but the
        // coverage gate rejects a 0%-observed week under either policy.
        let hopeless = crafted_record(3001, 12, |i| i / SLOTS_PER_WEEK == 2);
        let healthy = crafted_record(3002, 12, |_| false);
        let observed = ObservedDataset::from_records(vec![hopeless, healthy]);
        let robust = RobustEngine::train(&observed, &config(1), &RobustnessConfig::default())
            .expect("completes despite the bad consumer");
        assert_eq!(robust.quarantined_ids(), vec![3001]);
        assert_eq!(robust.survivors(), 1);
        let q = &robust.quarantined()[0];
        assert_eq!(q.index, 0);
        assert_eq!(q.attempts.len(), 2, "primary plus exactly one retry");
        for attempt in &q.attempts {
            assert!(matches!(
                attempt.error,
                TrainError::LowCoverage { week: 2, .. }
            ));
        }
        let chain = q.error_chain();
        assert!(chain.contains("historical-median"), "{chain}");
        assert!(chain.contains("linear-interpolate"), "{chain}");
        // The same week under DropWeek fallback survives: the dead week is
        // dropped instead of imputed.
        let lenient = RobustnessConfig {
            fallback: RepairPolicy::DropWeek,
            ..RobustnessConfig::default()
        };
        let rescued = RobustEngine::train(
            &ObservedDataset::from_records(vec![crafted_record(3001, 12, |i| {
                i / SLOTS_PER_WEEK == 2
            })]),
            &config(1),
            &lenient,
        )
        .expect("trains");
        assert!(rescued.quarantined().is_empty());
    }

    #[test]
    fn quarantine_report_travels_with_the_evaluation() {
        let hopeless = crafted_record(3001, 12, |i| i / SLOTS_PER_WEEK == 2);
        let healthy = crafted_record(3002, 12, |_| false);
        let observed = ObservedDataset::from_records(vec![hopeless, healthy]);
        let robust = RobustEngine::train(&observed, &config(1), &RobustnessConfig::default())
            .expect("trains");
        let report = robust.evaluate().expect("scores");
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.evaluation.consumers.len(), 1);
        assert_eq!(report.evaluation.consumers[0].id, 3002);
        assert!(report.quarantined[0].to_string().contains("3001"));
    }

    #[test]
    fn identical_policies_attempt_only_once() {
        let hopeless = crafted_record(3001, 12, |i| i / SLOTS_PER_WEEK == 2);
        let observed = ObservedDataset::from_records(vec![hopeless]);
        let no_retry = RobustnessConfig {
            primary: RepairPolicy::LinearInterpolate,
            fallback: RepairPolicy::LinearInterpolate,
            ..RobustnessConfig::default()
        };
        let robust = RobustEngine::train(&observed, &config(1), &no_retry).expect("completes");
        assert_eq!(robust.quarantined()[0].attempts.len(), 1);
    }

    #[test]
    fn invalid_coverage_is_rejected_before_training() {
        let observed = ObservedDataset::from_records(vec![crafted_record(1, 12, |_| false)]);
        let bad = RobustnessConfig {
            min_coverage: 1.5,
            ..RobustnessConfig::default()
        };
        assert!(matches!(
            RobustEngine::train(&observed, &config(1), &bad),
            Err(EvalError::Config(ConfigError::InvalidCoverage { .. }))
        ));
    }
}
