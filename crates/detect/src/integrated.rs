//! The Integrated ARIMA detector: interval checks plus weekly mean and
//! variance range checks.

use fdeta_arima::ArimaModel;
use fdeta_tsdata::week::{WeekMatrix, WeekVector};

use crate::arima_detector::ArimaDetector;
use crate::detector::{Detector, Verdict};

/// The CRITIS-2015 detector with "additional checks ... on the mean and
/// variance of a set of readings": a week is flagged if the interval
/// detector flags it, or its mean falls outside the range of training
/// weekly means, or its variance falls outside the range of training
/// weekly variances (each range widened by a small relative slack).
///
/// This defeats the plain ARIMA attack (whose boundary-riding drags the
/// weekly mean far outside history) but is circumvented by the Integrated
/// ARIMA attack, which steers the mean to a historically attained value.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct IntegratedArimaDetector {
    inner: ArimaDetector,
    mean_range: (f64, f64),
    var_range: (f64, f64),
}

impl IntegratedArimaDetector {
    /// Relative slack applied to the historic ranges (2%): meters are
    /// accurate to a fraction of a percent, and the slack keeps borderline
    /// honest weeks from tripping the range checks.
    pub const RANGE_SLACK: f64 = 0.02;

    /// Trains the detector from the model and training matrix.
    ///
    /// # Errors
    ///
    /// As [`ArimaDetector::new`].
    pub fn new(
        model: ArimaModel,
        train: &WeekMatrix,
        confidence: f64,
    ) -> Result<Self, fdeta_arima::ArimaError> {
        Ok(Self::from_seeded(
            ArimaDetector::new(model, train, confidence)?,
            train,
        ))
    }

    /// Trains the detector around an already-seeded interval detector,
    /// reusing its forecaster seed instead of replaying the full training
    /// history a second time. Equivalent to
    /// [`IntegratedArimaDetector::new`] when `inner` was seeded on the
    /// same `train` (a training pipeline that builds both detectors pays
    /// for one seeding pass instead of two).
    pub fn from_seeded(inner: ArimaDetector, train: &WeekMatrix) -> Self {
        let means = train.weekly_means();
        let vars = train.weekly_variances();
        let min_mean = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_mean = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min_var = vars.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_var = vars.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let slack = Self::RANGE_SLACK;
        Self {
            inner,
            mean_range: (min_mean * (1.0 - slack), max_mean * (1.0 + slack)),
            var_range: (min_var * (1.0 - slack), max_var * (1.0 + slack)),
        }
    }

    /// The accepted weekly-mean range.
    pub fn mean_range(&self) -> (f64, f64) {
        self.mean_range
    }

    /// The accepted weekly-variance range.
    pub fn var_range(&self) -> (f64, f64) {
        self.var_range
    }

    fn range_violation(&self, week: &WeekVector) -> bool {
        let summary = week.summary();
        let (mean_lo, mean_hi) = self.mean_range;
        let (_, var_hi) = self.var_range;
        // Mean is range-checked both ways: "failed to maintain a
        // high-enough average" is how the paper says low injections get
        // caught. Variance is upper-bounded only ("do not exceed
        // thresholds"): an attack vector hugging the forecast has *less*
        // spread than organic load, and real detectors do not alarm on
        // suspiciously calm weeks.
        summary.mean < mean_lo || summary.mean > mean_hi || summary.variance > var_hi
    }
}

impl Detector for IntegratedArimaDetector {
    fn name(&self) -> &'static str {
        "integrated-arima"
    }

    fn assess(&self, week: &WeekVector) -> Verdict {
        let inner = self.inner.assess(week);
        if inner.anomalous || self.range_violation(week) {
            Verdict::flagged(inner.score)
        } else {
            Verdict::clean(inner.score)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdeta_arima::ArimaSpec;
    use fdeta_attacks::{arima_attack, integrated_arima_worst_case, Direction, InjectionContext};
    use fdeta_gridsim::pricing::PricingScheme;
    use fdeta_tsdata::SLOTS_PER_WEEK;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn training(weeks: usize, seed: u64) -> WeekMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values = Vec::with_capacity(weeks * SLOTS_PER_WEEK);
        for w in 0..weeks {
            // Decreasing level: the history ends near its minimum weekly
            // mean, so the under-report attack's target is close to the
            // model's end-of-training state (the typical case; strong
            // level transients are the paper's own ~10% residual).
            let level = 1.3 - 0.3 * (w as f64 / weeks as f64);
            for i in 0..SLOTS_PER_WEEK {
                let daily = level + 0.4 * ((i % 48) as f64 / 48.0 * std::f64::consts::TAU).sin();
                values.push((daily + rng.gen_range(-0.15..0.15)).max(0.0));
            }
        }
        WeekMatrix::from_flat(values).unwrap()
    }

    fn setup(seed: u64) -> (WeekMatrix, ArimaModel, IntegratedArimaDetector) {
        let train = training(10, seed);
        let model = ArimaModel::fit(train.flat(), ArimaSpec::new(2, 0, 1).unwrap()).unwrap();
        let det = IntegratedArimaDetector::new(model.clone(), &train, 0.95).unwrap();
        (train, model, det)
    }

    #[test]
    fn clean_week_passes() {
        let (train, _, det) = setup(1);
        assert!(!det.is_anomalous(&train.week_vector(9)));
    }

    #[test]
    fn plain_arima_attack_is_caught_by_the_mean_check() {
        // The paper's motivation for the integrated checks: the
        // boundary-riding attack drags the weekly mean outside history.
        let (train, model, det) = setup(2);
        let actual = train.week_vector(9);
        let ctx = InjectionContext {
            train: &train,
            actual_week: &actual,
            model: &model,
            confidence: 0.95,
            start_slot: 0,
        };
        let attack = arima_attack(&ctx, Direction::UnderReport);
        assert!(
            det.is_anomalous(&attack.reported),
            "integrated detector must catch the plain ARIMA attack"
        );
    }

    #[test]
    fn integrated_attack_usually_evades() {
        // The counter-attack steers the mean back into the historic range.
        // The paper itself reports ~10% residual detections, so assert the
        // *typical* case across several consumers rather than every seed.
        let mut evaded = 0;
        let total = 8;
        for seed in 0..total {
            let (train, model, det) = setup(seed);
            let actual = train.week_vector(9);
            let ctx = InjectionContext {
                train: &train,
                actual_week: &actual,
                model: &model,
                confidence: 0.95,
                start_slot: 0,
            };
            let attack = integrated_arima_worst_case(
                &ctx,
                Direction::UnderReport,
                10,
                7,
                &PricingScheme::flat_default(),
            )
            .unwrap();
            if !det.is_anomalous(&attack.reported) {
                evaded += 1;
            }
        }
        assert!(
            evaded * 2 > total,
            "integrated ARIMA attack should evade the integrated detector for most \
             consumers ({evaded}/{total} evaded)"
        );
    }

    #[test]
    fn mean_and_variance_ranges_are_ordered() {
        let (_, _, det) = setup(4);
        let (mlo, mhi) = det.mean_range();
        let (vlo, vhi) = det.var_range();
        assert!(mlo < mhi);
        assert!(vlo < vhi);
    }

    #[test]
    fn flat_zero_week_trips_the_range_checks() {
        let (_, _, det) = setup(5);
        let zeros = WeekVector::new(vec![0.0; SLOTS_PER_WEEK]).unwrap();
        assert!(
            det.is_anomalous(&zeros),
            "an all-zero week is far below the historic mean range"
        );
    }
}
