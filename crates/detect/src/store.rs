//! A versioned on-disk store for trained per-consumer artifacts.
//!
//! Training dominates every evaluation binary: the per-consumer ARIMA fit,
//! KLD histograms and training quantiles, and PCA subspace cost seconds
//! per fleet, while scoring the cached artifacts costs milliseconds. The
//! trained state is a pure function of the corpus content and the training
//! slice of the configuration — so it can be persisted once and reloaded
//! by every later run over the same corpus (`table2`, `table3`, `roc`,
//! the ablations) instead of being recomputed by each binary.
//!
//! # Cache key and invalidation
//!
//! [`ArtifactStore::corpus_key`] hashes (FNV-1a, 64-bit) everything the
//! trained state depends on: the store format version, `train_weeks`,
//! `bins`, `confidence`, the ARIMA order, and every consumer's id and full
//! half-hour series (exact `f64` bit patterns). Anything that *doesn't*
//! change training — the attack seed, `attack_vectors`, thread count — is
//! deliberately excluded, so an attack-parameter sweep over one corpus
//! shares a single cache entry. A changed corpus or training parameter
//! produces a different key, which is a different file name: stale entries
//! are never read, only orphaned.
//!
//! # Format
//!
//! The codec is a hand-rolled little-endian binary layout (magic,
//! version, key, per-consumer trained state, FNV-1a integrity checksum).
//! Floats are stored as raw bit patterns, so a load reproduces the cold
//! run's numbers **bit-identically** — the equivalence test in
//! `tests/store_roundtrip.rs` asserts a warm engine's full evaluation
//! equals the cold engine's. Only the expensive state is persisted; the
//! cheap derived pieces (train/test split, interval detectors, weekly-mean
//! range) are re-derived on load by `TrainedConsumer::reassemble`,
//! which keeps files small and guarantees they cannot drift from the
//! persisted model.
//!
//! A corrupt or truncated file is a typed [`StoreError`], and
//! [`ArtifactStore::engine`] degrades it to a retrain
//! ([`CacheStatus::Invalid`]) instead of failing the run.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use fdeta_arima::{ArimaModel, ArimaSpec};
use fdeta_cer_synth::SyntheticDataset;
use fdeta_tsdata::hist::BinEdges;

use crate::codec::{fnv1a, ByteReader, ByteWriter, Fnv, FNV_OFFSET};
use crate::engine::{
    run_work_stealing_stateful, EngineStage, EvalEngine, ProgressFn, TrainedConsumer,
};
use crate::error::{EvalError, TrainError};
use crate::eval::EvalConfig;
use crate::kld::BandRepr;
use crate::kld::{
    ConditionedKldDetector, ConditionedKldDetectorRepr, KldDetector, KldDetectorRepr,
    SignificanceLevel,
};
use crate::pca::PcaDetector;

/// On-disk format version; bumped on any layout change so old files are
/// simply never matched (the version participates in the key and the file
/// name).
pub const STORE_VERSION: u32 = 1;

/// File magic: identifies an F-DETA artifact file regardless of extension.
const MAGIC: &[u8; 8] = b"FDETAART";

/// File magic for a sharded store's manifest.
const MANIFEST_MAGIC: &[u8; 8] = b"FDETAMAN";

/// File magic for one consumer-range shard of a sharded store.
const SHARD_MAGIC: &[u8; 8] = b"FDETASHD";

/// Splits `count` consumers into `shards` contiguous index ranges
/// `(start, count)`, sizes differing by at most one, empty shards never
/// emitted (the shard count is clamped to the consumer count).
fn shard_ranges(count: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, count.max(1));
    let base = count / shards;
    let rem = count % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for shard in 0..shards {
        let len = base + usize::from(shard < rem);
        ranges.push((start, len));
        start += len;
    }
    ranges
}

/// Worker threads for parallel shard encode/decode: the machine's
/// available parallelism, never more than one thread per shard.
fn store_threads(shards: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .clamp(1, shards.max(1))
}

/// Splits off and verifies a file's trailing FNV-1a checksum, returning
/// the covered payload.
fn checksummed_payload(bytes: &[u8]) -> Result<&[u8], String> {
    if bytes.len() < 8 + 8 {
        return Err("file shorter than header + checksum".into());
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let mut sum = [0u8; 8];
    sum.copy_from_slice(tail);
    if fnv1a(payload, FNV_OFFSET) != u64::from_le_bytes(sum) {
        return Err("integrity checksum mismatch".into());
    }
    Ok(payload)
}

/// A failure of the store itself — never fatal to an evaluation, because
/// [`ArtifactStore::engine`] falls back to retraining.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// The file could not be read or written.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying I/O error, rendered (kept as text so the error
        /// stays `Clone`/`PartialEq` like every other error in the crate).
        message: String,
    },
    /// The file exists but does not deserialize to valid artifacts.
    Corrupt {
        /// The file involved.
        path: PathBuf,
        /// What check failed.
        what: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "artifact store I/O on {}: {message}", path.display())
            }
            StoreError::Corrupt { path, what } => {
                write!(f, "corrupt artifact file {}: {what}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// How [`ArtifactStore::engine`] obtained its engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Artifacts were loaded from disk; no training ran.
    Hit,
    /// No cache entry existed; the fleet was trained (and saved).
    Miss,
    /// A cache entry existed but failed validation; the fleet was
    /// retrained and the entry rewritten.
    Invalid,
}

impl fmt::Display for CacheStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheStatus::Hit => write!(f, "hit"),
            CacheStatus::Miss => write!(f, "miss"),
            CacheStatus::Invalid => write!(f, "invalid"),
        }
    }
}

/// The outcome of one [`ArtifactStore::engine`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheOutcome {
    /// Hit, miss, or invalidated-and-retrained.
    pub status: CacheStatus,
    /// The cache file consulted (and written on miss/invalid).
    pub path: PathBuf,
    /// Why a pre-existing entry was rejected, when `status` is
    /// [`CacheStatus::Invalid`].
    pub load_error: Option<StoreError>,
    /// A save failure after retraining, if any — the engine is still
    /// returned; only the *next* run loses the warm start.
    pub save_error: Option<StoreError>,
}

/// A directory of versioned, content-keyed artifact files.
///
/// A store writes either one monolithic file ([`ArtifactStore::new`]) or
/// `N` consumer-range shard files under a manifest
/// ([`ArtifactStore::sharded`]); loads auto-detect whichever layout is on
/// disk, so the knob only changes what *saves* produce. Sharded saves and
/// loads encode/decode their shards with work-stealing parallelism —
/// per-consumer artifact codec work is independent across shards — and
/// the corpus key is hashed once per operation and threaded to the
/// manifest and every shard.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
    shards: usize,
}

impl ArtifactStore {
    /// A store rooted at `root`, saving one monolithic file per corpus.
    /// The directory is created lazily on the first save.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            shards: 1,
        }
    }

    /// A store that saves `shards` consumer-range shard files under one
    /// manifest (clamped to at least 1; 1 behaves like
    /// [`ArtifactStore::new`]). Loading is layout-agnostic either way.
    pub fn sharded(root: impl Into<PathBuf>, shards: usize) -> Self {
        Self {
            root: root.into(),
            shards: shards.max(1),
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// How many shard files a save produces (1 = monolithic).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The content hash keying this `(corpus, training parameters)` pair.
    /// See the module docs for exactly what is (and is not) covered.
    pub fn corpus_key(dataset: &SyntheticDataset, config: &EvalConfig) -> u64 {
        let mut h = Fnv::new();
        h.u64(u64::from(STORE_VERSION));
        h.u64(config.train_weeks as u64);
        h.u64(config.bins as u64);
        h.u64(config.confidence.to_bits());
        let (p, d, q) = config.arima_order;
        h.u64(p as u64);
        h.u64(d as u64);
        h.u64(q as u64);
        h.u64(dataset.len() as u64);
        for index in 0..dataset.len() {
            let record = dataset.consumer(index);
            h.u64(u64::from(record.id));
            let values = record.series.as_slice();
            h.u64(values.len() as u64);
            for &v in values {
                h.u64(v.to_bits());
            }
        }
        h.finish()
    }

    /// The file a given `(corpus, config)` pair maps to.
    pub fn path_for(&self, dataset: &SyntheticDataset, config: &EvalConfig) -> PathBuf {
        self.path_for_key(Self::corpus_key(dataset, config))
    }

    /// The file an already-computed corpus key maps to. The key hash
    /// walks every reading in the corpus (~12M words at paper scale), so
    /// the internal paths hash once and thread the key instead of
    /// recomputing it per lookup.
    fn path_for_key(&self, key: u64) -> PathBuf {
        self.root
            .join(format!("artifacts-v{STORE_VERSION}-{key:016x}.bin"))
    }

    /// The manifest a sharded save of `key` writes.
    fn manifest_path(&self, key: u64) -> PathBuf {
        self.root
            .join(format!("artifacts-v{STORE_VERSION}-{key:016x}.manifest"))
    }

    /// Shard `k` of a sharded save of `key`.
    fn shard_path(&self, key: u64, shard: usize) -> PathBuf {
        self.root.join(format!(
            "artifacts-v{STORE_VERSION}-{key:016x}.shard{shard}"
        ))
    }

    /// The file [`ArtifactStore::engine`] reports in its
    /// [`CacheOutcome`]: the manifest for a sharded store, the monolithic
    /// file otherwise.
    fn primary_path(&self, key: u64) -> PathBuf {
        if self.shards > 1 {
            self.manifest_path(key)
        } else {
            self.path_for_key(key)
        }
    }

    /// Persists a trained fleet. Writes to a temporary sibling and renames
    /// into place, so readers never observe a half-written file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn save(
        &self,
        dataset: &SyntheticDataset,
        config: &EvalConfig,
        artifacts: &[TrainedConsumer],
    ) -> Result<PathBuf, StoreError> {
        self.save_with_key(Self::corpus_key(dataset, config), artifacts)
    }

    fn save_with_key(
        &self,
        key: u64,
        artifacts: &[TrainedConsumer],
    ) -> Result<PathBuf, StoreError> {
        if self.shards > 1 {
            self.save_sharded_with_key(key, artifacts)
        } else {
            self.save_monolithic_with_key(key, artifacts)
        }
    }

    fn save_monolithic_with_key(
        &self,
        key: u64,
        artifacts: &[TrainedConsumer],
    ) -> Result<PathBuf, StoreError> {
        let path = self.path_for_key(key);
        let io_err = |e: std::io::Error| StoreError::Io {
            path: path.clone(),
            message: e.to_string(),
        };
        fs::create_dir_all(&self.root).map_err(io_err)?;

        let mut w = ByteWriter::default();
        w.bytes(MAGIC);
        w.u32(STORE_VERSION);
        w.u64(key);
        w.u64(artifacts.len() as u64);
        for artifact in artifacts {
            write_consumer(&mut w, artifact);
        }
        let checksum = fnv1a(w.as_slice(), FNV_OFFSET);
        w.u64(checksum);

        let tmp = path.with_extension("bin.tmp");
        fs::write(&tmp, w.as_slice()).map_err(io_err)?;
        fs::rename(&tmp, &path).map_err(io_err)?;
        Ok(path)
    }

    /// Sharded save: the fleet is split into contiguous consumer-index
    /// ranges, each range encoded (in parallel) and written as its own
    /// checksummed shard file, and the manifest describing the ranges is
    /// written **last** — a crash mid-save can orphan shard files but
    /// never leaves a manifest pointing at missing or stale shards.
    fn save_sharded_with_key(
        &self,
        key: u64,
        artifacts: &[TrainedConsumer],
    ) -> Result<PathBuf, StoreError> {
        let manifest = self.manifest_path(key);
        let io_err = |path: &Path, e: std::io::Error| StoreError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        };
        fs::create_dir_all(&self.root).map_err(|e| io_err(&manifest, e))?;

        let ranges = shard_ranges(artifacts.len(), self.shards);
        let encoded = run_work_stealing_stateful(
            ranges.len(),
            store_threads(ranges.len()),
            None,
            EngineStage::Train,
            || (),
            |(), shard| {
                let (start, count) = ranges[shard];
                let mut w = ByteWriter::default();
                w.bytes(SHARD_MAGIC);
                w.u32(STORE_VERSION);
                w.u64(key);
                w.u64(shard as u64);
                w.u64(start as u64);
                w.u64(count as u64);
                for artifact in &artifacts[start..start + count] {
                    write_consumer(&mut w, artifact);
                }
                let checksum = fnv1a(w.as_slice(), FNV_OFFSET);
                w.u64(checksum);
                Ok(w.into_bytes())
            },
        )
        .map_err(|e| StoreError::Io {
            path: manifest.clone(),
            message: format!("shard encode failed: {e}"),
        })?;
        for (shard, bytes) in encoded.iter().enumerate() {
            let path = self.shard_path(key, shard);
            let tmp = path.with_extension(format!("shard{shard}.tmp"));
            fs::write(&tmp, bytes).map_err(|e| io_err(&tmp, e))?;
            fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        }

        let mut w = ByteWriter::default();
        w.bytes(MANIFEST_MAGIC);
        w.u32(STORE_VERSION);
        w.u64(key);
        w.u64(artifacts.len() as u64);
        w.u64(ranges.len() as u64);
        for &(start, count) in &ranges {
            w.u64(start as u64);
            w.u64(count as u64);
        }
        let checksum = fnv1a(w.as_slice(), FNV_OFFSET);
        w.u64(checksum);
        let tmp = manifest.with_extension("manifest.tmp");
        fs::write(&tmp, w.as_slice()).map_err(|e| io_err(&tmp, e))?;
        fs::rename(&tmp, &manifest).map_err(|e| io_err(&manifest, e))?;
        Ok(manifest)
    }

    /// Loads the trained fleet for `(dataset, config)` if a valid cache
    /// entry exists. `Ok(None)` is a clean miss (no file); any existing
    /// but unusable file is an error so the caller can distinguish "cold"
    /// from "corrupt".
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] for unreadable files, [`StoreError::Corrupt`]
    /// for bad magic/version/key/checksum or undecodable content.
    pub fn load(
        &self,
        dataset: &SyntheticDataset,
        config: &EvalConfig,
    ) -> Result<Option<Vec<TrainedConsumer>>, StoreError> {
        self.load_with_key(Self::corpus_key(dataset, config), dataset, config)
    }

    fn load_with_key(
        &self,
        key: u64,
        dataset: &SyntheticDataset,
        config: &EvalConfig,
    ) -> Result<Option<Vec<TrainedConsumer>>, StoreError> {
        // Layout auto-detection: a manifest on disk wins, otherwise fall
        // back to the monolithic file — so any store loads what any other
        // store configuration saved.
        match self.load_sharded_with_key(key, dataset, config) {
            Ok(None) => {}
            other => return other,
        }
        self.load_monolithic_with_key(key, dataset, config)
    }

    /// Sharded load: `Ok(None)` when no manifest exists; otherwise every
    /// shard named by the manifest is read, checksummed, and decoded (in
    /// parallel — decode cost is per-consumer and independent across
    /// shards), and the per-shard fleets are merged in range order.
    fn load_sharded_with_key(
        &self,
        key: u64,
        dataset: &SyntheticDataset,
        config: &EvalConfig,
    ) -> Result<Option<Vec<TrainedConsumer>>, StoreError> {
        let manifest_path = self.manifest_path(key);
        let bytes = match fs::read(&manifest_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(StoreError::Io {
                    path: manifest_path,
                    message: e.to_string(),
                })
            }
        };
        let corrupt = |what: String| StoreError::Corrupt {
            path: manifest_path.clone(),
            what,
        };

        let payload = checksummed_payload(&bytes).map_err(corrupt)?;
        let ranges = (|| -> Result<Vec<(usize, usize)>, String> {
            let mut r = ByteReader::new(payload);
            if r.bytes(MANIFEST_MAGIC.len())? != MANIFEST_MAGIC.as_slice() {
                return Err("bad manifest magic".into());
            }
            let version = r.u32()?;
            if version != STORE_VERSION {
                return Err(format!(
                    "format version {version}, this build reads {STORE_VERSION}"
                ));
            }
            let stored_key = r.u64()?;
            if stored_key != key {
                return Err(format!(
                    "corpus key {stored_key:016x} does not match {key:016x}"
                ));
            }
            let total = r.len()?;
            if total != dataset.len() {
                return Err(format!(
                    "stored fleet has {total} consumers, corpus has {}",
                    dataset.len()
                ));
            }
            let shard_count = r.checked_len(16)?;
            let mut ranges = Vec::with_capacity(shard_count);
            let mut next_start = 0usize;
            for shard in 0..shard_count {
                let start = r.len()?;
                let count = r.len()?;
                if start != next_start {
                    return Err(format!(
                        "shard {shard} starts at {start}, expected {next_start}"
                    ));
                }
                next_start = start
                    .checked_add(count)
                    .ok_or_else(|| format!("shard {shard} range overflows"))?;
                ranges.push((start, count));
            }
            if next_start != total {
                return Err(format!(
                    "shard ranges cover {next_start} consumers, manifest says {total}"
                ));
            }
            if r.remaining() != 0 {
                return Err(format!("{} trailing bytes after manifest", r.remaining()));
            }
            Ok(ranges)
        })()
        .map_err(corrupt)?;

        let fleets = run_work_stealing_stateful(
            ranges.len(),
            store_threads(ranges.len()),
            None,
            EngineStage::Train,
            || (),
            |(), shard| {
                self.read_shard(key, shard, ranges[shard], dataset, config)
                    .map_err(|e| TrainError::Corpus {
                        consumer: 0,
                        message: e.to_string(),
                    })
            },
        )
        .map_err(|e| corrupt(format!("shard decode failed: {e}")))?;
        let mut artifacts = Vec::with_capacity(dataset.len());
        for fleet in fleets {
            artifacts.extend(fleet);
        }
        Ok(Some(artifacts))
    }

    /// Reads and decodes one shard file, validating its header against
    /// the manifest's expectation for that shard.
    fn read_shard(
        &self,
        key: u64,
        shard: usize,
        (start, count): (usize, usize),
        dataset: &SyntheticDataset,
        config: &EvalConfig,
    ) -> Result<Vec<TrainedConsumer>, StoreError> {
        let path = self.shard_path(key, shard);
        let bytes = fs::read(&path).map_err(|e| StoreError::Io {
            path: path.clone(),
            message: e.to_string(),
        })?;
        let corrupt = |what: String| StoreError::Corrupt {
            path: path.clone(),
            what,
        };
        let payload = checksummed_payload(&bytes).map_err(corrupt)?;
        (|| -> Result<Vec<TrainedConsumer>, String> {
            let mut r = ByteReader::new(payload);
            if r.bytes(SHARD_MAGIC.len())? != SHARD_MAGIC.as_slice() {
                return Err("bad shard magic".into());
            }
            let version = r.u32()?;
            if version != STORE_VERSION {
                return Err(format!(
                    "format version {version}, this build reads {STORE_VERSION}"
                ));
            }
            let stored_key = r.u64()?;
            if stored_key != key {
                return Err(format!(
                    "corpus key {stored_key:016x} does not match {key:016x}"
                ));
            }
            let stored = (r.len()?, r.len()?, r.len()?);
            if stored != (shard, start, count) {
                return Err(format!(
                    "shard header (index, start, count) = {stored:?}, manifest says {:?}",
                    (shard, start, count)
                ));
            }
            let mut artifacts = Vec::with_capacity(count);
            for index in start..start + count {
                artifacts.push(read_consumer(&mut r, dataset, config, index)?);
            }
            if r.remaining() != 0 {
                return Err(format!(
                    "{} trailing bytes after shard fleet",
                    r.remaining()
                ));
            }
            Ok(artifacts)
        })()
        .map_err(corrupt)
    }

    fn load_monolithic_with_key(
        &self,
        key: u64,
        dataset: &SyntheticDataset,
        config: &EvalConfig,
    ) -> Result<Option<Vec<TrainedConsumer>>, StoreError> {
        let path = self.path_for_key(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(StoreError::Io {
                    path,
                    message: e.to_string(),
                })
            }
        };
        let corrupt = |what: String| StoreError::Corrupt {
            path: path.clone(),
            what,
        };

        if bytes.len() < MAGIC.len() + 8 {
            return Err(corrupt("file shorter than header + checksum".into()));
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let mut sum = [0u8; 8];
        sum.copy_from_slice(tail);
        let stored_sum = u64::from_le_bytes(sum);
        if fnv1a(payload, FNV_OFFSET) != stored_sum {
            return Err(corrupt("integrity checksum mismatch".into()));
        }

        let mut r = ByteReader::new(payload);
        let parse = (|| -> Result<Vec<TrainedConsumer>, String> {
            if r.bytes(MAGIC.len())? != MAGIC.as_slice() {
                return Err("bad magic".into());
            }
            let version = r.u32()?;
            if version != STORE_VERSION {
                return Err(format!(
                    "format version {version}, this build reads {STORE_VERSION}"
                ));
            }
            let stored_key = r.u64()?;
            if stored_key != key {
                return Err(format!(
                    "corpus key {stored_key:016x} does not match {key:016x}"
                ));
            }
            let count = r.len()?;
            if count != dataset.len() {
                return Err(format!(
                    "stored fleet has {count} consumers, corpus has {}",
                    dataset.len()
                ));
            }
            let mut artifacts = Vec::with_capacity(count);
            for index in 0..count {
                artifacts.push(read_consumer(&mut r, dataset, config, index)?);
            }
            if r.remaining() != 0 {
                return Err(format!("{} trailing bytes after fleet", r.remaining()));
            }
            Ok(artifacts)
        })();
        parse.map(Some).map_err(corrupt)
    }

    /// The warm-start entry point: load the fleet if a valid cache entry
    /// exists, otherwise train it (reporting progress) and persist it
    /// best-effort. The returned engine is indistinguishable from a
    /// freshly trained one — warm and cold runs produce bit-identical
    /// results.
    ///
    /// # Errors
    ///
    /// Only training/configuration errors ([`EvalError`]); store failures
    /// degrade to a retrain and are reported in the [`CacheOutcome`].
    pub fn engine(
        &self,
        dataset: &SyntheticDataset,
        config: &EvalConfig,
        progress: Option<Box<ProgressFn>>,
    ) -> Result<(EvalEngine, CacheOutcome), EvalError> {
        let key = Self::corpus_key(dataset, config);
        let path = self.primary_path(key);
        let (status, load_error) = match self.load_with_key(key, dataset, config) {
            Ok(Some(artifacts)) => {
                let engine = EvalEngine::from_artifacts(config, artifacts)?;
                return Ok((
                    engine,
                    CacheOutcome {
                        status: CacheStatus::Hit,
                        path,
                        load_error: None,
                        save_error: None,
                    },
                ));
            }
            Ok(None) => (CacheStatus::Miss, None),
            Err(e) => (CacheStatus::Invalid, Some(e)),
        };
        let engine = EvalEngine::train_with_progress(dataset, config, progress)?;
        let save_error = self.save_with_key(key, engine.artifacts()).err();
        Ok((
            engine,
            CacheOutcome {
                status,
                path,
                load_error,
                save_error,
            },
        ))
    }
}

// --- per-consumer codec ----------------------------------------------------

fn level_tag(level: SignificanceLevel) -> u8 {
    match level {
        SignificanceLevel::Five => 1,
        SignificanceLevel::Ten => 2,
    }
}

fn level_from_tag(tag: u8) -> Result<SignificanceLevel, String> {
    match tag {
        1 => Ok(SignificanceLevel::Five),
        2 => Ok(SignificanceLevel::Ten),
        other => Err(format!("unknown significance-level tag {other}")),
    }
}

fn write_consumer(w: &mut ByteWriter, artifact: &TrainedConsumer) {
    w.u32(artifact.id());
    w.u64(artifact.index() as u64);

    match artifact.model() {
        Some(model) => {
            w.u8(1);
            let spec = model.spec();
            w.u64(spec.p() as u64);
            w.u64(spec.d() as u64);
            w.u64(spec.q() as u64);
            w.f64(model.intercept());
            w.vec_f64(model.phi());
            w.vec_f64(model.theta());
            w.f64(model.sigma2());
        }
        None => w.u8(0),
    }

    let kld = KldDetectorRepr::from(artifact.kld_base().clone());
    w.vec_f64(kld.edges.as_slice());
    w.vec_u64(kld.baseline.counts());
    w.vec_f64(&kld.training_k);
    w.f64(kld.threshold);
    w.u8(kld.level.map_or(0, level_tag));
    w.f64(kld.percentile);

    let cond = ConditionedKldDetectorRepr::from(artifact.conditioned_base().clone());
    w.u64(cond.bands.len() as u64);
    for band in &cond.bands {
        w.vec_usize(&band.slots);
        w.vec_f64(band.edges.as_slice());
        w.vec_u64(band.baseline.counts());
        w.vec_f64(&band.training_k);
        w.f64(band.threshold);
    }
    w.u8(level_tag(cond.level));

    match artifact.pca_base() {
        Some(pca) => {
            w.u8(1);
            let (mean, components, threshold, training_errors, level) = pca.trained_parts();
            w.vec_f64(mean);
            w.u64(components.len() as u64);
            for component in components {
                w.vec_f64(component);
            }
            w.f64(threshold);
            w.vec_f64(training_errors);
            w.u8(level_tag(level));
        }
        None => w.u8(0),
    }
}

fn read_kld_detector(r: &mut ByteReader<'_>) -> Result<KldDetector, String> {
    let edges = BinEdges::from_edges(r.vec_f64()?).map_err(|e| format!("KLD edges: {e}"))?;
    let baseline = edges
        .histogram_from_counts(r.vec_u64()?)
        .map_err(|e| format!("KLD baseline: {e}"))?;
    let training_k = r.vec_f64()?;
    let threshold = r.f64()?;
    let level = match r.u8()? {
        0 => None,
        tag => Some(level_from_tag(tag)?),
    };
    let percentile = r.f64()?;
    Ok(KldDetector::from(KldDetectorRepr {
        edges,
        baseline,
        training_k,
        threshold,
        level,
        percentile,
    }))
}

fn read_consumer(
    r: &mut ByteReader<'_>,
    dataset: &SyntheticDataset,
    config: &EvalConfig,
    index: usize,
) -> Result<TrainedConsumer, String> {
    let record = dataset.consumer(index);
    let id = r.u32()?;
    if id != record.id {
        return Err(format!(
            "consumer {index}: stored id {id} != corpus id {}",
            record.id
        ));
    }
    let stored_index = r.len()?;
    if stored_index != index {
        return Err(format!(
            "consumer {index}: stored corpus index {stored_index}"
        ));
    }

    let model = match r.u8()? {
        0 => None,
        1 => {
            let p = r.len()?;
            let d = r.len()?;
            let q = r.len()?;
            let spec = ArimaSpec::new(p, d, q)
                .map_err(|e| format!("consumer {index}: ARIMA spec: {e}"))?;
            let intercept = r.f64()?;
            let phi = r.vec_f64()?;
            let theta = r.vec_f64()?;
            let sigma2 = r.f64()?;
            Some(
                ArimaModel::from_parts(spec, intercept, phi, theta, sigma2)
                    .map_err(|e| format!("consumer {index}: ARIMA parameters: {e}"))?,
            )
        }
        other => return Err(format!("consumer {index}: bad model flag {other}")),
    };

    let kld = read_kld_detector(r).map_err(|e| format!("consumer {index}: {e}"))?;

    let band_count = r.len()?;
    if band_count > r.remaining() {
        return Err(format!(
            "consumer {index}: band count {band_count} exceeds file size"
        ));
    }
    let mut bands = Vec::with_capacity(band_count);
    for band in 0..band_count {
        let err = |e: String| format!("consumer {index} band {band}: {e}");
        let slots = r.vec_usize().map_err(err)?;
        let edges = BinEdges::from_edges(r.vec_f64().map_err(err)?)
            .map_err(|e| format!("consumer {index} band {band}: edges: {e}"))?;
        let baseline = edges
            .histogram_from_counts(r.vec_u64().map_err(err)?)
            .map_err(|e| format!("consumer {index} band {band}: baseline: {e}"))?;
        let training_k = r.vec_f64().map_err(err)?;
        let threshold = r.f64().map_err(err)?;
        bands.push(BandRepr {
            slots,
            edges,
            baseline,
            training_k,
            threshold,
        });
    }
    let level = level_from_tag(r.u8()?)?;
    let conditioned = ConditionedKldDetector::try_from(ConditionedKldDetectorRepr { bands, level })
        .map_err(|e| format!("consumer {index}: conditioned detector: {e}"))?;

    let pca = match r.u8()? {
        0 => None,
        1 => {
            let mean = r.vec_f64()?;
            let component_count = r.len()?;
            if component_count > r.remaining() {
                return Err(format!(
                    "consumer {index}: component count {component_count} exceeds file size"
                ));
            }
            let mut components = Vec::with_capacity(component_count);
            for _ in 0..component_count {
                components.push(r.vec_f64()?);
            }
            let threshold = r.f64()?;
            let training_errors = r.vec_f64()?;
            let level = level_from_tag(r.u8()?)?;
            Some(PcaDetector::from_trained_parts(
                mean,
                components,
                threshold,
                training_errors,
                level,
            ))
        }
        other => return Err(format!("consumer {index}: bad PCA flag {other}")),
    };

    TrainedConsumer::reassemble(record, index, config, model, kld, conditioned, pca)
        .map_err(|e| format!("consumer {index}: reassembly: {e}"))
}
