//! The detector abstraction.

use serde::{Deserialize, Serialize};

use fdeta_tsdata::week::WeekVector;

/// A detector's decision about one week of reported readings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Whether the week is flagged anomalous.
    pub anomalous: bool,
    /// The detector's scalar evidence (detector-specific scale: violation
    /// count for interval detectors, divergence in bits for KLD). Exposed
    /// so evaluations can study margins, not just binary outcomes.
    pub score: f64,
}

impl Verdict {
    /// A non-anomalous verdict with the given score.
    pub fn clean(score: f64) -> Self {
        Self {
            anomalous: false,
            score,
        }
    }

    /// An anomalous verdict with the given score.
    pub fn flagged(score: f64) -> Self {
        Self {
            anomalous: true,
            score,
        }
    }
}

/// A per-consumer theft detector, trained on that consumer's history.
///
/// Detectors are immutable once trained: scoring clones whatever online
/// state it needs (e.g. a forecaster), so one trained detector can score
/// attack weeks and clean weeks independently — required by the
/// false-positive evaluation, where the same detector must judge many
/// candidate weeks from the same starting state.
pub trait Detector {
    /// Short stable name for reports (e.g. `"kld@5%"`).
    fn name(&self) -> &'static str;

    /// Scores one week of reported readings.
    fn assess(&self, week: &WeekVector) -> Verdict;

    /// Convenience: whether the week is flagged.
    fn is_anomalous(&self, week: &WeekVector) -> bool {
        self.assess(week).anomalous
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdeta_tsdata::SLOTS_PER_WEEK;

    struct Always(bool);
    impl Detector for Always {
        fn name(&self) -> &'static str {
            "always"
        }
        fn assess(&self, _week: &WeekVector) -> Verdict {
            if self.0 {
                Verdict::flagged(1.0)
            } else {
                Verdict::clean(0.0)
            }
        }
    }

    #[test]
    fn default_is_anomalous_delegates_to_assess() {
        let week = WeekVector::new(vec![1.0; SLOTS_PER_WEEK]).unwrap();
        assert!(Always(true).is_anomalous(&week));
        assert!(!Always(false).is_anomalous(&week));
    }

    #[test]
    fn verdict_constructors() {
        assert!(Verdict::flagged(2.0).anomalous);
        assert!(!Verdict::clean(0.5).anomalous);
        assert_eq!(Verdict::clean(0.5).score, 0.5);
    }

    #[test]
    fn trait_is_object_safe() {
        let detectors: Vec<Box<dyn Detector>> = vec![Box::new(Always(true))];
        assert_eq!(detectors[0].name(), "always");
    }
}
