//! Alert-budget planning.
//!
//! Utilities do not choose a significance level in the abstract: they have
//! a field-investigation capacity — so many meter inspections per week per
//! thousand consumers — and want the most aggressive detector that stays
//! inside it. This module turns an operating curve (see [`crate::roc`])
//! into that choice, making the Section VIII-F.1 trade-off actionable.

use serde::{Deserialize, Serialize};

use crate::roc::RocPoint;

/// A weekly investigation capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlertBudget {
    /// Investigations the utility can staff per week, per 1000 consumers.
    pub weekly_per_thousand: f64,
    /// Assumed prevalence of active attackers (fraction of the fleet);
    /// true detections also consume investigation capacity.
    pub attacker_prevalence: f64,
}

impl AlertBudget {
    /// Expected weekly alerts per 1000 consumers at an operating point:
    /// false positives on the honest majority plus detections on the
    /// attacker minority.
    pub fn expected_load(&self, point: &RocPoint) -> f64 {
        let honest = 1000.0 * (1.0 - self.attacker_prevalence);
        let attackers = 1000.0 * self.attacker_prevalence;
        honest * point.false_positive_rate + attackers * point.detection_rate
    }

    /// Whether an operating point fits the budget.
    pub fn admits(&self, point: &RocPoint) -> bool {
        self.expected_load(point) <= self.weekly_per_thousand
    }

    /// The most aggressive operating point (maximum detection rate) whose
    /// expected alert load fits the budget, if any. Ties break toward the
    /// lower false-positive rate.
    pub fn pick(&self, curve: &[RocPoint]) -> Option<RocPoint> {
        curve
            .iter()
            .copied()
            .filter(|p| self.admits(p))
            .max_by(|a, b| {
                // Rates are finite ratios; total_cmp agrees with the
                // partial order there and cannot panic. The reversed
                // false-positive comparison breaks ties toward the lower
                // rate without negating (which would hit -0.0 ordering).
                a.detection_rate
                    .total_cmp(&b.detection_rate)
                    .then_with(|| b.false_positive_rate.total_cmp(&a.false_positive_rate))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> Vec<RocPoint> {
        vec![
            RocPoint {
                alpha: 0.01,
                detection_rate: 0.60,
                false_positive_rate: 0.01,
            },
            RocPoint {
                alpha: 0.05,
                detection_rate: 0.92,
                false_positive_rate: 0.05,
            },
            RocPoint {
                alpha: 0.10,
                detection_rate: 0.98,
                false_positive_rate: 0.10,
            },
            RocPoint {
                alpha: 0.20,
                detection_rate: 1.00,
                false_positive_rate: 0.17,
            },
        ]
    }

    #[test]
    fn expected_load_mixes_fp_and_detections() {
        let budget = AlertBudget {
            weekly_per_thousand: 100.0,
            attacker_prevalence: 0.01,
        };
        let p = &curve()[1];
        // 990 honest × 5% + 10 attackers × 92% = 49.5 + 9.2.
        assert!((budget.expected_load(p) - 58.7).abs() < 1e-9);
    }

    #[test]
    fn pick_is_the_most_aggressive_admissible_point() {
        let tight = AlertBudget {
            weekly_per_thousand: 60.0,
            attacker_prevalence: 0.01,
        };
        let chosen = tight.pick(&curve()).expect("some point fits");
        assert_eq!(
            chosen.alpha, 0.05,
            "5% fits a 60-alert budget, 10% does not"
        );

        let generous = AlertBudget {
            weekly_per_thousand: 500.0,
            attacker_prevalence: 0.01,
        };
        assert_eq!(generous.pick(&curve()).expect("fits").alpha, 0.20);
    }

    #[test]
    fn impossible_budget_yields_none() {
        let impossible = AlertBudget {
            weekly_per_thousand: 1.0,
            attacker_prevalence: 0.01,
        };
        assert_eq!(impossible.pick(&curve()), None);
        assert_eq!(impossible.pick(&[]), None);
    }

    #[test]
    fn prevalence_shifts_the_choice() {
        // With many attackers, true detections alone exhaust the budget
        // sooner, pushing the choice to a stricter level.
        let few = AlertBudget {
            weekly_per_thousand: 150.0,
            attacker_prevalence: 0.001,
        };
        let many = AlertBudget {
            weekly_per_thousand: 150.0,
            attacker_prevalence: 0.20,
        };
        let few_alpha = few.pick(&curve()).expect("fits").alpha;
        let many_alpha = many.pick(&curve()).expect("fits").alpha;
        assert!(many_alpha < few_alpha, "{many_alpha} vs {few_alpha}");
    }
}
