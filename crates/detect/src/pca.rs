//! A PCA-based integrity detector, after the paper's companion work
//! (Badrinath Krishna, Weaver, Sanders — QEST 2015, the paper's reference \[3\]).
//!
//! The weekly consumption of one consumer is highly structured: a few
//! principal components of the training week-matrix capture most organic
//! variation (daily rhythm, weekday/weekend split, level wander). A week
//! whose *residual* — the part not explained by those components — is
//! large relative to the training residuals is anomalous even when its
//! value histogram looks plausible. The paper cites this method both as a
//! related detector and as the source of the time-to-detection technique.
//!
//! The implementation computes the top-`k` principal components of the
//! mean-centred training matrix with power iteration + deflation (the
//! matrices here are 336-dimensional with ≤ ~100 observations, so
//! iterative extraction is plenty), then thresholds the reconstruction
//! error at a percentile of the training errors — the same calibration
//! style the KLD detector uses, which makes the two directly comparable.

use serde::{Deserialize, Serialize};

use fdeta_tsdata::stats::Quantile;
use fdeta_tsdata::week::{WeekMatrix, WeekVector};
use fdeta_tsdata::{TsError, SLOTS_PER_WEEK};

use crate::detector::{Detector, Verdict};
use crate::kld::SignificanceLevel;

/// Number of power-iteration sweeps per component; convergence is
/// geometric in the eigenvalue gap and 50 sweeps is far beyond what the
/// strongly separated load spectra need.
const POWER_ITERATIONS: usize = 50;

/// PCA subspace detector for one consumer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcaDetector {
    /// Per-slot mean of the training weeks (the centring vector).
    mean: Vec<f64>,
    /// Principal components, row-major (`k × 336`), orthonormal.
    components: Vec<Vec<f64>>,
    /// Detection threshold on the residual norm.
    threshold: f64,
    /// Sorted training residual norms (for diagnostics/plots).
    training_errors: Vec<f64>,
    level: SignificanceLevel,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dot products of four equal-length rows against `v` in one pass —
/// [`fdeta_kernels::dot4`], which runs the four accumulators as SIMD lanes
/// when the CPU supports it. Each accumulator sums its row's products in
/// the same element order as [`dot`], so all four results are
/// bit-identical to four separate `dot` calls — but the four independent
/// add chains overlap in the FP pipeline instead of serialising on one
/// accumulator's add latency, which is what makes the power sweep below
/// latency-bound when done row by row.
fn dot4(r0: &[f64], r1: &[f64], r2: &[f64], r3: &[f64], v: &[f64]) -> [f64; 4] {
    fdeta_kernels::dot4(r0, r1, r2, r3, v)
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Reusable training scratch for [`PcaDetector::train_with`]: the centred
/// row matrix (stored flat and deflated in place) and the power-iteration
/// accumulator. Training one consumer after another through the same
/// scratch reuses these buffers instead of reallocating the `m × 336`
/// matrix — twice — plus one accumulator per power sweep per consumer.
#[derive(Debug, Clone, Default)]
pub struct PcaScratch {
    /// Flat row-major centred training rows (`m × 336`), deflated in place
    /// as components are extracted.
    rows: Vec<f64>,
    /// Next-iterate accumulator for the power method.
    next: Vec<f64>,
}

impl PcaScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PcaDetector {
    /// Trains the detector: extracts `components` principal components of
    /// the centred training matrix and calibrates the residual threshold
    /// at the significance level's percentile of training residuals.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::NotEnoughWeeks`] if fewer than
    /// `components + 2` training weeks are available (the residual
    /// distribution needs non-trivial support).
    pub fn train(
        train: &WeekMatrix,
        components: usize,
        level: SignificanceLevel,
    ) -> Result<Self, TsError> {
        Self::train_with(train, components, level, &mut PcaScratch::new())
    }

    /// [`PcaDetector::train`] over caller-owned scratch buffers, for
    /// training loops that fit one consumer after another. Bit-identical
    /// to [`PcaDetector::train`]: the flat scratch matrix applies exactly
    /// the per-row arithmetic the row-of-rows layout did, and the training
    /// residual norms are read off the fully deflated rows — which hold,
    /// element for element, the same residual the old code recomputed per
    /// pristine centred row (sequential projection against the extracted
    /// components in extraction order).
    ///
    /// # Errors
    ///
    /// As [`PcaDetector::train`].
    pub fn train_with(
        train: &WeekMatrix,
        components: usize,
        level: SignificanceLevel,
        scratch: &mut PcaScratch,
    ) -> Result<Self, TsError> {
        let m = train.weeks();
        if m < components + 2 {
            return Err(TsError::NotEnoughWeeks {
                required: components + 2,
                available: m,
            });
        }
        // Column means.
        let mut mean = vec![0.0; SLOTS_PER_WEEK];
        for week in train.iter_weeks() {
            for (acc, v) in mean.iter_mut().zip(week) {
                *acc += v;
            }
        }
        for v in &mut mean {
            *v /= m as f64;
        }
        // Centred rows, flat row-major in the reused scratch; deflation
        // happens in place, so no second copy of the matrix is needed.
        let rows = &mut scratch.rows;
        rows.clear();
        rows.reserve(m * SLOTS_PER_WEEK);
        for week in train.iter_weeks() {
            rows.extend(week.iter().zip(&mean).map(|(v, mu)| v - mu));
        }

        // Power iteration with deflation on the implicit covariance
        // C = Xᵀ X / m: multiply v ← Σ_i (x_i · v) x_i without forming C.
        let mut extracted: Vec<Vec<f64>> = Vec::with_capacity(components);
        for c in 0..components {
            // Deterministic start: a unit vector with structure.
            let mut v: Vec<f64> = (0..SLOTS_PER_WEEK)
                .map(|i| ((i + c + 1) as f64 * 0.37).sin())
                .collect();
            let n = norm(&v);
            for x in &mut v {
                *x /= n;
            }
            for _ in 0..POWER_ITERATIONS {
                let next = &mut scratch.next;
                next.clear();
                next.resize(SLOTS_PER_WEEK, 0.0);
                // Rows go through in groups of four: the projections come
                // from one interleaved [`dot4`] pass, then the four
                // accumulations land element by element in row order —
                // the exact order the row-at-a-time loop used, so `next`
                // is bit-identical while the dominant dot-product chains
                // overlap instead of serialising.
                let mut quads = rows.chunks_exact(4 * SLOTS_PER_WEEK);
                for quad in &mut quads {
                    let (r0, rest) = quad.split_at(SLOTS_PER_WEEK);
                    let (r1, rest) = rest.split_at(SLOTS_PER_WEEK);
                    let (r2, r3) = rest.split_at(SLOTS_PER_WEEK);
                    let [s0, s1, s2, s3] = dot4(r0, r1, r2, r3, &v);
                    for (j, acc) in next.iter_mut().enumerate() {
                        *acc += s0 * r0[j];
                        *acc += s1 * r1[j];
                        *acc += s2 * r2[j];
                        *acc += s3 * r3[j];
                    }
                }
                for row in quads.remainder().chunks_exact(SLOTS_PER_WEEK) {
                    let scale = dot(row, &v);
                    for (acc, x) in next.iter_mut().zip(row) {
                        *acc += scale * x;
                    }
                }
                let n = norm(next);
                if n < 1e-12 {
                    break; // no variance left
                }
                for x in next.iter_mut() {
                    *x /= n;
                }
                // Exact-fixpoint cutoff: the sweep is a deterministic
                // function of the iterate, so once one sweep reproduces it
                // bit for bit, every remaining sweep would reproduce it
                // again — skipping them cannot change the result. Only
                // strongly gapped spectra pin down the iterate to the last
                // ulp within the budget, so this is an opportunistic exit,
                // not the common case.
                let converged = next.iter().zip(&v).all(|(a, b)| a.to_bits() == b.to_bits());
                std::mem::swap(&mut v, next);
                if converged {
                    break;
                }
            }
            // Deflate: remove this component from every row.
            for row in rows.chunks_exact_mut(SLOTS_PER_WEEK) {
                let scale = dot(row, &v);
                for (x, pc) in row.iter_mut().zip(&v) {
                    *x -= scale * pc;
                }
            }
            extracted.push(v);
        }

        // Training residual norms with the final subspace: the deflated
        // rows *are* the residuals (each row has had every component
        // projected out in extraction order, the exact operation
        // `residual_norm` performs on a pristine centred row).
        let mut errors: Vec<f64> = rows.chunks_exact(SLOTS_PER_WEEK).map(norm).collect();
        // Residuals are finite norms; total_cmp agrees with the partial
        // order there and cannot panic on adversarial input.
        errors.sort_by(f64::total_cmp);
        let threshold = Quantile::of_sorted(&errors, level.percentile());
        Ok(Self {
            mean,
            components: extracted,
            threshold,
            training_errors: errors,
            level,
        })
    }

    fn residual_norm(centered_row: &[f64], components: &[Vec<f64>]) -> f64 {
        let mut residual = centered_row.to_vec();
        for pc in components {
            let scale = dot(&residual, pc);
            for (x, p) in residual.iter_mut().zip(pc) {
                *x -= scale * p;
            }
        }
        norm(&residual)
    }

    /// Residual norm of one week against the trained subspace.
    pub fn score(&self, week: &WeekVector) -> f64 {
        let centered: Vec<f64> = week
            .as_slice()
            .iter()
            .zip(&self.mean)
            .map(|(v, mu)| v - mu)
            // lint:allow(vec-alloc-in-score-path, PCA residual scoring is not on the fleet KLD hot path)
            .collect();
        Self::residual_norm(&centered, &self.components)
    }

    /// The calibrated residual threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// A copy of this detector re-thresholded at `level` — a quantile
    /// lookup on the cached sorted training residuals, identical to
    /// retraining at that level (the subspace itself is
    /// threshold-independent).
    pub fn at_level(&self, level: SignificanceLevel) -> Self {
        Self {
            threshold: Quantile::of_sorted(&self.training_errors, level.percentile()),
            level,
            ..self.clone()
        }
    }

    /// Number of principal components retained.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Sorted training residual norms.
    pub fn training_errors(&self) -> &[f64] {
        &self.training_errors
    }

    /// Reassembles a detector from persisted trained state (the artifact
    /// store's warm path). Field-for-field inverse of
    /// [`PcaDetector::trained_parts`].
    pub(crate) fn from_trained_parts(
        mean: Vec<f64>,
        components: Vec<Vec<f64>>,
        threshold: f64,
        training_errors: Vec<f64>,
        level: SignificanceLevel,
    ) -> Self {
        Self {
            mean,
            components,
            threshold,
            training_errors,
            level,
        }
    }

    /// The full trained state `(mean, components, threshold,
    /// training_errors, level)` for persistence.
    pub(crate) fn trained_parts(&self) -> (&[f64], &[Vec<f64>], f64, &[f64], SignificanceLevel) {
        (
            &self.mean,
            &self.components,
            self.threshold,
            &self.training_errors,
            self.level,
        )
    }
}

impl Detector for PcaDetector {
    fn name(&self) -> &'static str {
        match self.level {
            SignificanceLevel::Five => "pca@5%",
            SignificanceLevel::Ten => "pca@10%",
        }
    }

    fn assess(&self, week: &WeekVector) -> Verdict {
        let score = self.score(week);
        if score > self.threshold {
            Verdict::flagged(score)
        } else {
            Verdict::clean(score)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdeta_tsdata::SLOTS_PER_DAY;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn training(weeks: usize, seed: u64) -> WeekMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut values = Vec::with_capacity(weeks * SLOTS_PER_WEEK);
        for w in 0..weeks {
            let level = 1.0 + 0.15 * ((w as f64 * 0.7).sin());
            for i in 0..SLOTS_PER_WEEK {
                let slot = i % SLOTS_PER_DAY;
                let daily: f64 = if (36..46).contains(&slot) { 2.0 } else { 0.4 };
                values.push((level * daily * rng.gen_range(0.9..1.1)).max(0.0));
            }
        }
        WeekMatrix::from_flat(values).unwrap()
    }

    #[test]
    fn components_are_orthonormal() {
        let train = training(30, 1);
        let det = PcaDetector::train(&train, 3, SignificanceLevel::Five).unwrap();
        assert_eq!(det.component_count(), 3);
        for (i, a) in det.components.iter().enumerate() {
            assert!((norm(a) - 1.0).abs() < 1e-6, "component {i} not unit norm");
            for b in det.components.iter().skip(i + 1) {
                assert!(dot(a, b).abs() < 1e-6, "components not orthogonal");
            }
        }
    }

    #[test]
    fn clean_weeks_mostly_pass() {
        let train = training(30, 2);
        let det = PcaDetector::train(&train, 3, SignificanceLevel::Ten).unwrap();
        let flagged = (0..train.weeks())
            .filter(|&w| det.is_anomalous(&train.week_vector(w)))
            .count();
        assert!(
            flagged <= train.weeks() / 5,
            "{flagged}/{} training weeks flagged",
            train.weeks()
        );
    }

    #[test]
    fn structural_break_is_flagged() {
        // A week whose *pattern* changes (consumption moved to the
        // morning) even though the total is similar.
        let train = training(30, 3);
        let det = PcaDetector::train(&train, 3, SignificanceLevel::Five).unwrap();
        let shifted: Vec<f64> = (0..SLOTS_PER_WEEK)
            .map(|i| {
                let slot = i % SLOTS_PER_DAY;
                if (10..20).contains(&slot) {
                    2.0
                } else {
                    0.4
                }
            })
            .collect();
        let week = WeekVector::new(shifted).unwrap();
        assert!(det.is_anomalous(&week));
    }

    #[test]
    fn pca_sees_what_kld_cannot_the_reordering() {
        // The Optimal Swap preserves the value histogram (blinding the
        // unconditioned KLD detector) but rearranges the *temporal*
        // pattern, which PCA's subspace is sensitive to.
        use fdeta_attacks::optimal_swap;
        use fdeta_gridsim::pricing::TouPlan;
        let train = training(30, 4);
        let det = PcaDetector::train(&train, 3, SignificanceLevel::Ten).unwrap();
        let clean_weeks: Vec<usize> = (0..train.weeks())
            .filter(|&w| !det.is_anomalous(&train.week_vector(w)))
            .collect();
        assert!(!clean_weeks.is_empty());
        let mut caught = 0;
        for &w in &clean_weeks {
            let attack = optimal_swap(&train.week_vector(w), &TouPlan::ireland_nightsaver(), 0);
            if det.is_anomalous(&attack.reported) {
                caught += 1;
            }
        }
        assert!(
            caught * 2 > clean_weeks.len(),
            "PCA should catch most swaps ({caught}/{})",
            clean_weeks.len()
        );
    }

    #[test]
    fn rethresholding_matches_fresh_training() {
        let train = training(20, 6);
        let base = PcaDetector::train(&train, 3, SignificanceLevel::Five).unwrap();
        let fresh = PcaDetector::train(&train, 3, SignificanceLevel::Ten).unwrap();
        assert_eq!(base.at_level(SignificanceLevel::Ten), fresh);
    }

    /// The pre-scratch training algorithm, reproduced verbatim (row-of-rows
    /// matrix, cloned residual rows, fresh accumulator per power sweep,
    /// residual norms recomputed per pristine centred row).
    fn legacy_train(
        train: &WeekMatrix,
        components: usize,
        level: SignificanceLevel,
    ) -> (Vec<f64>, Vec<Vec<f64>>, f64, Vec<f64>) {
        let m = train.weeks();
        let mut mean = vec![0.0; SLOTS_PER_WEEK];
        for week in train.iter_weeks() {
            for (acc, v) in mean.iter_mut().zip(week) {
                *acc += v;
            }
        }
        for v in &mut mean {
            *v /= m as f64;
        }
        let centered: Vec<Vec<f64>> = train
            .iter_weeks()
            .map(|week| week.iter().zip(&mean).map(|(v, mu)| v - mu).collect())
            .collect();
        let mut extracted: Vec<Vec<f64>> = Vec::with_capacity(components);
        let mut residual_rows = centered.clone();
        for c in 0..components {
            let mut v: Vec<f64> = (0..SLOTS_PER_WEEK)
                .map(|i| ((i + c + 1) as f64 * 0.37).sin())
                .collect();
            let n = norm(&v);
            for x in &mut v {
                *x /= n;
            }
            for _ in 0..POWER_ITERATIONS {
                let mut next = vec![0.0; SLOTS_PER_WEEK];
                for row in &residual_rows {
                    let scale = dot(row, &v);
                    for (acc, x) in next.iter_mut().zip(row) {
                        *acc += scale * x;
                    }
                }
                let n = norm(&next);
                if n < 1e-12 {
                    break;
                }
                for x in &mut next {
                    *x /= n;
                }
                v = next;
            }
            for row in &mut residual_rows {
                let scale = dot(row, &v);
                for (x, pc) in row.iter_mut().zip(&v) {
                    *x -= scale * pc;
                }
            }
            extracted.push(v);
        }
        let mut errors: Vec<f64> = centered
            .iter()
            .map(|row| PcaDetector::residual_norm(row, &extracted))
            .collect();
        errors.sort_by(f64::total_cmp);
        let threshold = Quantile::of_sorted(&errors, level.percentile());
        (mean, extracted, threshold, errors)
    }

    #[test]
    fn scratch_training_is_bit_identical_to_legacy() {
        // Exercise scratch reuse across differently sized consumers too:
        // the second training must not see the first one's buffers.
        let mut scratch = PcaScratch::new();
        for (weeks, seed, k) in [(30usize, 7u64, 3usize), (12, 8, 2), (40, 9, 3)] {
            let train = training(weeks, seed);
            let det =
                PcaDetector::train_with(&train, k, SignificanceLevel::Five, &mut scratch).unwrap();
            let (mean, components, threshold, errors) =
                legacy_train(&train, k, SignificanceLevel::Five);
            assert_eq!(det.mean, mean, "{weeks}w mean");
            assert_eq!(det.components, components, "{weeks}w components");
            assert_eq!(
                det.threshold.to_bits(),
                threshold.to_bits(),
                "{weeks}w threshold"
            );
            assert_eq!(det.training_errors, errors, "{weeks}w errors");
        }
    }

    #[test]
    fn too_few_weeks_rejected() {
        let train = training(4, 5);
        assert!(matches!(
            PcaDetector::train(&train, 3, SignificanceLevel::Five),
            Err(TsError::NotEnoughWeeks { .. })
        ));
    }

    #[test]
    fn constant_training_data_yields_zero_scores() {
        let train = WeekMatrix::from_flat(vec![1.0; 6 * SLOTS_PER_WEEK]).unwrap();
        let det = PcaDetector::train(&train, 2, SignificanceLevel::Five).unwrap();
        assert_eq!(det.score(&train.week_vector(0)), 0.0);
        let spike = WeekVector::new(vec![4.0; SLOTS_PER_WEEK]).unwrap();
        assert!(det.score(&spike) > 0.0);
    }
}
