//! Typed errors for detector training and the evaluation engine.
//!
//! The original harness asserted its way through bad inputs: a consumer
//! with too few weeks panicked a worker thread, and the panic surfaced as
//! an opaque `expect` in the thread-join path. Fleet-scale runs need the
//! failure *typed* — which consumer, what was missing — so callers can
//! skip, retry, or abort deliberately. Three layers:
//!
//! * [`ConfigError`] — the configuration itself is unusable; rejected at
//!   construction by [`crate::eval::EvalConfigBuilder`].
//! * [`TrainError`] — one consumer's artifact could not be trained.
//! * [`EvalError`] — a whole engine run failed (bad config, a training
//!   failure, or a worker panic).

use std::fmt;

use fdeta_arima::ArimaError;
use fdeta_tsdata::{RepairError, RepairPolicy, TsError};

/// An evaluation configuration that can never produce a valid run.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `train_weeks` must be at least 1.
    ZeroTrainWeeks,
    /// `attack_vectors` must be at least 1 (the worst-of-N protocol needs
    /// at least one draw).
    ZeroAttackVectors,
    /// `bins` must be at least 1 for the KLD histograms.
    ZeroBins,
    /// The interval-detector confidence must lie strictly inside (0, 1).
    InvalidConfidence {
        /// The rejected value.
        confidence: f64,
    },
    /// The robustness coverage threshold must lie inside `[0, 1]`.
    InvalidCoverage {
        /// The rejected value.
        coverage: f64,
    },
    /// The serving alert-tier percentiles conflict: they must be strictly
    /// increasing inside `(0, 1)` (`low < medium < high`), otherwise two
    /// tiers would claim the same score range and severity grading would
    /// be ambiguous.
    ConflictingAlertTiers {
        /// The rejected Low-tier percentile.
        low: f64,
        /// The rejected Medium-tier percentile.
        medium: f64,
        /// The rejected High-tier percentile.
        high: f64,
    },
    /// The meter-health escalation ladder is inconsistent: every rung must
    /// be at least 1 tick, suspects must escalate no later than quarantine
    /// (`suspect_after <= quarantine_after`), and probation must complete
    /// no later than full recovery (`probation_after <= heal_after`) —
    /// otherwise a meter could skip a state or get stuck between two.
    InvalidHealthLadder {
        /// Why the ladder is unusable.
        what: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroTrainWeeks => write!(f, "train_weeks must be >= 1"),
            ConfigError::ZeroAttackVectors => write!(f, "attack_vectors must be >= 1"),
            ConfigError::ZeroBins => write!(f, "bins must be >= 1"),
            ConfigError::InvalidConfidence { confidence } => {
                write!(f, "confidence {confidence} outside (0, 1)")
            }
            ConfigError::InvalidCoverage { coverage } => {
                write!(f, "min_coverage {coverage} outside [0, 1]")
            }
            ConfigError::ConflictingAlertTiers { low, medium, high } => {
                write!(
                    f,
                    "alert tier percentiles {low} / {medium} / {high} must be \
                     strictly increasing inside (0, 1)"
                )
            }
            ConfigError::InvalidHealthLadder { what } => {
                write!(f, "invalid meter-health ladder: {what}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Failure to train one consumer's detector artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The consumer's history is shorter than the protocol requires
    /// (`train_weeks + 2`: the training window, one attack week, one clean
    /// week).
    NotEnoughWeeks {
        /// The consumer's meter id.
        consumer: u32,
        /// Weeks the protocol requires.
        required: usize,
        /// Weeks actually available.
        available: usize,
    },
    /// A KLD histogram could not be built from the training window.
    Histogram {
        /// The consumer's meter id.
        consumer: u32,
        /// The underlying histogram error.
        source: TsError,
    },
    /// The PCA subspace could not be extracted (typically the window is
    /// shorter than `components + 2` weeks).
    Subspace {
        /// The consumer's meter id.
        consumer: u32,
        /// The underlying error.
        source: TsError,
    },
    /// The artifact has no fitted ARIMA model but the requested operation
    /// needs one.
    ModelUnavailable {
        /// The consumer's meter id.
        consumer: u32,
    },
    /// The artifact was trained without a PCA subspace
    /// (`pca_components == 0`) but a subspace detector was requested.
    SubspaceUnavailable {
        /// The consumer's meter id.
        consumer: u32,
    },
    /// The artifact carries no held-out test window (it was trained from a
    /// bare window, e.g. by the monitoring pipeline) but the requested
    /// operation needs attack/clean weeks.
    NoTestWindow {
        /// The consumer's meter id.
        consumer: u32,
    },
    /// A kept week's observation coverage fell below the robustness
    /// threshold — the repair policy would have had to invent too much of
    /// the week for its statistics to be trusted.
    LowCoverage {
        /// The consumer's meter id.
        consumer: u32,
        /// Original (pre-repair) index of the offending week.
        week: usize,
        /// The week's observed fraction, in `[0, 1]`.
        coverage: f64,
        /// The configured minimum.
        required: f64,
    },
    /// A repair policy could not densify the consumer's observed series.
    Repair {
        /// The consumer's meter id.
        consumer: u32,
        /// The policy that failed.
        policy: RepairPolicy,
        /// The underlying repair error.
        source: RepairError,
    },
    /// The fitted ARIMA model could not seed its forecaster from the
    /// training history (shorter than the differencing warmup).
    Seeding {
        /// The consumer's meter id.
        consumer: u32,
        /// The underlying model error.
        source: ArimaError,
    },
    /// A consumer's slab could not be read from a columnar corpus.
    Corpus {
        /// The consumer's meter id (0 when the id itself was unreadable).
        consumer: u32,
        /// The corpus layer's error, rendered.
        message: String,
    },
    /// A time-series layer error with no per-consumer attribution.
    Data(TsError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::NotEnoughWeeks {
                consumer,
                required,
                available,
            } => write!(
                f,
                "consumer {consumer}: {available} whole weeks, protocol needs {required}"
            ),
            TrainError::Histogram { consumer, source } => {
                write!(f, "consumer {consumer}: KLD training failed: {source}")
            }
            TrainError::Subspace { consumer, source } => {
                write!(f, "consumer {consumer}: PCA training failed: {source}")
            }
            TrainError::ModelUnavailable { consumer } => {
                write!(f, "consumer {consumer}: no fitted ARIMA model")
            }
            TrainError::SubspaceUnavailable { consumer } => {
                write!(
                    f,
                    "consumer {consumer}: artifact trained without a PCA subspace"
                )
            }
            TrainError::NoTestWindow { consumer } => {
                write!(
                    f,
                    "consumer {consumer}: artifact has no held-out test window"
                )
            }
            TrainError::LowCoverage {
                consumer,
                week,
                coverage,
                required,
            } => write!(
                f,
                "consumer {consumer}: week {week} coverage {coverage:.3} below required {required:.3}"
            ),
            TrainError::Repair {
                consumer,
                policy,
                source,
            } => write!(f, "consumer {consumer}: {policy} repair failed: {source}"),
            TrainError::Seeding { consumer, source } => {
                write!(f, "consumer {consumer}: forecaster seeding failed: {source}")
            }
            TrainError::Corpus { consumer, message } => {
                write!(f, "consumer {consumer}: slab corpus read failed: {message}")
            }
            TrainError::Data(source) => write!(f, "time-series error: {source}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Histogram { source, .. } | TrainError::Subspace { source, .. } => {
                Some(source)
            }
            TrainError::Repair { source, .. } => Some(source),
            TrainError::Data(source) => Some(source),
            _ => None,
        }
    }
}

impl From<TsError> for TrainError {
    fn from(source: TsError) -> Self {
        TrainError::Data(source)
    }
}

/// Failure of a whole engine run.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The configuration was rejected before any work started.
    Config(ConfigError),
    /// A consumer's artifact could not be trained; the run was aborted.
    Train(TrainError),
    /// A worker thread panicked (a bug, not an input problem — training
    /// and scoring failures surface as [`EvalError::Train`]).
    WorkerPanicked,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Config(e) => write!(f, "invalid configuration: {e}"),
            EvalError::Train(e) => write!(f, "training failed: {e}"),
            EvalError::WorkerPanicked => write!(f, "an evaluation worker panicked"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Config(e) => Some(e),
            EvalError::Train(e) => Some(e),
            EvalError::WorkerPanicked => None,
        }
    }
}

impl From<ConfigError> for EvalError {
    fn from(e: ConfigError) -> Self {
        EvalError::Config(e)
    }
}

impl From<TrainError> for EvalError {
    fn from(e: TrainError) -> Self {
        EvalError::Train(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_consumer() {
        let e = TrainError::NotEnoughWeeks {
            consumer: 1333,
            required: 62,
            available: 40,
        };
        let text = e.to_string();
        assert!(text.contains("1333"), "{text}");
        assert!(text.contains("62"), "{text}");
    }

    #[test]
    fn eval_error_chains_sources() {
        use std::error::Error;
        let e = EvalError::from(TrainError::ModelUnavailable { consumer: 7 });
        assert!(e.source().is_some());
        assert!(matches!(e, EvalError::Train(_)));
        let c = EvalError::from(ConfigError::ZeroTrainWeeks);
        assert!(matches!(c, EvalError::Config(_)));
    }

    #[test]
    fn ts_errors_lift_into_train_errors() {
        let e: TrainError = fdeta_tsdata::TsError::EmptyHistogram.into();
        assert!(matches!(e, TrainError::Data(_)));
    }

    #[test]
    fn robustness_errors_name_the_cause() {
        use std::error::Error;
        let low = TrainError::LowCoverage {
            consumer: 1007,
            week: 3,
            coverage: 0.25,
            required: 0.5,
        };
        let text = low.to_string();
        assert!(text.contains("1007"), "{text}");
        assert!(text.contains("week 3"), "{text}");

        let repair = TrainError::Repair {
            consumer: 1007,
            policy: RepairPolicy::HistoricalMedian,
            source: RepairError::ResidualGaps { missing: 12 },
        };
        assert!(repair.to_string().contains("historical-median"));
        assert!(repair.source().is_some(), "repair errors chain their cause");

        assert!(ConfigError::InvalidCoverage { coverage: 1.5 }
            .to_string()
            .contains("1.5"));
    }
}
