//! Atomic primitives, swappable for [loom] model checking.
//!
//! Compiled normally this re-exports `std::sync::atomic`; under
//! `RUSTFLAGS="--cfg loom"` it re-exports loom's instrumented versions so
//! `tests/loom_scheduler.rs` can exhaustively explore the interleavings of
//! the [`WorkQueue`](crate::engine::WorkQueue) claim/abort protocol.
//!
//! [loom]: https://docs.rs/loom

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicUsize};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicUsize};

pub(crate) use std::sync::atomic::Ordering;
