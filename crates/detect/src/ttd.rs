//! Time-to-detection (Section VII-D's first counter-argument).
//!
//! A multiple-reading detector need not wait a full week: the new week
//! vector starts filled with trusted readings from the training history
//! and attack readings replace them one slot at a time as they arrive. The
//! time-to-detection is the number of attack readings required before the
//! detector first flags the hybrid vector — the method the paper credits
//! to its companion PCA work (QEST 2015).

use fdeta_tsdata::week::WeekVector;
use fdeta_tsdata::SLOTS_PER_WEEK;

use crate::detector::Detector;

/// Returns the 1-based count of attack readings after which `detector`
/// first flags the hybrid week, or `None` if the full attack week goes
/// undetected.
///
/// `trusted` supplies the historical readings that pad the un-arrived
/// tail; the paper takes it from the training set.
pub fn time_to_detection(
    detector: &dyn Detector,
    trusted: &WeekVector,
    attack: &WeekVector,
) -> Option<usize> {
    let mut hybrid = trusted.clone();
    for k in 0..SLOTS_PER_WEEK {
        let slot = fdeta_tsdata::series::SlotOfWeek::new(k).expect("k < 336");
        hybrid
            .set(slot, attack.as_slice()[k])
            .expect("attack readings are valid demands");
        if detector.is_anomalous(&hybrid) {
            return Some(k + 1);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Verdict;

    /// Flags when the week's total exceeds a threshold — a stand-in with
    /// predictable time-to-detection.
    struct TotalThreshold(f64);
    impl Detector for TotalThreshold {
        fn name(&self) -> &'static str {
            "total-threshold"
        }
        fn assess(&self, week: &WeekVector) -> Verdict {
            let total: f64 = week.as_slice().iter().sum();
            if total > self.0 {
                Verdict::flagged(total)
            } else {
                Verdict::clean(total)
            }
        }
    }

    #[test]
    fn detection_happens_partway_through_the_week() {
        let trusted = WeekVector::new(vec![1.0; SLOTS_PER_WEEK]).unwrap();
        let attack = WeekVector::new(vec![2.0; SLOTS_PER_WEEK]).unwrap();
        // Trusted total = 336; each attack reading adds 1. Threshold 400
        // ⇒ flags strictly after 64 replacements ⇒ detected at k = 65.
        let det = TotalThreshold(400.0);
        assert_eq!(time_to_detection(&det, &trusted, &attack), Some(65));
    }

    #[test]
    fn immediate_detection_at_first_reading() {
        let trusted = WeekVector::new(vec![1.0; SLOTS_PER_WEEK]).unwrap();
        let mut attack_values = vec![1.0; SLOTS_PER_WEEK];
        attack_values[0] = 1000.0;
        let attack = WeekVector::new(attack_values).unwrap();
        let det = TotalThreshold(400.0);
        assert_eq!(time_to_detection(&det, &trusted, &attack), Some(1));
    }

    #[test]
    fn undetectable_attack_returns_none() {
        let trusted = WeekVector::new(vec![1.0; SLOTS_PER_WEEK]).unwrap();
        let attack = trusted.clone();
        let det = TotalThreshold(400.0);
        assert_eq!(time_to_detection(&det, &trusted, &attack), None);
    }
}
