//! The Kullback-Leibler divergence detector (Section VII-D) and its
//! price-conditioned variant (Section VIII-F.3).
//!
//! Besides the paper's dense-week scoring, both detectors can score
//! **partially observed** weeks: the week's histogram is built from the
//! observed slots only, so its relative frequencies renormalise over the
//! observed mass. A band (or week) with *zero* observed slots has no
//! distribution at all — naive renormalisation would divide zero counts by
//! a zero total — so masked scoring returns [`KldError::EmptyBand`] instead
//! of a NaN or a silent, vacuous `0.0` divergence.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use fdeta_gridsim::pricing::TouPlan;
use fdeta_tsdata::bands::BandMap;
use fdeta_tsdata::hist::{BinEdges, HistScratch, Histogram};
use fdeta_tsdata::kl::kl_divergence_smoothed_counts;
use fdeta_tsdata::stats::Quantile;
use fdeta_tsdata::week::{WeekMatrix, WeekVector};
use fdeta_tsdata::TsError;

use crate::detector::{Detector, Verdict};

thread_local! {
    /// Per-thread scoring scratch shared by every KLD detector instance.
    ///
    /// The eval loop scores tens of thousands of weeks per thread; a fresh
    /// count vector (plus a gathered-value vector on the masked/banded
    /// paths) per call made allocation the dominant scoring cost. One
    /// scratch per thread amortises that to zero. The scratch is only
    /// borrowed for the duration of a single histogram+divergence
    /// computation and never across a call into caller code, so the
    /// `RefCell` borrow cannot be re-entered.
    static SCORE_SCRATCH: RefCell<HistScratch> = RefCell::new(HistScratch::new());
}

/// The detector's upper-tail significance level: 5% thresholds at the 95th
/// percentile of the training KLD distribution, 10% at the 90th.
///
/// The 10% setting is the more aggressive boundary — it catches more
/// attacks but risks more false positives, the trade-off Section VIII-F.1
/// dissects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignificanceLevel {
    /// α = 5% (95th percentile threshold).
    Five,
    /// α = 10% (90th percentile threshold).
    Ten,
}

impl SignificanceLevel {
    /// The percentile of the training KLD distribution used as threshold.
    pub fn percentile(self) -> f64 {
        match self {
            SignificanceLevel::Five => 0.95,
            SignificanceLevel::Ten => 0.90,
        }
    }
}

/// The paper's default bin count for the `X` histogram.
pub const DEFAULT_BINS: usize = 10;

/// Errors from scoring partially observed weeks.
#[derive(Debug, Clone, PartialEq)]
pub enum KldError {
    /// Every slot of the band (band `0` for the unconditioned detector)
    /// was unobserved: the week carries no mass in that band, so its
    /// divergence is undefined rather than zero.
    EmptyBand {
        /// Index of the empty band.
        band: usize,
    },
    /// An underlying histogram error (mask length mismatch, corrupted
    /// artifact with incompatible bins, ...).
    Ts(TsError),
}

impl fmt::Display for KldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KldError::EmptyBand { band } => write!(
                f,
                "band {band} has no observed readings: divergence is undefined"
            ),
            KldError::Ts(source) => write!(f, "{source}"),
        }
    }
}

impl std::error::Error for KldError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KldError::EmptyBand { .. } => None,
            KldError::Ts(source) => Some(source),
        }
    }
}

impl From<TsError> for KldError {
    fn from(source: TsError) -> Self {
        KldError::Ts(source)
    }
}

/// The trained, threshold-independent artifacts of a [`KldDetector`]:
/// edges, baseline histogram, and sorted training divergences. Shared via
/// `Arc` so re-thresholded copies (ROC/alpha sweeps build dozens per
/// consumer) reference one allocation instead of deep-copying histograms.
#[derive(Debug, Clone, PartialEq)]
struct KldCore {
    edges: BinEdges,
    baseline: Histogram,
    /// Sorted training `K_i` divergences.
    training_k: Vec<f64>,
    /// Whether `edges` equals the baseline's own edges, computed once at
    /// construction: the core is immutable behind its `Arc`, so the
    /// per-score artifact guard reduces to this flag instead of an
    /// edge-vector comparison on every call.
    edges_match: bool,
}

impl KldCore {
    fn new(edges: BinEdges, baseline: Histogram, training_k: Vec<f64>) -> Self {
        let edges_match = edges == *baseline.edges();
        Self {
            edges,
            baseline,
            training_k,
            edges_match,
        }
    }

    /// Guards the count-based divergence against a corrupted or
    /// hand-edited deserialized artifact whose baseline was counted with
    /// different edges; detectors built by training share edges by
    /// construction.
    fn check_artifact(&self) -> Result<(), TsError> {
        if !self.edges_match {
            return Err(TsError::MismatchedBins {
                left: self.edges.bins(),
                right: self.baseline.bins(),
            });
        }
        Ok(())
    }
}

/// The KLD detector: histogram the training matrix `X` with `B` bins to
/// fix edges; compute `K_i = KL(X_i ‖ X)` for each training week; flag a
/// new week whose divergence exceeds the chosen percentile of the `K_i`
/// distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(from = "KldDetectorRepr", into = "KldDetectorRepr")]
pub struct KldDetector {
    core: Arc<KldCore>,
    threshold: f64,
    level: Option<SignificanceLevel>,
    percentile: f64,
}

/// Serialized shape of [`KldDetector`] — the flat field layout the
/// detector had before its trained core moved behind an `Arc`, so
/// persisted artifacts are independent of the in-memory sharing scheme.
/// Also the exchange type the artifact store reads and writes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct KldDetectorRepr {
    pub(crate) edges: BinEdges,
    pub(crate) baseline: Histogram,
    pub(crate) training_k: Vec<f64>,
    pub(crate) threshold: f64,
    pub(crate) level: Option<SignificanceLevel>,
    pub(crate) percentile: f64,
}

impl From<KldDetectorRepr> for KldDetector {
    fn from(repr: KldDetectorRepr) -> Self {
        Self {
            core: Arc::new(KldCore::new(repr.edges, repr.baseline, repr.training_k)),
            threshold: repr.threshold,
            level: repr.level,
            percentile: repr.percentile,
        }
    }
}

impl From<KldDetector> for KldDetectorRepr {
    fn from(detector: KldDetector) -> Self {
        let core = Arc::unwrap_or_clone(detector.core);
        Self {
            edges: core.edges,
            baseline: core.baseline,
            training_k: core.training_k,
            threshold: detector.threshold,
            level: detector.level,
            percentile: detector.percentile,
        }
    }
}

impl KldDetector {
    /// Trains the detector on the matrix `X`.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::EmptyHistogram`] for `bins == 0` and propagates
    /// histogram construction errors.
    pub fn train(
        train: &WeekMatrix,
        bins: usize,
        level: SignificanceLevel,
    ) -> Result<Self, TsError> {
        let mut detector = Self::train_at_percentile(train, bins, level.percentile())?;
        detector.level = Some(level);
        Ok(detector)
    }

    /// [`KldDetector::train`] with a caller-provided scratch instead of the
    /// thread-local one; see [`KldDetector::score_with`] for when that
    /// matters. Bit-identical to [`KldDetector::train`].
    ///
    /// # Errors
    ///
    /// As [`KldDetector::train`].
    pub fn train_with(
        train: &WeekMatrix,
        bins: usize,
        level: SignificanceLevel,
        scratch: &mut HistScratch,
    ) -> Result<Self, TsError> {
        let mut detector =
            Self::train_at_percentile_with(train, bins, level.percentile(), scratch)?;
        detector.level = Some(level);
        Ok(detector)
    }

    /// Trains with an arbitrary threshold percentile (the significance
    /// level is `1 − percentile`); used by the ablation sweeps.
    ///
    /// # Errors
    ///
    /// As [`KldDetector::train`].
    ///
    /// # Panics
    ///
    /// Panics if `percentile` is outside `[0, 1]`.
    pub fn train_at_percentile(
        train: &WeekMatrix,
        bins: usize,
        percentile: f64,
    ) -> Result<Self, TsError> {
        SCORE_SCRATCH.with(|cell| {
            Self::train_at_percentile_with(train, bins, percentile, &mut cell.borrow_mut())
        })
    }

    /// [`KldDetector::train_at_percentile`] with a caller-provided scratch:
    /// the per-week training histograms are counted into the scratch's
    /// reused buffers instead of allocating a fresh histogram (and cloning
    /// the edges) per training week. Bit-identical to
    /// [`KldDetector::train_at_percentile`] — the counts-based divergence
    /// reads the same counts the allocating path would produce.
    ///
    /// # Errors
    ///
    /// As [`KldDetector::train_at_percentile`].
    ///
    /// # Panics
    ///
    /// Panics if `percentile` is outside `[0, 1]`.
    pub fn train_at_percentile_with(
        train: &WeekMatrix,
        bins: usize,
        percentile: f64,
        scratch: &mut HistScratch,
    ) -> Result<Self, TsError> {
        let edges = BinEdges::from_sample(train.flat(), bins)?;
        let baseline = edges.histogram(train.flat());
        let mut training_k = Vec::with_capacity(train.weeks());
        for week in train.iter_weeks() {
            edges.histogram_into(week, scratch);
            training_k.push(kl_divergence_smoothed_counts(
                scratch.counts(),
                scratch.total(),
                baseline.counts(),
                baseline.total(),
            )?);
        }
        training_k.sort_by(f64::total_cmp);
        let threshold = Quantile::of_sorted(&training_k, percentile);
        Ok(Self {
            core: Arc::new(KldCore::new(edges, baseline, training_k)),
            threshold,
            level: None,
            percentile,
        })
    }

    /// The threshold this detector would use at an arbitrary percentile —
    /// a quantile lookup on the cached sorted training divergences, with
    /// no retraining. The scores themselves are threshold-independent, so
    /// `score(w) > threshold_at(p)` is exactly what a detector freshly
    /// trained at `p` would decide.
    ///
    /// # Panics
    ///
    /// Panics if `percentile` is outside `[0, 1]`.
    pub fn threshold_at(&self, percentile: f64) -> f64 {
        Quantile::of_sorted(&self.core.training_k, percentile)
    }

    /// The number of training weeks behind the threshold quantiles.
    pub fn training_weeks(&self) -> usize {
        self.core.training_k.len()
    }

    /// A copy of this detector re-thresholded at an arbitrary percentile;
    /// identical to [`KldDetector::train_at_percentile`] on the same
    /// window but without recomputing edges, baseline, or training scores.
    /// The trained core (edges, baseline, training divergences) is shared
    /// with `self` by reference — re-sweeping α across many percentiles
    /// costs one `Arc` bump per copy, not a deep copy of the histograms.
    ///
    /// # Panics
    ///
    /// Panics if `percentile` is outside `[0, 1]`.
    pub fn at_percentile(&self, percentile: f64) -> Self {
        Self {
            core: Arc::clone(&self.core),
            threshold: self.threshold_at(percentile),
            level: None,
            percentile,
        }
    }

    /// A copy of this detector re-thresholded at a named significance
    /// level; identical to [`KldDetector::train`] at that level.
    pub fn at_level(&self, level: SignificanceLevel) -> Self {
        let mut detector = self.at_percentile(level.percentile());
        detector.level = Some(level);
        detector
    }

    /// The divergence `K` of one week against the baseline, in bits.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::MismatchedBins`] if the week's histogram and
    /// the baseline disagree in bin count — impossible for a detector built
    /// by [`KldDetector::train`], but reachable through a detector
    /// deserialized from a corrupted or hand-edited artifact.
    pub fn score(&self, week: &WeekVector) -> Result<f64, TsError> {
        SCORE_SCRATCH.with(|cell| self.score_with(week, &mut cell.borrow_mut()))
    }

    /// [`KldDetector::score`] with a caller-provided scratch instead of
    /// the thread-local one — the `_with` suffix is this crate's
    /// convention for scratch-explicit variants.
    ///
    /// The thread-local lookup and `RefCell` borrow cost a few dozen
    /// nanoseconds per call — irrelevant for occasional scoring, measurable
    /// in a fleet loop that scores hundreds of thousands of weeks. Hot
    /// loops that already own a [`HistScratch`] should pass it here.
    ///
    /// # Errors
    ///
    /// Exactly [`KldDetector::score`]'s.
    pub fn score_with(&self, week: &WeekVector, scratch: &mut HistScratch) -> Result<f64, TsError> {
        self.core.check_artifact()?;
        self.core.edges.histogram_into(week.as_slice(), scratch);
        kl_divergence_smoothed_counts(
            scratch.counts(),
            scratch.total(),
            self.core.baseline.counts(),
            self.core.baseline.total(),
        )
    }

    /// The divergence of a *partially observed* week: only slots whose
    /// mask entry is `true` are histogrammed, so the week's relative
    /// frequencies renormalise over the observed mass (the histogram total
    /// is the observed count, not 336).
    ///
    /// # Errors
    ///
    /// Returns [`KldError::EmptyBand`] if no slot is observed (the
    /// distribution is undefined — a naive 0/0 renormalisation would yield
    /// NaN), [`TsError::MaskLengthMismatch`] via [`KldError::Ts`] if the
    /// mask length differs from the week length, and propagates
    /// [`TsError::MismatchedBins`] for corrupted deserialized artifacts.
    pub fn score_masked(&self, week: &WeekVector, mask: &[bool]) -> Result<f64, KldError> {
        let values = week.as_slice();
        if values.len() != mask.len() {
            return Err(KldError::Ts(TsError::MaskLengthMismatch {
                values: values.len(),
                mask: mask.len(),
            }));
        }
        self.core.check_artifact()?;
        SCORE_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let gather = scratch.gather_mut();
            gather.extend(
                values
                    .iter()
                    .zip(mask)
                    .filter_map(|(&v, &m)| m.then_some(v)),
            );
            if gather.is_empty() {
                return Err(KldError::EmptyBand { band: 0 });
            }
            self.core.edges.histogram_gathered(scratch);
            kl_divergence_smoothed_counts(
                scratch.counts(),
                scratch.total(),
                self.core.baseline.counts(),
                self.core.baseline.total(),
            )
            .map_err(KldError::Ts)
        })
    }

    /// The detection threshold (percentile of the training KLD
    /// distribution).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The sorted training `K_i` values (e.g. for plotting Fig. 4b).
    pub fn training_divergences(&self) -> &[f64] {
        &self.core.training_k
    }

    /// The baseline histogram (Fig. 4a's `X` distribution).
    pub fn baseline(&self) -> &Histogram {
        &self.core.baseline
    }

    /// The shared bin edges.
    pub fn edges(&self) -> &BinEdges {
        &self.core.edges
    }

    /// Whether `self` and `other` reference the same trained core
    /// allocation (used by tests to assert that re-thresholding shares
    /// rather than deep-copies the trained artifacts).
    #[cfg(test)]
    fn shares_core_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }

    /// The configured significance level (`None` for a custom percentile
    /// from [`KldDetector::train_at_percentile`]).
    pub fn level(&self) -> Option<SignificanceLevel> {
        self.level
    }

    /// The threshold percentile in use.
    pub fn percentile(&self) -> f64 {
        self.percentile
    }
}

impl Detector for KldDetector {
    fn name(&self) -> &'static str {
        match self.level {
            Some(SignificanceLevel::Five) => "kld@5%",
            Some(SignificanceLevel::Ten) => "kld@10%",
            None => "kld@custom",
        }
    }

    fn assess(&self, week: &WeekVector) -> Verdict {
        let score = self
            .score(week)
            // lint:allow(no-panic-in-lib, trained detectors share edges by construction; score covers untrusted artifacts)
            .expect("same edges by construction");
        if score > self.threshold {
            Verdict::flagged(score)
        } else {
            Verdict::clean(score)
        }
    }
}

/// The price-conditioned KLD detector: one `(edges, baseline, thresholds)`
/// triple per tariff window. A week is flagged when *any* window's
/// divergence exceeds that window's threshold.
///
/// The Optimal Swap attack preserves the *whole-week* histogram, blinding
/// the unconditioned detector; splitting by price restores the signal
/// because swapped readings change which tariff window they occupy. The
/// paper extends the same idea to RTP (one distribution per price level),
/// which is why the constructor takes an arbitrary number of windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(
    try_from = "ConditionedKldDetectorRepr",
    into = "ConditionedKldDetectorRepr"
)]
pub struct ConditionedKldDetector {
    bands: Vec<Band>,
    /// Precomputed slot→band partition: which slots each band histograms,
    /// built once at training time so scoring gathers by index with no
    /// per-week membership checks.
    map: BandMap,
    level: SignificanceLevel,
}

#[derive(Debug, Clone, PartialEq)]
struct Band {
    core: Arc<KldCore>,
    threshold: f64,
}

/// Borrowed view of one trained band of a [`ConditionedKldDetector`]
/// (see [`ConditionedKldDetector::band_view`]).
#[derive(Debug, Clone, Copy)]
pub struct BandView<'a> {
    /// Which slots of the week (0..336) this band histograms.
    pub slots: &'a [usize],
    /// The band's shared bin edges.
    pub edges: &'a BinEdges,
    /// The band's training baseline histogram.
    pub baseline: &'a Histogram,
    /// The band's divergence threshold at the configured level.
    pub threshold: f64,
}

/// Serialized shape of [`ConditionedKldDetector`] — the pre-`Arc` flat
/// layout with explicit per-band slot lists, so persisted artifacts are
/// independent of the in-memory sharing scheme. Also the exchange type the
/// artifact store reads and writes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct ConditionedKldDetectorRepr {
    pub(crate) bands: Vec<BandRepr>,
    pub(crate) level: SignificanceLevel,
}

/// One band of [`ConditionedKldDetectorRepr`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct BandRepr {
    /// Which slots of the week (0..336) belong to this band.
    pub(crate) slots: Vec<usize>,
    pub(crate) edges: BinEdges,
    pub(crate) baseline: Histogram,
    /// Sorted training divergences of this band (kept so the band can be
    /// re-thresholded at any level without retraining).
    pub(crate) training_k: Vec<f64>,
    pub(crate) threshold: f64,
}

impl TryFrom<ConditionedKldDetectorRepr> for ConditionedKldDetector {
    type Error = TsError;

    fn try_from(repr: ConditionedKldDetectorRepr) -> Result<Self, TsError> {
        let slot_lists: Vec<Vec<usize>> = repr.bands.iter().map(|b| b.slots.clone()).collect();
        let map = BandMap::from_bands(&slot_lists, fdeta_tsdata::SLOTS_PER_WEEK)?;
        let bands = repr
            .bands
            .into_iter()
            .map(|band| Band {
                core: Arc::new(KldCore::new(band.edges, band.baseline, band.training_k)),
                threshold: band.threshold,
            })
            .collect();
        Ok(Self {
            bands,
            map,
            level: repr.level,
        })
    }
}

impl From<ConditionedKldDetector> for ConditionedKldDetectorRepr {
    fn from(detector: ConditionedKldDetector) -> Self {
        let bands = detector
            .bands
            .into_iter()
            .enumerate()
            .map(|(index, band)| {
                let core = Arc::unwrap_or_clone(band.core);
                BandRepr {
                    slots: detector.map.band_slots(index).to_vec(),
                    edges: core.edges,
                    baseline: core.baseline,
                    training_k: core.training_k,
                    threshold: band.threshold,
                }
            })
            .collect();
        Self {
            bands,
            level: detector.level,
        }
    }
}

impl ConditionedKldDetector {
    /// Trains a two-band (peak / off-peak) detector from a TOU plan.
    ///
    /// # Errors
    ///
    /// Propagates histogram construction errors.
    pub fn train_tou(
        train: &WeekMatrix,
        plan: &TouPlan,
        bins: usize,
        level: SignificanceLevel,
    ) -> Result<Self, TsError> {
        let mut peak_slots = Vec::new();
        let mut off_slots = Vec::new();
        for slot in 0..fdeta_tsdata::SLOTS_PER_WEEK {
            if plan.is_peak(slot) {
                peak_slots.push(slot);
            } else {
                off_slots.push(slot);
            }
        }
        Self::train_with_bands(train, vec![off_slots, peak_slots], bins, level)
    }

    /// [`ConditionedKldDetector::train_tou`] with a caller-provided scratch
    /// instead of the thread-local one; see
    /// [`KldDetector::score_with`] for when that matters.
    ///
    /// # Errors
    ///
    /// As [`ConditionedKldDetector::train_tou`].
    pub fn train_tou_with(
        train: &WeekMatrix,
        plan: &TouPlan,
        bins: usize,
        level: SignificanceLevel,
        scratch: &mut HistScratch,
    ) -> Result<Self, TsError> {
        let mut peak_slots = Vec::new();
        let mut off_slots = Vec::new();
        for slot in 0..fdeta_tsdata::SLOTS_PER_WEEK {
            if plan.is_peak(slot) {
                peak_slots.push(slot);
            } else {
                off_slots.push(slot);
            }
        }
        Self::train_with_bands_with(train, vec![off_slots, peak_slots], bins, level, scratch)
    }

    /// Trains with explicit slot bands (e.g. one per RTP price level).
    ///
    /// # Errors
    ///
    /// Returns [`TsError::EmptyHistogram`] if any band is empty,
    /// [`TsError::SlotOutOfRange`] / [`TsError::DuplicateSlot`] if the
    /// bands do not form a partition of (a subset of) the week's slots,
    /// and propagates histogram construction errors.
    pub fn train_with_bands(
        train: &WeekMatrix,
        band_slots: Vec<Vec<usize>>,
        bins: usize,
        level: SignificanceLevel,
    ) -> Result<Self, TsError> {
        SCORE_SCRATCH.with(|cell| {
            Self::train_with_bands_with(train, band_slots, bins, level, &mut cell.borrow_mut())
        })
    }

    /// [`ConditionedKldDetector::train_with_bands`] with a caller-provided
    /// scratch: the band sample and the per-week band values are gathered
    /// into the scratch's reused buffers instead of allocating a fresh
    /// vector (and a fresh histogram with cloned edges) per training week
    /// per band. Bit-identical to
    /// [`ConditionedKldDetector::train_with_bands`] — the gathered values
    /// and the counts-based divergence reproduce the allocating path's
    /// arithmetic exactly.
    ///
    /// # Errors
    ///
    /// As [`ConditionedKldDetector::train_with_bands`].
    pub fn train_with_bands_with(
        train: &WeekMatrix,
        band_slots: Vec<Vec<usize>>,
        bins: usize,
        level: SignificanceLevel,
        scratch: &mut HistScratch,
    ) -> Result<Self, TsError> {
        let map = BandMap::from_bands(&band_slots, fdeta_tsdata::SLOTS_PER_WEEK)?;
        let mut bands = Vec::with_capacity(band_slots.len());
        for slots in &band_slots {
            // Collect the band's values across all training weeks.
            let sample = scratch.gather_mut();
            sample.reserve(slots.len() * train.weeks());
            for week in train.iter_weeks() {
                sample.extend(slots.iter().map(|&s| week[s]));
            }
            let edges = BinEdges::from_sample(scratch.gathered(), bins)?;
            let baseline = edges.histogram(scratch.gathered());
            let mut training_k = Vec::with_capacity(train.weeks());
            for week in train.iter_weeks() {
                let values = scratch.gather_mut();
                values.extend(slots.iter().map(|&s| week[s]));
                edges.histogram_gathered(scratch);
                training_k.push(kl_divergence_smoothed_counts(
                    scratch.counts(),
                    scratch.total(),
                    baseline.counts(),
                    baseline.total(),
                )?);
            }
            training_k.sort_by(f64::total_cmp);
            let threshold = Quantile::of_sorted(&training_k, level.percentile());
            bands.push(Band {
                core: Arc::new(KldCore::new(edges, baseline, training_k)),
                threshold,
            });
        }
        Ok(Self { bands, map, level })
    }

    /// Scores every band of `week` against its baseline using the shared
    /// thread-local scratch, calling `visit(score, threshold)` per band in
    /// band order. The single allocation-free engine behind the dense and
    /// masked band scoring paths: band values are gathered through the
    /// precomputed [`BandMap`] into the scratch's reused buffers.
    ///
    /// With `mask = Some(..)`, only observed slots are gathered and a band
    /// with zero observed slots is a [`KldError::EmptyBand`]; with
    /// `mask = None`, every slot of the band is gathered.
    pub fn visit_band_scores<F>(
        &self,
        week: &WeekVector,
        mask: Option<&[bool]>,
        visit: F,
    ) -> Result<(), KldError>
    where
        F: FnMut(f64, f64),
    {
        SCORE_SCRATCH
            .with(|cell| self.visit_band_scores_with(week, mask, &mut cell.borrow_mut(), visit))
    }

    /// [`ConditionedKldDetector::visit_band_scores`] with a
    /// caller-provided scratch instead of the thread-local one; see
    /// [`KldDetector::score_with`] for when that matters.
    ///
    /// # Errors
    ///
    /// Exactly [`ConditionedKldDetector::visit_band_scores`]'s.
    pub fn visit_band_scores_with<F>(
        &self,
        week: &WeekVector,
        mask: Option<&[bool]>,
        scratch: &mut HistScratch,
        mut visit: F,
    ) -> Result<(), KldError>
    where
        F: FnMut(f64, f64),
    {
        let values = week.as_slice();
        if let Some(mask) = mask {
            if values.len() != mask.len() {
                return Err(KldError::Ts(TsError::MaskLengthMismatch {
                    values: values.len(),
                    mask: mask.len(),
                }));
            }
        }
        for (index, band) in self.bands.iter().enumerate() {
            band.core.check_artifact()?;
            match mask {
                Some(mask) => {
                    self.map
                        .gather_masked_into(index, values, mask, scratch.gather_mut());
                    if scratch.gathered().is_empty() {
                        return Err(KldError::EmptyBand { band: index });
                    }
                }
                None => self.map.gather_into(index, values, scratch.gather_mut()),
            }
            band.core.edges.histogram_gathered(scratch);
            let score = kl_divergence_smoothed_counts(
                scratch.counts(),
                scratch.total(),
                band.core.baseline.counts(),
                band.core.baseline.total(),
            )
            .map_err(KldError::Ts)?;
            visit(score, band.threshold);
        }
        Ok(())
    }

    /// Per-band `(score, threshold)` pairs for one week.
    ///
    /// # Errors
    ///
    /// Returns [`TsError::MismatchedBins`] if a band's histogram and
    /// its baseline disagree in bin count — impossible for a trained
    /// detector, reachable through a corrupted deserialized artifact.
    pub fn band_scores(&self, week: &WeekVector) -> Result<Vec<(f64, f64)>, TsError> {
        // lint:allow(vec-alloc-in-score-path, convenience wrapper result; hot loops use visit_band_scores_with)
        let mut scores = Vec::with_capacity(self.bands.len());
        self.visit_band_scores(week, None, |score, threshold| {
            scores.push((score, threshold));
        })
        .map_err(|err| match err {
            KldError::Ts(source) => source,
            // The dense path never reports an empty band: trained bands
            // are non-empty by construction and every slot is "observed".
            KldError::EmptyBand { .. } => TsError::EmptyHistogram,
        })?;
        Ok(scores)
    }

    /// Per-band `(score, threshold)` pairs for a *partially observed* week:
    /// each band histograms only its observed slots, renormalising over the
    /// band's observed mass.
    ///
    /// # Errors
    ///
    /// Returns [`KldError::EmptyBand`] naming the first band with zero
    /// observed slots (a comms gap can swallow an entire TOU period — its
    /// divergence is undefined, not zero), and [`KldError::Ts`] for a mask
    /// length mismatch or a corrupted deserialized artifact.
    pub fn band_scores_masked(
        &self,
        week: &WeekVector,
        mask: &[bool],
    ) -> Result<Vec<(f64, f64)>, KldError> {
        // lint:allow(vec-alloc-in-score-path, convenience wrapper result; hot loops use visit_band_scores_with)
        let mut scores = Vec::with_capacity(self.bands.len());
        self.visit_band_scores(week, Some(mask), |score, threshold| {
            scores.push((score, threshold));
        })?;
        Ok(scores)
    }

    /// The configured significance level.
    pub fn level(&self) -> SignificanceLevel {
        self.level
    }

    /// Number of pricing bands.
    pub fn band_count(&self) -> usize {
        self.bands.len()
    }

    /// The band owning week slot `slot`, or `None` for an unclaimed slot
    /// (the streaming per-tick router into band state).
    #[inline]
    pub fn band_of(&self, slot: usize) -> Option<usize> {
        self.map.band_of(slot)
    }

    /// The threshold band `band` would use at an arbitrary percentile — a
    /// quantile lookup on the band's cached sorted training divergences,
    /// with no retraining (the per-band analogue of
    /// [`KldDetector::threshold_at`], used to grade alert severity).
    ///
    /// # Panics
    ///
    /// Panics if `band >= self.band_count()` or `percentile` is outside
    /// `[0, 1]`.
    pub fn band_threshold_at(&self, band: usize, percentile: f64) -> f64 {
        Quantile::of_sorted(&self.bands[band].core.training_k, percentile)
    }

    /// Read-only view of one trained band: its slot list, shared edges,
    /// training baseline, and threshold. Diagnostic / benchmarking access —
    /// scoring should go through [`ConditionedKldDetector::band_scores`].
    ///
    /// # Panics
    ///
    /// Panics if `band >= self.band_count()`.
    pub fn band_view(&self, band: usize) -> BandView<'_> {
        BandView {
            slots: self.map.band_slots(band),
            edges: &self.bands[band].core.edges,
            baseline: &self.bands[band].core.baseline,
            threshold: self.bands[band].threshold,
        }
    }

    /// A copy of this detector with every band re-thresholded at `level`
    /// from its cached training divergences; identical to
    /// [`ConditionedKldDetector::train_tou`] /
    /// [`ConditionedKldDetector::train_with_bands`] at that level. Each
    /// band's trained core is shared with `self` by reference — no
    /// histograms or slot maps are deep-copied.
    pub fn at_level(&self, level: SignificanceLevel) -> Self {
        Self {
            bands: self
                .bands
                .iter()
                .map(|band| Band {
                    core: Arc::clone(&band.core),
                    threshold: Quantile::of_sorted(&band.core.training_k, level.percentile()),
                })
                .collect(),
            map: self.map.clone(),
            level,
        }
    }
}

impl Detector for ConditionedKldDetector {
    fn name(&self) -> &'static str {
        match self.level {
            SignificanceLevel::Five => "kld-cond@5%",
            SignificanceLevel::Ten => "kld-cond@10%",
        }
    }

    fn assess(&self, week: &WeekVector) -> Verdict {
        let mut worst_excess = f64::NEG_INFINITY;
        let mut max_score = 0.0f64;
        self.visit_band_scores(week, None, |score, threshold| {
            worst_excess = worst_excess.max(score - threshold);
            max_score = max_score.max(score);
        })
        // lint:allow(no-panic-in-lib, trained bands share edges by construction; band_scores covers untrusted artifacts)
        .expect("same edges by construction");
        if worst_excess > 0.0 {
            Verdict::flagged(max_score)
        } else {
            Verdict::clean(max_score)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdeta_attacks::optimal_swap;
    use fdeta_tsdata::{SLOTS_PER_DAY, SLOTS_PER_WEEK};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Evening-peaked weekly pattern with noise.
    fn training(weeks: usize, seed: u64) -> WeekMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..weeks * SLOTS_PER_WEEK)
            .map(|i| {
                let slot = i % SLOTS_PER_DAY;
                let base: f64 = if (36..46).contains(&slot) { 2.5 } else { 0.5 };
                (base * rng.gen_range(0.8..1.2)).max(0.0)
            })
            .collect();
        WeekMatrix::from_flat(values).unwrap()
    }

    #[test]
    fn training_weeks_rarely_flagged_at_configured_rate() {
        let train = training(40, 1);
        let det = KldDetector::train(&train, DEFAULT_BINS, SignificanceLevel::Ten).unwrap();
        let flagged = (0..train.weeks())
            .filter(|&w| det.is_anomalous(&train.week_vector(w)))
            .count();
        // By construction ~10% of training weeks sit above the 90th
        // percentile; allow slack for ties.
        assert!(
            flagged <= train.weeks() / 5,
            "{flagged} of {} flagged",
            train.weeks()
        );
    }

    #[test]
    fn shifted_distribution_is_flagged() {
        let train = training(30, 2);
        let det = KldDetector::train(&train, DEFAULT_BINS, SignificanceLevel::Five).unwrap();
        // A week at triple the usual level: its histogram escapes the
        // training support.
        let inflated: Vec<f64> = train
            .week_vector(0)
            .as_slice()
            .iter()
            .map(|v| v * 3.0)
            .collect();
        let week = WeekVector::new(inflated).unwrap();
        let verdict = det.assess(&week);
        assert!(verdict.anomalous);
        assert!(verdict.score > det.threshold());
    }

    #[test]
    fn five_percent_threshold_is_no_lower_than_ten() {
        let train = training(30, 3);
        let five = KldDetector::train(&train, DEFAULT_BINS, SignificanceLevel::Five).unwrap();
        let ten = KldDetector::train(&train, DEFAULT_BINS, SignificanceLevel::Ten).unwrap();
        assert!(five.threshold() >= ten.threshold());
        assert_eq!(five.name(), "kld@5%");
        assert_eq!(ten.name(), "kld@10%");
    }

    #[test]
    fn unconditioned_detector_is_blind_to_optimal_swap() {
        // The paper's negative result, reproduced: swap preserves the
        // histogram, so the plain KLD score of the swapped week equals the
        // score of the original week exactly.
        let train = training(30, 4);
        let det = KldDetector::train(&train, DEFAULT_BINS, SignificanceLevel::Ten).unwrap();
        let actual = train.week_vector(29);
        let attack = optimal_swap(&actual, &TouPlan::ireland_nightsaver(), 0);
        assert_eq!(
            det.score(&attack.reported).unwrap(),
            det.score(&attack.actual).unwrap()
        );
    }

    #[test]
    fn conditioned_detector_catches_optimal_swap() {
        let train = training(30, 5);
        let det = ConditionedKldDetector::train_tou(
            &train,
            &TouPlan::ireland_nightsaver(),
            DEFAULT_BINS,
            SignificanceLevel::Ten,
        )
        .unwrap();
        // ~10% of training weeks legitimately sit above the 90th-percentile
        // threshold; evaluate on weeks the detector considers clean.
        let clean_weeks: Vec<usize> = (0..train.weeks())
            .filter(|&w| !det.is_anomalous(&train.week_vector(w)))
            .collect();
        assert!(
            clean_weeks.len() >= train.weeks() * 2 / 3,
            "most training weeks must pass"
        );
        for &w in &clean_weeks {
            let actual = train.week_vector(w);
            let attack = optimal_swap(&actual, &TouPlan::ireland_nightsaver(), 0);
            assert!(
                det.is_anomalous(&attack.reported),
                "swap of clean week {w} must trip the conditioned detector"
            );
        }
    }

    #[test]
    fn conditioned_band_scores_expose_the_shifted_band() {
        let train = training(30, 6);
        let det = ConditionedKldDetector::train_tou(
            &train,
            &TouPlan::ireland_nightsaver(),
            DEFAULT_BINS,
            SignificanceLevel::Ten,
        )
        .unwrap();
        let actual = train.week_vector(29);
        let attack = optimal_swap(&actual, &TouPlan::ireland_nightsaver(), 0);
        let scores = det.band_scores(&attack.reported).unwrap();
        assert_eq!(scores.len(), 2);
        // The off-peak band (index 0) received the big readings: its
        // excess over threshold should dominate.
        assert!(
            scores[0].0 > scores[0].1,
            "off-peak band must exceed its threshold"
        );
    }

    #[test]
    fn empty_band_rejected() {
        let train = training(5, 7);
        let result = ConditionedKldDetector::train_with_bands(
            &train,
            vec![vec![], vec![0, 1]],
            DEFAULT_BINS,
            SignificanceLevel::Ten,
        );
        assert!(matches!(result, Err(TsError::EmptyHistogram)));
    }

    #[test]
    fn rethresholding_matches_fresh_training() {
        let train = training(30, 8);
        let base = KldDetector::train(&train, DEFAULT_BINS, SignificanceLevel::Five).unwrap();
        let fresh_ten = KldDetector::train(&train, DEFAULT_BINS, SignificanceLevel::Ten).unwrap();
        assert_eq!(base.at_level(SignificanceLevel::Ten), fresh_ten);
        let fresh_p = KldDetector::train_at_percentile(&train, DEFAULT_BINS, 0.85).unwrap();
        assert_eq!(base.at_percentile(0.85), fresh_p);
        assert_eq!(base.threshold_at(0.85), fresh_p.threshold());
        let plan = TouPlan::ireland_nightsaver();
        let cond =
            ConditionedKldDetector::train_tou(&train, &plan, DEFAULT_BINS, SignificanceLevel::Five)
                .unwrap();
        let cond_ten =
            ConditionedKldDetector::train_tou(&train, &plan, DEFAULT_BINS, SignificanceLevel::Ten)
                .unwrap();
        assert_eq!(cond.at_level(SignificanceLevel::Ten), cond_ten);
    }

    #[test]
    fn rethresholding_shares_trained_core_instead_of_cloning() {
        let train = training(30, 8);
        let base = KldDetector::train(&train, DEFAULT_BINS, SignificanceLevel::Five).unwrap();
        let resweep = base.at_percentile(0.85);
        assert!(
            base.shares_core_with(&resweep),
            "at_percentile must share the trained core by reference"
        );
        assert!(base.shares_core_with(&base.at_level(SignificanceLevel::Ten)));
        let clone = base.clone();
        assert!(base.shares_core_with(&clone), "clone is a shallow Arc bump");
    }

    #[test]
    fn overlapping_bands_are_a_typed_error() {
        let train = training(5, 7);
        let result = ConditionedKldDetector::train_with_bands(
            &train,
            vec![vec![0, 1, 2], vec![2, 3]],
            DEFAULT_BINS,
            SignificanceLevel::Ten,
        );
        assert!(matches!(result, Err(TsError::DuplicateSlot { slot: 2 })));
    }

    #[test]
    fn fully_observed_masked_score_matches_dense_score() {
        let train = training(20, 9);
        let det = KldDetector::train(&train, DEFAULT_BINS, SignificanceLevel::Five).unwrap();
        let week = train.week_vector(3);
        let mask = vec![true; SLOTS_PER_WEEK];
        assert_eq!(
            det.score_masked(&week, &mask).unwrap(),
            det.score(&week).unwrap()
        );
        let cond = ConditionedKldDetector::train_tou(
            &train,
            &TouPlan::ireland_nightsaver(),
            DEFAULT_BINS,
            SignificanceLevel::Five,
        )
        .unwrap();
        assert_eq!(
            cond.band_scores_masked(&week, &mask).unwrap(),
            cond.band_scores(&week).unwrap()
        );
    }

    #[test]
    fn masked_score_renormalises_over_observed_mass() {
        // A training week with every second slot masked still looks like
        // itself: the renormalised histogram keeps roughly the training
        // shape, so the score stays finite and unspectacular — whereas the
        // dense score of the same gap-zeroed week would see a huge spike of
        // mass at zero.
        let train = training(30, 10);
        let det = KldDetector::train(&train, DEFAULT_BINS, SignificanceLevel::Five).unwrap();
        let week = train.week_vector(5);
        let mask: Vec<bool> = (0..SLOTS_PER_WEEK).map(|i| i % 2 == 0).collect();
        let masked = det.score_masked(&week, &mask).unwrap();
        assert!(masked.is_finite());
        let zeroed: Vec<f64> = week
            .as_slice()
            .iter()
            .zip(&mask)
            .map(|(&v, &m)| if m { v } else { 0.0 })
            .collect();
        let dense_zeroed = det.score(&WeekVector::new(zeroed).unwrap()).unwrap();
        assert!(
            masked < dense_zeroed,
            "renormalised score {masked} must beat naive gap-as-zero score {dense_zeroed}"
        );
    }

    #[test]
    fn empty_mask_is_a_typed_error_not_nan() {
        let train = training(10, 11);
        let det = KldDetector::train(&train, DEFAULT_BINS, SignificanceLevel::Five).unwrap();
        let week = train.week_vector(0);
        let result = det.score_masked(&week, &vec![false; SLOTS_PER_WEEK]);
        assert_eq!(result, Err(KldError::EmptyBand { band: 0 }));
    }

    #[test]
    fn gap_swallowing_a_tou_band_is_a_typed_error() {
        let train = training(10, 12);
        let plan = TouPlan::ireland_nightsaver();
        let det =
            ConditionedKldDetector::train_tou(&train, &plan, DEFAULT_BINS, SignificanceLevel::Five)
                .unwrap();
        let week = train.week_vector(0);
        // Observe only off-peak slots: the peak band (index 1) is empty.
        let mask: Vec<bool> = (0..SLOTS_PER_WEEK).map(|s| !plan.is_peak(s)).collect();
        let result = det.band_scores_masked(&week, &mask);
        assert_eq!(result, Err(KldError::EmptyBand { band: 1 }));
    }

    #[test]
    fn mask_length_mismatch_is_typed() {
        let train = training(10, 13);
        let det = KldDetector::train(&train, DEFAULT_BINS, SignificanceLevel::Five).unwrap();
        let week = train.week_vector(0);
        assert!(matches!(
            det.score_masked(&week, &[true; 10]),
            Err(KldError::Ts(TsError::MaskLengthMismatch { .. }))
        ));
    }

    #[test]
    fn scratch_training_matches_allocating_arithmetic() {
        // The scratch-based training paths must reproduce the pre-scratch
        // allocating arithmetic bit for bit: fresh histogram per training
        // week, smoothed divergence on the materialised histograms.
        use fdeta_tsdata::kl::kl_divergence_smoothed;
        let train = training(30, 14);
        let det = KldDetector::train(&train, DEFAULT_BINS, SignificanceLevel::Five).unwrap();
        let edges = BinEdges::from_sample(train.flat(), DEFAULT_BINS).unwrap();
        let baseline = edges.histogram(train.flat());
        let mut training_k: Vec<f64> = train
            .iter_weeks()
            .map(|week| kl_divergence_smoothed(&edges.histogram(week), &baseline).unwrap())
            .collect();
        training_k.sort_by(f64::total_cmp);
        assert_eq!(det.training_divergences(), training_k.as_slice());
        assert_eq!(det.baseline(), &baseline);
        assert_eq!(det.threshold(), Quantile::of_sorted(&training_k, 0.95));

        let plan = TouPlan::ireland_nightsaver();
        let cond =
            ConditionedKldDetector::train_tou(&train, &plan, DEFAULT_BINS, SignificanceLevel::Ten)
                .unwrap();
        for band in 0..cond.band_count() {
            let view = cond.band_view(band);
            let mut sample = Vec::new();
            for week in train.iter_weeks() {
                sample.extend(view.slots.iter().map(|&s| week[s]));
            }
            let band_edges = BinEdges::from_sample(&sample, DEFAULT_BINS).unwrap();
            let band_baseline = band_edges.histogram(&sample);
            let mut band_k: Vec<f64> = train
                .iter_weeks()
                .map(|week| {
                    let values: Vec<f64> = view.slots.iter().map(|&s| week[s]).collect();
                    kl_divergence_smoothed(&band_edges.histogram(&values), &band_baseline).unwrap()
                })
                .collect();
            band_k.sort_by(f64::total_cmp);
            assert_eq!(view.edges, &band_edges, "band {band} edges");
            assert_eq!(view.baseline, &band_baseline, "band {band} baseline");
            assert_eq!(
                view.threshold,
                Quantile::of_sorted(&band_k, 0.90),
                "band {band} threshold"
            );
        }
    }

    #[test]
    fn reused_training_scratch_is_deterministic() {
        // One scratch reused across consumers (the work-stealing trainer's
        // pattern) must produce the same detectors as fresh scratch, even
        // when the scratch was warmed on a differently shaped input.
        let a = training(20, 15);
        let b = training(30, 16);
        let mut scratch = HistScratch::new();
        let _ = KldDetector::train_with(&a, DEFAULT_BINS, SignificanceLevel::Ten, &mut scratch)
            .unwrap();
        let warm = KldDetector::train_with(&b, DEFAULT_BINS, SignificanceLevel::Five, &mut scratch)
            .unwrap();
        let fresh = KldDetector::train(&b, DEFAULT_BINS, SignificanceLevel::Five).unwrap();
        assert_eq!(warm, fresh);

        let plan = TouPlan::ireland_nightsaver();
        let warm_cond = ConditionedKldDetector::train_tou_with(
            &b,
            &plan,
            DEFAULT_BINS,
            SignificanceLevel::Ten,
            &mut scratch,
        )
        .unwrap();
        let fresh_cond =
            ConditionedKldDetector::train_tou(&b, &plan, DEFAULT_BINS, SignificanceLevel::Ten)
                .unwrap();
        assert_eq!(warm_cond, fresh_cond);
    }

    #[test]
    fn constant_consumer_trains_without_panic() {
        // Degenerate history (e.g. a vacant property with constant standing
        // load) must not crash training — the padded histogram handles it.
        let train = WeekMatrix::from_flat(vec![0.5; 4 * SLOTS_PER_WEEK]).unwrap();
        let det = KldDetector::train(&train, DEFAULT_BINS, SignificanceLevel::Five).unwrap();
        assert_eq!(det.score(&train.week_vector(0)).unwrap(), 0.0);
        let spike = WeekVector::new(vec![5.0; SLOTS_PER_WEEK]).unwrap();
        assert!(det.is_anomalous(&spike));
    }
}
