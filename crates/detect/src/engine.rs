//! The shared trained-artifact evaluation engine.
//!
//! The Section VIII protocol is the repo's hot path, and almost all of its
//! cost is *training*: the per-consumer ARIMA fit, the KLD histograms and
//! their training-divergence quantiles, the PCA subspace, and the
//! integrated detector's mean/variance ranges. The legacy harness recomputed
//! all of it for every sweep point — `ablate_alpha` refit the KLD detector
//! once per significance level per consumer, `roc` once per α. None of that
//! is necessary: the trained state is threshold-independent, and a new
//! significance level is a single quantile lookup on the cached sorted
//! training statistics.
//!
//! [`TrainedConsumer`] captures that state once per consumer.
//! [`EvalEngine`] owns a vector of artifacts plus the configuration, and
//! exposes:
//!
//! * [`EvalEngine::evaluate`] — the full Tables II/III protocol, scored
//!   from the cached artifacts;
//! * [`EvalEngine::kld_alpha_sweep`] / [`EvalEngine::kld_roc`] — threshold
//!   sweeps that score each week **once** and re-threshold per α
//!   (`O(consumers + alphas)` detector work instead of
//!   `O(consumers × alphas)` retrains);
//! * [`EvalEngine::stats`] — per-stage wall-clock timings and throughput;
//! * a progress callback for long fleet runs.
//!
//! Scheduling is work-stealing over an atomic work index: each worker
//! claims the next unclaimed consumer, so one slow ARIMA fit delays one
//! worker by one consumer instead of idling a whole static chunk. Results
//! are merged by consumer index, which keeps the output byte-identical
//! across thread counts. Worker panics and per-consumer training failures
//! surface as typed [`EvalError`]s, never as `expect` panics.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::sync::{AtomicBool, AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use fdeta_arima::{ArimaModel, ArimaSpec, FitScratch};
use fdeta_attacks::{
    arima_attack, integrated_arima_attack, optimal_swap, AttackVector, Direction, InjectionContext,
};
use fdeta_cer_synth::{ConsumerRecord, SyntheticDataset};
use fdeta_gridsim::pricing::{PricingScheme, TouPlan};
use fdeta_tsdata::hist::HistScratch;
use fdeta_tsdata::week::{WeekMatrix, WeekVector};
use fdeta_tsdata::SLOTS_PER_WEEK;

use crate::arima_detector::ArimaDetector;
use crate::detector::Detector;
use crate::error::{EvalError, TrainError};
use crate::eval::{gain_of, ConsumerEval, DetectorKind, EvalConfig, Evaluation, Metric2, Scenario};
use crate::integrated::IntegratedArimaDetector;
use crate::kld::{ConditionedKldDetector, KldDetector, SignificanceLevel};
use crate::pca::{PcaDetector, PcaScratch};
use crate::roc::RocPoint;

/// Per-worker training scratch: every reusable buffer of the per-consumer
/// training pipeline in one place — the ARIMA fit's regression and
/// innovation buffers, the KLD detectors' histogram counts and gather
/// buffer, and the PCA trainer's centred matrix and power-iteration
/// accumulator. The work-stealing trainer hands one `TrainScratch` to each
/// worker thread, so training `n` consumers allocates these buffers
/// `threads` times instead of `n` times (and, within one consumer, once
/// instead of once per training week / power sweep). Reuse is
/// bit-identical to fresh buffers: every consumer of a scratch overwrites
/// it before reading.
#[derive(Debug, Clone, Default)]
pub struct TrainScratch {
    fit: FitScratch,
    hist: HistScratch,
    pca: PcaScratch,
}

impl TrainScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Parameters needed to train one consumer's artifact from a bare training
/// window. A strict subset of [`EvalConfig`] — the monitoring pipeline
/// trains artifacts too but has no notion of attack vectors or seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactParams {
    /// KLD histogram bins.
    pub bins: usize,
    /// Interval-detector confidence level.
    pub confidence: f64,
    /// Utility ARIMA order `(p, d, q)`.
    pub arima_order: (usize, usize, usize),
    /// PCA components to retain; `0` disables the subspace detector (the
    /// monitoring pipeline does not use it).
    pub pca_components: usize,
    /// TOU plan for the price-conditioned KLD detector.
    pub tou: TouPlan,
}

impl ArtifactParams {
    /// The parameters the evaluation protocol implies: the paper's TOU
    /// plan, and the subspace rank clamped for short training windows
    /// (the same clamp the legacy per-consumer loop applied).
    pub fn from_eval(config: &EvalConfig) -> Self {
        Self {
            bins: config.bins,
            confidence: config.confidence,
            arima_order: config.arima_order,
            pca_components: config.train_weeks.saturating_sub(2).clamp(1, 3),
            tou: TouPlan::ireland_nightsaver(),
        }
    }
}

/// Everything trained once per consumer and reused across scenarios,
/// significance levels, and calling binaries.
///
/// The detectors inside are stored at their *base* calibration; the
/// `*_at` accessors re-threshold from the cached sorted training
/// statistics in O(1) — provably identical to retraining at that level,
/// because bin edges, baselines, subspaces, and training scores do not
/// depend on the threshold percentile.
#[derive(Debug, Clone)]
pub struct TrainedConsumer {
    id: u32,
    index: usize,
    train: WeekMatrix,
    /// Held-out weeks (attack week first, then clean weeks); `None` when
    /// the artifact was trained from a bare window.
    test: Option<WeekMatrix>,
    /// `None` when the ARIMA fit failed (degenerate history) — the
    /// consumer is scored as skipped, matching the legacy protocol.
    model: Option<ArimaModel>,
    arima: Option<ArimaDetector>,
    integrated: Option<IntegratedArimaDetector>,
    kld: KldDetector,
    conditioned: ConditionedKldDetector,
    pca: Option<PcaDetector>,
    mean_range: (f64, f64),
}

impl TrainedConsumer {
    /// Trains an artifact from a bare training window (no held-out test
    /// weeks) — the entry point used by the monitoring pipeline.
    ///
    /// # Errors
    ///
    /// Returns a [`TrainError`] if any detector's training state cannot be
    /// built. An ARIMA fit failure is *not* an error: degenerate histories
    /// keep KLD coverage and lose only the interval detectors.
    pub fn from_window(
        id: u32,
        index: usize,
        train: &WeekMatrix,
        params: &ArtifactParams,
    ) -> Result<Self, TrainError> {
        Self::from_window_with(id, index, train, params, &mut TrainScratch::new())
    }

    /// [`TrainedConsumer::from_window`] over caller-owned scratch buffers —
    /// the allocation-free hot path the work-stealing trainer drives with
    /// one scratch per worker. Bit-identical to
    /// [`TrainedConsumer::from_window`].
    ///
    /// # Errors
    ///
    /// As [`TrainedConsumer::from_window`].
    pub fn from_window_with(
        id: u32,
        index: usize,
        train: &WeekMatrix,
        params: &ArtifactParams,
        scratch: &mut TrainScratch,
    ) -> Result<Self, TrainError> {
        let kld = KldDetector::train_with(
            train,
            params.bins,
            SignificanceLevel::Five,
            &mut scratch.hist,
        )
        .map_err(|source| TrainError::Histogram {
            consumer: id,
            source,
        })?;
        let conditioned = ConditionedKldDetector::train_tou_with(
            train,
            &params.tou,
            params.bins,
            SignificanceLevel::Five,
            &mut scratch.hist,
        )
        .map_err(|source| TrainError::Histogram {
            consumer: id,
            source,
        })?;
        let pca = if params.pca_components == 0 {
            None
        } else {
            Some(
                PcaDetector::train_with(
                    train,
                    params.pca_components,
                    SignificanceLevel::Five,
                    &mut scratch.pca,
                )
                .map_err(|source| TrainError::Subspace {
                    consumer: id,
                    source,
                })?,
            )
        };
        let (p, d, q) = params.arima_order;
        let model = ArimaSpec::new(p, d, q)
            .ok()
            .and_then(|spec| ArimaModel::fit_with(&mut scratch.fit, train.flat(), spec).ok());
        // Seed the forecaster once and share the seeded state: the
        // integrated detector's interval core is exactly the plain
        // detector, so replaying the 20k-reading history a second time
        // reproduces a state we already have.
        let (arima, integrated) = match &model {
            Some(m) => {
                let arima =
                    ArimaDetector::new(m.clone(), train, params.confidence).map_err(|source| {
                        TrainError::Seeding {
                            consumer: id,
                            source,
                        }
                    })?;
                let integrated = IntegratedArimaDetector::from_seeded(arima.clone(), train);
                (Some(arima), Some(integrated))
            }
            None => (None, None),
        };
        let means = train.weekly_means();
        let mean_range = (
            means.iter().cloned().fold(f64::INFINITY, f64::min),
            means.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );
        Ok(Self {
            id,
            index,
            train: train.clone(),
            test: None,
            model,
            arima,
            integrated,
            kld,
            conditioned,
            pca,
            mean_range,
        })
    }

    /// Trains an artifact for the evaluation protocol: splits the record
    /// into `train_weeks` + held-out weeks and trains every detector.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::NotEnoughWeeks`] if the record has fewer than
    /// `train_weeks + 2` whole weeks (one attack week plus one clean week),
    /// and propagates detector training failures.
    pub fn train(
        record: &ConsumerRecord,
        index: usize,
        config: &EvalConfig,
    ) -> Result<Self, TrainError> {
        Self::train_with(record, index, config, &mut TrainScratch::new())
    }

    /// [`TrainedConsumer::train`] over caller-owned scratch buffers; see
    /// [`TrainedConsumer::from_window_with`]. Bit-identical to
    /// [`TrainedConsumer::train`].
    ///
    /// # Errors
    ///
    /// As [`TrainedConsumer::train`].
    pub fn train_with(
        record: &ConsumerRecord,
        index: usize,
        config: &EvalConfig,
        scratch: &mut TrainScratch,
    ) -> Result<Self, TrainError> {
        let (train, test) = Self::split_record(record, config)?;
        let mut artifact = Self::from_window_with(
            record.id,
            index,
            &train,
            &ArtifactParams::from_eval(config),
            scratch,
        )?;
        artifact.test = Some(test);
        Ok(artifact)
    }

    /// [`TrainedConsumer::train_with`] from a bare flat reading slice —
    /// the columnar-corpus training path. The slice is split exactly as
    /// [`TrainedConsumer::train`] splits a record's series, so training
    /// from a slab read back off disk is bit-identical to training from
    /// the materialised record it was written from.
    ///
    /// # Errors
    ///
    /// As [`TrainedConsumer::train`].
    pub fn train_flat(
        id: u32,
        index: usize,
        flat: &[f64],
        config: &EvalConfig,
        scratch: &mut TrainScratch,
    ) -> Result<Self, TrainError> {
        let (train, test) = Self::split_flat(id, flat, config)?;
        let mut artifact = Self::from_window_with(
            id,
            index,
            &train,
            &ArtifactParams::from_eval(config),
            scratch,
        )?;
        artifact.test = Some(test);
        Ok(artifact)
    }

    /// Splits a record into the protocol's `(train, test)` week matrices —
    /// the deterministic, cheap part of [`TrainedConsumer::train`], shared
    /// with the artifact store's warm path so a reloaded artifact sees
    /// exactly the windows the cold run trained on.
    pub(crate) fn split_record(
        record: &ConsumerRecord,
        config: &EvalConfig,
    ) -> Result<(WeekMatrix, WeekMatrix), TrainError> {
        Self::split_flat(record.id, record.series.as_slice(), config)
    }

    /// The split itself, over flat readings: whole weeks only, first
    /// `train_weeks` into the training matrix, the rest held out.
    fn split_flat(
        id: u32,
        flat: &[f64],
        config: &EvalConfig,
    ) -> Result<(WeekMatrix, WeekMatrix), TrainError> {
        let total_weeks = flat.len() / SLOTS_PER_WEEK;
        let required = config.train_weeks + 2;
        if total_weeks < required {
            return Err(TrainError::NotEnoughWeeks {
                consumer: id,
                required,
                available: total_weeks,
            });
        }
        // Slice the raw readings directly into each matrix: one copy per
        // window, instead of an intermediate sub-series copy that
        // `to_week_matrix` would clone again. Bit-identical data; the
        // bounds are guaranteed by the `total_weeks` check above, and
        // `from_flat` still validates every reading.
        let split = config.train_weeks * SLOTS_PER_WEEK;
        let train = WeekMatrix::from_flat(flat[..split].to_vec())?;
        let test = WeekMatrix::from_flat(flat[split..total_weeks * SLOTS_PER_WEEK].to_vec())?;
        Ok((train, test))
    }

    /// Reassembles an artifact from persisted trained state (the artifact
    /// store's warm path): the expensive, persisted pieces — the ARIMA
    /// parameter fit, the KLD histograms and training quantiles, the PCA
    /// subspace — are taken as given, and everything cheap and fully
    /// determined by them (the train/test split, the interval detectors,
    /// the weekly-mean range) is re-derived exactly as
    /// [`TrainedConsumer::train`] derives it. Bit-identical to a cold
    /// train of the same record under the same config.
    ///
    /// # Errors
    ///
    /// As [`TrainedConsumer::train`] for the record split.
    pub(crate) fn reassemble(
        record: &ConsumerRecord,
        index: usize,
        config: &EvalConfig,
        model: Option<ArimaModel>,
        kld: KldDetector,
        conditioned: ConditionedKldDetector,
        pca: Option<PcaDetector>,
    ) -> Result<Self, TrainError> {
        let (train, test) = Self::split_record(record, config)?;
        // One seeding pass shared by both interval detectors, as on the
        // cold path.
        let (arima, integrated) = match &model {
            Some(m) => {
                let arima =
                    ArimaDetector::new(m.clone(), &train, config.confidence).map_err(|source| {
                        TrainError::Seeding {
                            consumer: record.id,
                            source,
                        }
                    })?;
                let integrated = IntegratedArimaDetector::from_seeded(arima.clone(), &train);
                (Some(arima), Some(integrated))
            }
            None => (None, None),
        };
        let means = train.weekly_means();
        let mean_range = (
            means.iter().cloned().fold(f64::INFINITY, f64::min),
            means.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );
        Ok(Self {
            id: record.id,
            index,
            train,
            test: Some(test),
            model,
            arima,
            integrated,
            kld,
            conditioned,
            pca,
            mean_range,
        })
    }

    /// The consumer's meter id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The consumer's position in the corpus (seeds the attack draws).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The training window the artifact was calibrated on.
    pub fn train_matrix(&self) -> &WeekMatrix {
        &self.train
    }

    /// The held-out weeks (attack week first), if the artifact has them.
    pub fn test_matrix(&self) -> Option<&WeekMatrix> {
        self.test.as_ref()
    }

    /// The fitted utility model, if the fit succeeded.
    pub fn model(&self) -> Option<&ArimaModel> {
        self.model.as_ref()
    }

    /// Whether the utility ARIMA model could be fitted.
    pub fn has_model(&self) -> bool {
        self.model.is_some()
    }

    /// The historic range of weekly means (the pipeline's step-3 labeller).
    pub fn mean_range(&self) -> (f64, f64) {
        self.mean_range
    }

    /// The KLD detector at its base (5%) calibration.
    pub fn kld_base(&self) -> &KldDetector {
        &self.kld
    }

    /// The price-conditioned KLD detector at its base (5%) calibration —
    /// what the artifact store persists.
    pub fn conditioned_base(&self) -> &ConditionedKldDetector {
        &self.conditioned
    }

    /// The PCA detector at its base (5%) calibration, if the subspace was
    /// trained — what the artifact store persists.
    pub(crate) fn pca_base(&self) -> Option<&PcaDetector> {
        self.pca.as_ref()
    }

    /// The KLD detector re-thresholded at `level` — a quantile lookup on
    /// the cached training divergences, identical to retraining.
    pub fn kld_at(&self, level: SignificanceLevel) -> KldDetector {
        self.kld.at_level(level)
    }

    /// The price-conditioned KLD detector re-thresholded at `level`.
    pub fn conditioned_at(&self, level: SignificanceLevel) -> ConditionedKldDetector {
        self.conditioned.at_level(level)
    }

    /// The PCA detector re-thresholded at `level`, if the subspace was
    /// trained.
    pub fn pca_at(&self, level: SignificanceLevel) -> Option<PcaDetector> {
        self.pca.as_ref().map(|p| p.at_level(level))
    }

    /// The interval detectors (plain + integrated), if the model fitted.
    pub fn interval_detectors(&self) -> Option<(ArimaDetector, IntegratedArimaDetector)> {
        match (&self.arima, &self.integrated) {
            (Some(a), Some(i)) => Some((a.clone(), i.clone())),
            _ => None,
        }
    }

    /// The trained per-reading interval detector, if the artifact has one.
    pub fn arima_detector(&self) -> Option<&ArimaDetector> {
        self.arima.as_ref()
    }

    /// The trained integrated (interval + weekly-range) detector, if the
    /// artifact has one.
    pub fn integrated_detector(&self) -> Option<&IntegratedArimaDetector> {
        self.integrated.as_ref()
    }

    /// The actual consumption of the designated attack week.
    pub fn attack_week(&self) -> Option<WeekVector> {
        self.test.as_ref().map(|t| t.week_vector(0))
    }

    /// The designated clean week (the week after the attack week) used for
    /// the per-week false-positive assessment.
    pub fn clean_week(&self) -> Option<WeekVector> {
        self.test
            .as_ref()
            .filter(|t| t.weeks() >= 2)
            .map(|t| t.week_vector(1))
    }

    /// The attack-vector family realising `scenario` against this
    /// consumer, drawn with the legacy protocol's exact seeds (so engine
    /// results are bit-identical to the pre-engine harness). `None` when
    /// the artifact lacks a test window, or lacks a model for the
    /// model-based scenarios.
    pub fn scenario_vectors(
        &self,
        scenario: Scenario,
        config: &EvalConfig,
    ) -> Option<Vec<AttackVector>> {
        let test = self.test.as_ref()?;
        let actual = test.week_vector(0);
        let start_slot = config.train_weeks * SLOTS_PER_WEEK;
        if scenario == Scenario::Swap {
            let plan = TouPlan::ireland_nightsaver();
            return Some(vec![optimal_swap(&actual, &plan, start_slot)]);
        }
        let model = self.model.as_ref()?;
        let ctx = InjectionContext {
            train: &self.train,
            actual_week: &actual,
            model,
            confidence: config.confidence,
            start_slot,
        };
        let consumer_seed = config.seed ^ (self.index as u64).wrapping_mul(0xD134_2543_DE82_EF95);
        Some(match scenario {
            Scenario::ArimaOver => vec![arima_attack(&ctx, Direction::OverReport)],
            Scenario::ArimaUnder => vec![arima_attack(&ctx, Direction::UnderReport)],
            Scenario::IntegratedOver | Scenario::IntegratedUnder => {
                let direction = if scenario == Scenario::IntegratedOver {
                    Direction::OverReport
                } else {
                    Direction::UnderReport
                };
                (0..config.attack_vectors)
                    .map(|i| {
                        let mut rng = StdRng::seed_from_u64(
                            consumer_seed
                                ^ (0x9E37_79B9_7F4A_7C15u64
                                    .wrapping_mul((i as u64 + 1) * (scenario.index() as u64 + 1))),
                        );
                        integrated_arima_attack(&ctx, direction, &mut rng)
                    })
                    .collect()
            }
            // lint:allow(no-panic-in-lib, Scenario::Swap returns before the match above)
            Scenario::Swap => unreachable!("handled above"),
        })
    }

    /// The worst-case (max-profit) vector for `scenario` and its gain.
    pub fn worst_case(
        &self,
        scenario: Scenario,
        config: &EvalConfig,
    ) -> Option<(AttackVector, Metric2)> {
        let vectors = self.scenario_vectors(scenario, config)?;
        let scheme = PricingScheme::tou_ireland();
        vectors
            .into_iter()
            .map(|v| {
                let gain = gain_of(&v, scenario, &scheme);
                (v, gain)
            })
            .max_by(|a, b| a.1.profit_dollars.total_cmp(&b.1.profit_dollars))
    }
}

/// Which stage of an engine run a progress report belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineStage {
    /// Per-consumer artifact training (the expensive stage).
    Train,
    /// Scoring cached artifacts (evaluation or a threshold sweep).
    Score,
}

impl std::fmt::Display for EngineStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineStage::Train => write!(f, "train"),
            EngineStage::Score => write!(f, "score"),
        }
    }
}

/// Progress callback: `(stage, consumers done, consumers total)`. Invoked
/// from worker threads, so it must be `Send + Sync`.
pub type ProgressFn = dyn Fn(EngineStage, usize, usize) + Send + Sync;

/// Per-stage instrumentation for one engine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    /// Wall-clock time of the artifact-training stage.
    pub train_wall: Duration,
    /// Wall-clock time of the most recent scoring stage.
    pub score_wall: Duration,
    /// Consumers in the corpus.
    pub consumers: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Scoring passes served from the cached artifacts so far.
    pub scoring_passes: usize,
}

impl EngineStats {
    /// Consumers trained per second of wall-clock, `0.0` if unmeasured.
    pub fn train_throughput(&self) -> f64 {
        throughput(self.consumers, self.train_wall)
    }

    /// Consumers scored per second in the latest scoring pass.
    pub fn score_throughput(&self) -> f64 {
        throughput(self.consumers, self.score_wall)
    }
}

fn throughput(items: usize, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        items as f64 / secs
    } else {
        0.0
    }
}

/// The evaluation engine: per-consumer artifacts trained once, scored many
/// times. See the module docs for the architecture.
pub struct EvalEngine {
    config: EvalConfig,
    artifacts: Vec<TrainedConsumer>,
    threads: usize,
    stats: Mutex<EngineStats>,
    progress: Option<Box<ProgressFn>>,
}

impl EvalEngine {
    /// Validates the configuration and trains every consumer's artifact
    /// with work-stealing parallelism.
    ///
    /// # Errors
    ///
    /// [`EvalError::Config`] for an invalid configuration,
    /// [`EvalError::Train`] if any consumer's artifact fails to train
    /// (e.g. too few weeks), [`EvalError::WorkerPanicked`] if a worker
    /// thread dies.
    pub fn train(dataset: &SyntheticDataset, config: &EvalConfig) -> Result<Self, EvalError> {
        Self::train_with_progress(dataset, config, None)
    }

    /// As [`EvalEngine::train`], with a progress callback invoked after
    /// each consumer completes a stage.
    pub fn train_with_progress(
        dataset: &SyntheticDataset,
        config: &EvalConfig,
        progress: Option<Box<ProgressFn>>,
    ) -> Result<Self, EvalError> {
        config.validate()?;
        let threads = config.worker_threads(dataset.len());
        let started = Instant::now();
        let artifacts = run_work_stealing_stateful(
            dataset.len(),
            threads,
            progress.as_deref(),
            EngineStage::Train,
            TrainScratch::new,
            |scratch, index| {
                TrainedConsumer::train_with(dataset.consumer(index), index, config, scratch)
            },
        )?;
        let stats = EngineStats {
            train_wall: started.elapsed(),
            consumers: artifacts.len(),
            threads,
            ..EngineStats::default()
        };
        Ok(Self {
            config: config.clone(),
            artifacts,
            threads,
            stats: Mutex::new(stats),
            progress,
        })
    }

    /// Trains every consumer's artifact straight from a columnar slab
    /// corpus, out of core: each worker streams one consumer's slab into
    /// a reusable buffer, trains, and drops the readings before moving to
    /// the next consumer — peak resident reading data is one slab per
    /// worker, regardless of corpus size. Artifacts are bit-identical to
    /// [`EvalEngine::train`] over the materialised dataset the slabs were
    /// written from ([`TrainedConsumer::train_flat`]'s contract).
    ///
    /// # Errors
    ///
    /// As [`EvalEngine::train`], plus [`TrainError::Corpus`] (wrapped in
    /// [`EvalError::Train`]) when a slab cannot be read.
    pub fn train_slabs(
        corpus: &fdeta_tsdata::SlabCorpus,
        config: &EvalConfig,
    ) -> Result<Self, EvalError> {
        config.validate()?;
        let threads = config.worker_threads(corpus.len());
        let started = Instant::now();
        let artifacts = run_work_stealing_stateful(
            corpus.len(),
            threads,
            None,
            EngineStage::Train,
            || (TrainScratch::new(), Vec::new(), Vec::new()),
            |(scratch, flat, bytes): &mut (TrainScratch, Vec<f64>, Vec<u8>), index| {
                let id = corpus.id(index).map_err(|e| TrainError::Corpus {
                    consumer: 0,
                    message: e.to_string(),
                })?;
                corpus
                    .read_into(index, flat, bytes)
                    .map_err(|e| TrainError::Corpus {
                        consumer: id,
                        message: e.to_string(),
                    })?;
                TrainedConsumer::train_flat(id, index, flat, config, scratch)
            },
        )?;
        let stats = EngineStats {
            train_wall: started.elapsed(),
            consumers: artifacts.len(),
            threads,
            ..EngineStats::default()
        };
        Ok(Self {
            config: config.clone(),
            artifacts,
            threads,
            stats: Mutex::new(stats),
            progress: None,
        })
    }

    /// Builds an engine directly from pre-trained artifacts.
    ///
    /// This is the assembly point for training paths that do *not* abort
    /// on the first bad consumer — the robustness path repairs and retries
    /// per consumer and hands the survivors here. Each artifact keeps
    /// whatever corpus `index` it was trained with, so the attack draws of
    /// the surviving consumers are bit-identical to a full-fleet run.
    ///
    /// # Errors
    ///
    /// [`EvalError::Config`] if the configuration is invalid.
    pub fn from_artifacts(
        config: &EvalConfig,
        artifacts: Vec<TrainedConsumer>,
    ) -> Result<Self, EvalError> {
        config.validate()?;
        let threads = config.worker_threads(artifacts.len());
        let stats = EngineStats {
            consumers: artifacts.len(),
            threads,
            ..EngineStats::default()
        };
        Ok(Self {
            config: config.clone(),
            artifacts,
            threads,
            stats: Mutex::new(stats),
            progress: None,
        })
    }

    /// The configuration the engine was trained with.
    pub fn config(&self) -> &EvalConfig {
        &self.config
    }

    /// The trained artifacts, in corpus order.
    pub fn artifacts(&self) -> &[TrainedConsumer] {
        &self.artifacts
    }

    /// A snapshot of the engine's instrumentation.
    pub fn stats(&self) -> EngineStats {
        // A poisoned lock only means a panicking thread held it; the stats
        // are plain counters and remain usable.
        self.stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Scores the full Tables II/III protocol from the cached artifacts.
    /// Calling this repeatedly retrains nothing and returns identical
    /// results each time.
    ///
    /// # Errors
    ///
    /// [`EvalError::Train`] if an artifact lacks the test window the
    /// protocol needs (impossible for engine-trained artifacts), or
    /// [`EvalError::WorkerPanicked`].
    pub fn evaluate(&self) -> Result<Evaluation, EvalError> {
        let started = Instant::now();
        let consumers = run_work_stealing(
            self.artifacts.len(),
            self.threads,
            self.progress.as_deref(),
            EngineStage::Score,
            |index| score_consumer(&self.artifacts[index], &self.config),
        )?;
        self.note_scoring_pass(started.elapsed());
        Ok(Evaluation {
            consumers,
            config: self.config.clone(),
        })
    }

    /// Significance-level sweep for the (unconditioned) KLD detector: each
    /// consumer's clean week and worst-case Integrated ARIMA attacks (both
    /// directions) are scored exactly once; every α then costs one quantile
    /// lookup per consumer. Consumers whose model failed to fit are
    /// excluded, matching the legacy `ablate_alpha` loop.
    ///
    /// # Errors
    ///
    /// As [`EvalEngine::evaluate`].
    pub fn kld_alpha_sweep(&self, alphas: &[f64]) -> Result<Vec<AlphaPoint>, EvalError> {
        let started = Instant::now();
        // One pass over the corpus: cache (clean, worst-over, worst-under)
        // divergence scores per consumer. Scores are threshold-independent.
        let cached = run_work_stealing(
            self.artifacts.len(),
            self.threads,
            self.progress.as_deref(),
            EngineStage::Score,
            |index| {
                let artifact = &self.artifacts[index];
                if !artifact.has_model() {
                    return Ok(None);
                }
                let clean = artifact.clean_week().ok_or(TrainError::NoTestWindow {
                    consumer: artifact.id,
                })?;
                let (over, _) = artifact
                    .worst_case(Scenario::IntegratedOver, &self.config)
                    .ok_or(TrainError::NoTestWindow {
                        consumer: artifact.id,
                    })?;
                let (under, _) = artifact
                    .worst_case(Scenario::IntegratedUnder, &self.config)
                    .ok_or(TrainError::NoTestWindow {
                        consumer: artifact.id,
                    })?;
                let base = artifact.kld_base();
                Ok(Some([
                    base.score(&clean)?,
                    base.score(&over.reported)?,
                    base.score(&under.reported)?,
                ]))
            },
        )?;

        let mut points = Vec::with_capacity(alphas.len());
        for &alpha in alphas {
            let alpha = alpha.clamp(1e-6, 1.0 - 1e-6);
            let percentile = 1.0 - alpha;
            let mut n = 0usize;
            let mut fp = 0usize;
            let mut det_over = 0usize;
            let mut det_under = 0usize;
            let mut m1_over = 0usize;
            let mut m1_under = 0usize;
            for (artifact, scores) in self.artifacts.iter().zip(&cached) {
                let Some([clean, over, under]) = scores else {
                    continue;
                };
                let threshold = artifact.kld_base().threshold_at(percentile);
                let clean_flag = *clean > threshold;
                let over_flag = *over > threshold;
                let under_flag = *under > threshold;
                n += 1;
                fp += usize::from(clean_flag);
                det_over += usize::from(over_flag);
                det_under += usize::from(under_flag);
                m1_over += usize::from(over_flag && !clean_flag);
                m1_under += usize::from(under_flag && !clean_flag);
            }
            let denom = if n == 0 { 1.0 } else { n as f64 };
            points.push(AlphaPoint {
                alpha,
                consumers: n,
                false_positive_rate: fp as f64 / denom,
                detection_over: det_over as f64 / denom,
                detection_under: det_under as f64 / denom,
                metric1_over: m1_over as f64 / denom,
                metric1_under: m1_under as f64 / denom,
            });
        }
        self.note_scoring_pass(started.elapsed());
        Ok(points)
    }

    /// The KLD detector's averaged operating curve over the corpus for the
    /// worst-case Integrated ARIMA (over-report) attack. Clean weeks are
    /// every held-out week after the attack week. Scores are computed once;
    /// each α re-thresholds from the cached training quantiles.
    ///
    /// # Errors
    ///
    /// As [`EvalEngine::evaluate`].
    pub fn kld_roc(&self, alphas: &[f64]) -> Result<Vec<RocPoint>, EvalError> {
        struct ConsumerScores {
            clean: Vec<f64>,
            attack: f64,
        }
        let started = Instant::now();
        let cached = run_work_stealing(
            self.artifacts.len(),
            self.threads,
            self.progress.as_deref(),
            EngineStage::Score,
            |index| {
                let artifact = &self.artifacts[index];
                if !artifact.has_model() {
                    return Ok(None);
                }
                let test = artifact.test_matrix().ok_or(TrainError::NoTestWindow {
                    consumer: artifact.id,
                })?;
                let (attack, _) = artifact
                    .worst_case(Scenario::IntegratedOver, &self.config)
                    .ok_or(TrainError::NoTestWindow {
                        consumer: artifact.id,
                    })?;
                let base = artifact.kld_base();
                Ok(Some(ConsumerScores {
                    clean: (1..test.weeks())
                        .map(|w| base.score(&test.week_vector(w)))
                        .collect::<Result<Vec<_>, _>>()?,
                    attack: base.score(&attack.reported)?,
                }))
            },
        )?;

        let mut points = Vec::with_capacity(alphas.len());
        for &alpha in alphas {
            let alpha = alpha.clamp(1e-6, 1.0 - 1e-6);
            let percentile = 1.0 - alpha;
            let mut n = 0usize;
            let mut detection = 0.0;
            let mut false_positive = 0.0;
            for (artifact, scores) in self.artifacts.iter().zip(&cached) {
                let Some(scores) = scores else { continue };
                let threshold = artifact.kld_base().threshold_at(percentile);
                n += 1;
                detection += f64::from(u8::from(scores.attack > threshold));
                if !scores.clean.is_empty() {
                    false_positive += scores.clean.iter().filter(|&&s| s > threshold).count()
                        as f64
                        / scores.clean.len() as f64;
                }
            }
            let denom = if n == 0 { 1.0 } else { n as f64 };
            points.push(RocPoint {
                alpha,
                detection_rate: detection / denom,
                false_positive_rate: false_positive / denom,
            });
        }
        self.note_scoring_pass(started.elapsed());
        Ok(points)
    }

    /// Consumers whose artifact carries a fitted model (the ones the
    /// sweeps actually score).
    pub fn modelled_consumers(&self) -> usize {
        self.artifacts.iter().filter(|a| a.has_model()).count()
    }

    fn note_scoring_pass(&self, wall: Duration) {
        let mut stats = self
            .stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        stats.score_wall = wall;
        stats.scoring_passes += 1;
    }
}

/// One operating point of the significance-level sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaPoint {
    /// Upper-tail significance level.
    pub alpha: f64,
    /// Consumers contributing to the rates.
    pub consumers: usize,
    /// Fraction of consumers whose clean week was (falsely) flagged.
    pub false_positive_rate: f64,
    /// Detection rate on the worst-case 1B (over-report) attack.
    pub detection_over: f64,
    /// Detection rate on the worst-case 2A/2B (under-report) attack.
    pub detection_under: f64,
    /// Composite Metric 1 (detected and no false positive), 1B.
    pub metric1_over: f64,
    /// Composite Metric 1, 2A/2B.
    pub metric1_under: f64,
}

/// The claim/abort protocol at the heart of `run_work_stealing`,
/// extracted as a standalone type so the loom model checker can exhaust
/// its interleavings (`tests/loom_scheduler.rs`, built with
/// `RUSTFLAGS="--cfg loom"`).
///
/// Protocol invariants, as model-checked:
///
/// * every index in `0..n` is claimed **at most once** across all threads
///   (no double execution);
/// * when no worker aborts, every index is claimed **exactly once** (no
///   lost items);
/// * after [`WorkQueue::abort`], `claim` hands out no new work — the
///   fleet quiesces.
#[derive(Debug)]
pub struct WorkQueue {
    n: usize,
    next: AtomicUsize,
    done: AtomicUsize,
    abort: AtomicBool,
}

impl WorkQueue {
    /// A queue over the work indices `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
        }
    }

    /// Claims the next unclaimed index; `None` once the queue is
    /// exhausted or aborted.
    pub fn claim(&self) -> Option<usize> {
        if self.abort.load(Ordering::Relaxed) {
            return None;
        }
        let index = self.next.fetch_add(1, Ordering::Relaxed);
        (index < self.n).then_some(index)
    }

    /// Records one completed item and returns the completed count.
    pub fn complete(&self) -> usize {
        self.done.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Stops the fleet: no further [`WorkQueue::claim`] succeeds.
    pub fn abort(&self) {
        self.abort.store(true, Ordering::Relaxed);
    }

    /// Whether [`WorkQueue::abort`] has been observed.
    pub fn is_aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    /// Items completed so far.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::Relaxed)
    }
}

/// Work-stealing fan-out over `n` items: workers claim the next unclaimed
/// index from a shared [`WorkQueue`], buffer `(index, result)` pairs
/// locally, and the results are merged by index — deterministic output
/// regardless of thread count or interleaving. The first `Err` aborts the
/// remaining work; a panicked worker surfaces as
/// [`EvalError::WorkerPanicked`].
pub(crate) fn run_work_stealing<T, F>(
    n: usize,
    threads: usize,
    progress: Option<&ProgressFn>,
    stage: EngineStage,
    work: F,
) -> Result<Vec<T>, EvalError>
where
    T: Send,
    F: Fn(usize) -> Result<T, TrainError> + Sync,
{
    run_work_stealing_stateful(n, threads, progress, stage, || (), |_, index| work(index))
}

/// [`run_work_stealing`] with per-worker mutable state: `make_state` runs
/// once per worker thread and the resulting state is threaded through every
/// item that worker claims — how the trainer gives each worker one
/// [`TrainScratch`] reused across its consumers. Determinism is untouched:
/// the claim/abort protocol and the merge-by-index are identical, and the
/// state is scratch-only (every consumer overwrites it before reading), so
/// output remains byte-identical across thread counts and interleavings.
pub(crate) fn run_work_stealing_stateful<S, T, M, F>(
    n: usize,
    threads: usize,
    progress: Option<&ProgressFn>,
    stage: EngineStage,
    make_state: M,
    work: F,
) -> Result<Vec<T>, EvalError>
where
    T: Send,
    M: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> Result<T, TrainError> + Sync,
{
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.clamp(1, n);
    let queue = WorkQueue::new(n);
    let worker = |_worker_id: usize| -> Result<Vec<(usize, T)>, TrainError> {
        let mut local = Vec::new();
        let mut state = make_state();
        while let Some(index) = queue.claim() {
            match work(&mut state, index) {
                Ok(value) => {
                    local.push((index, value));
                    let completed = queue.complete();
                    if let Some(report) = progress {
                        report(stage, completed, n);
                    }
                }
                Err(error) => {
                    queue.abort();
                    return Err(error);
                }
            }
        }
        Ok(local)
    };

    // One entry per worker: the outer Result is the join (panic) outcome,
    // the inner one the worker's own claim-loop result of buffered
    // `(index, value)` pairs.
    type WorkerOutcome<T> = std::thread::Result<Result<Vec<(usize, T)>, TrainError>>;
    let outcomes: Vec<WorkerOutcome<T>> = std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (0..threads)
            .map(|t| scope.spawn(move || worker(t)))
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });

    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut first_error: Option<TrainError> = None;
    let mut panicked = false;
    for outcome in outcomes {
        match outcome {
            Ok(Ok(local)) => {
                for (index, value) in local {
                    slots[index] = Some(value);
                }
            }
            Ok(Err(error)) => {
                if first_error.is_none() {
                    first_error = Some(error);
                }
            }
            Err(_) => panicked = true,
        }
    }
    if let Some(error) = first_error {
        return Err(EvalError::Train(error));
    }
    if panicked {
        return Err(EvalError::WorkerPanicked);
    }
    slots
        .into_iter()
        .map(|slot| slot.ok_or(EvalError::WorkerPanicked))
        .collect()
}

/// Scores one consumer's cached artifact through the full protocol —
/// byte-for-byte the legacy `evaluate_consumer` semantics, with the
/// detector construction replaced by the [`DetectorKind::train`] factory
/// over the artifact.
fn score_consumer(
    artifact: &TrainedConsumer,
    config: &EvalConfig,
) -> Result<ConsumerEval, TrainError> {
    let mut eval = ConsumerEval::empty(artifact.id);
    if !artifact.has_model() {
        eval.skipped = true;
        return Ok(eval);
    }
    let clean_week = artifact.clean_week().ok_or(TrainError::NoTestWindow {
        consumer: artifact.id,
    })?;
    let scheme = PricingScheme::tou_ireland();

    // lint:allow(vec-alloc-in-score-path, once per consumer, not per scored week)
    let mut detectors: Vec<Box<dyn Detector>> = Vec::with_capacity(DetectorKind::ALL.len());
    for kind in DetectorKind::ALL {
        detectors.push(kind.train(artifact)?);
    }
    for kind in DetectorKind::ALL {
        eval.false_positive[kind.index()] = detectors[kind.index()].is_anomalous(&clean_week);
    }

    for scenario in Scenario::ALL {
        let vectors =
            artifact
                .scenario_vectors(scenario, config)
                .ok_or(TrainError::NoTestWindow {
                    consumer: artifact.id,
                })?;
        let gains: Vec<Metric2> = vectors
            .iter()
            .map(|v| gain_of(v, scenario, &scheme))
            // lint:allow(vec-alloc-in-score-path, one small vector per scenario per consumer, not per scored week)
            .collect();
        // Worst case overall: the vector the paper evaluates detectors on.
        let worst_index = gains
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.profit_dollars.total_cmp(&b.1.profit_dollars))
            .map(|(i, _)| i)
            // lint:allow(no-panic-in-lib, EvalConfig::validate rejects attack_vectors == 0, so every scenario yields at least one vector)
            .expect("at least one vector");
        eval.full_gain[scenario.index()] = gains[worst_index];

        for kind in DetectorKind::ALL {
            let det = &detectors[kind.index()];
            let mut best_evading = Metric2::default();
            let mut worst_detected = false;
            for (i, vector) in vectors.iter().enumerate() {
                let flagged = det.is_anomalous(&vector.reported);
                if i == worst_index {
                    worst_detected = flagged;
                }
                if !flagged {
                    best_evading = best_evading.max(gains[i]);
                }
            }
            eval.detected[kind.index()][scenario.index()] = worst_detected;
            eval.evading_gain[kind.index()][scenario.index()] = best_evading;
        }
    }
    Ok(eval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdeta_cer_synth::DatasetConfig;
    use std::sync::atomic::AtomicUsize as Counter;

    fn corpus(consumers: usize, weeks: usize, seed: u64) -> SyntheticDataset {
        SyntheticDataset::generate(&DatasetConfig::small(consumers, weeks, seed))
    }

    fn config() -> EvalConfig {
        EvalConfig {
            threads: 2,
            ..EvalConfig::fast(8, 4)
        }
    }

    #[test]
    fn engine_scores_every_consumer() {
        let data = corpus(5, 12, 11);
        let engine = EvalEngine::train(&data, &config()).expect("valid corpus");
        let eval = engine.evaluate().expect("cached artifacts score");
        assert_eq!(eval.consumers.len(), 5);
        assert_eq!(eval.evaluated_consumers(), 5);
        let stats = engine.stats();
        assert_eq!(stats.consumers, 5);
        assert_eq!(stats.scoring_passes, 1);
        assert!(stats.train_wall > Duration::ZERO);
    }

    #[test]
    fn repeated_scoring_is_identical() {
        let data = corpus(4, 12, 12);
        let engine = EvalEngine::train(&data, &config()).expect("valid corpus");
        let a = engine.evaluate().expect("first pass");
        let b = engine.evaluate().expect("second pass");
        assert_eq!(a, b, "re-scoring cached artifacts must be deterministic");
        assert_eq!(engine.stats().scoring_passes, 2);
    }

    #[test]
    fn too_few_weeks_is_a_typed_error() {
        let data = corpus(3, 8, 13);
        let mut cfg = config();
        cfg.train_weeks = 10; // needs 12 weeks, corpus has 8
        let result = EvalEngine::train(&data, &cfg);
        assert!(
            matches!(
                result,
                Err(EvalError::Train(TrainError::NotEnoughWeeks { .. }))
            ),
            "short history must be a typed error"
        );
    }

    #[test]
    fn invalid_config_is_rejected_before_training() {
        let data = corpus(2, 12, 14);
        let mut cfg = config();
        cfg.attack_vectors = 0;
        assert!(matches!(
            EvalEngine::train(&data, &cfg),
            Err(EvalError::Config(_))
        ));
    }

    #[test]
    fn progress_reports_reach_the_total() {
        let data = corpus(4, 12, 15);
        let seen = std::sync::Arc::new(Counter::new(0));
        let seen_in_cb = seen.clone();
        let engine = EvalEngine::train_with_progress(
            &data,
            &config(),
            Some(Box::new(move |_stage, done, total| {
                assert!(done <= total);
                seen_in_cb.fetch_add(1, Ordering::Relaxed);
            })),
        )
        .expect("valid corpus");
        assert_eq!(seen.load(Ordering::Relaxed), 4, "one report per consumer");
        engine.evaluate().expect("scores");
        assert_eq!(seen.load(Ordering::Relaxed), 8, "scoring reports too");
    }

    #[test]
    fn alpha_sweep_is_monotone_and_counts_modelled_consumers() {
        let data = corpus(6, 12, 16);
        let engine = EvalEngine::train(&data, &config()).expect("valid corpus");
        let points = engine
            .kld_alpha_sweep(&[0.01, 0.05, 0.10, 0.20])
            .expect("sweep");
        assert_eq!(points.len(), 4);
        for pair in points.windows(2) {
            // Lower threshold percentile ⇒ everything flags at least as often.
            assert!(pair[1].false_positive_rate >= pair[0].false_positive_rate - 1e-12);
            assert!(pair[1].detection_over >= pair[0].detection_over - 1e-12);
        }
        assert_eq!(points[0].consumers, engine.modelled_consumers());
    }

    #[test]
    fn roc_points_are_monotone_in_alpha() {
        let data = corpus(5, 12, 17);
        let engine = EvalEngine::train(&data, &config()).expect("valid corpus");
        let curve = engine.kld_roc(&[0.02, 0.10, 0.30]).expect("curve");
        for pair in curve.windows(2) {
            assert!(pair[1].detection_rate >= pair[0].detection_rate - 1e-12);
            assert!(pair[1].false_positive_rate >= pair[0].false_positive_rate - 1e-12);
        }
    }

    #[test]
    fn work_stealing_preserves_input_order() {
        let results = run_work_stealing(17, 4, None, EngineStage::Score, |i| {
            Ok::<usize, TrainError>(i * 10)
        })
        .expect("infallible work");
        assert_eq!(results.len(), 17);
        for (i, v) in results.iter().enumerate() {
            assert_eq!(*v, i * 10);
        }
    }

    #[test]
    fn work_stealing_propagates_the_first_error() {
        let result = run_work_stealing(8, 3, None, EngineStage::Train, |i| {
            if i >= 5 {
                Err(TrainError::ModelUnavailable { consumer: i as u32 })
            } else {
                Ok(i)
            }
        });
        assert!(matches!(result, Err(EvalError::Train(_))));
    }

    #[test]
    fn work_stealing_surfaces_worker_panics_as_errors() {
        let result = run_work_stealing(4, 2, None, EngineStage::Train, |i| {
            if i == 2 {
                panic!("deliberate test panic");
            }
            Ok::<usize, TrainError>(i)
        });
        assert_eq!(result.unwrap_err(), EvalError::WorkerPanicked);
    }

    #[test]
    fn training_is_invariant_across_thread_counts() {
        // One worker (a single TrainScratch reused across every consumer)
        // and four workers (four scratches, work-stealing interleaving)
        // must produce bit-identical artifacts and evaluation output.
        let data = corpus(6, 12, 19);
        let mut one = config();
        one.threads = 1;
        let mut four = config();
        four.threads = 4;
        let e1 = EvalEngine::train(&data, &one).expect("valid corpus");
        let e4 = EvalEngine::train(&data, &four).expect("valid corpus");
        assert_eq!(e1.artifacts().len(), e4.artifacts().len());
        for (a, b) in e1.artifacts().iter().zip(e4.artifacts()) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.kld_base(), b.kld_base());
            assert_eq!(a.conditioned_base(), b.conditioned_base());
            assert_eq!(a.model(), b.model());
            assert_eq!(a.mean_range(), b.mean_range());
            assert_eq!(
                a.pca_at(SignificanceLevel::Five),
                b.pca_at(SignificanceLevel::Five)
            );
        }
        let r1 = e1.evaluate().expect("scores");
        let r4 = e4.evaluate().expect("scores");
        // The configs legitimately differ in their `threads` field, so
        // compare the scored consumers, not the whole Evaluation.
        assert_eq!(
            r1.consumers, r4.consumers,
            "evaluation must not depend on thread count"
        );
    }

    #[test]
    fn worker_scratch_reuse_matches_fresh_scratch_training() {
        // A single-threaded engine reuses one TrainScratch across the whole
        // corpus; every artifact must equal one trained with a fresh
        // scratch per consumer.
        let data = corpus(5, 12, 20);
        let mut cfg = config();
        cfg.threads = 1;
        let engine = EvalEngine::train(&data, &cfg).expect("valid corpus");
        for (index, artifact) in engine.artifacts().iter().enumerate() {
            let fresh = TrainedConsumer::train(data.consumer(index), index, &cfg).expect("trains");
            assert_eq!(artifact.kld_base(), fresh.kld_base());
            assert_eq!(artifact.conditioned_base(), fresh.conditioned_base());
            assert_eq!(artifact.model(), fresh.model());
            assert_eq!(artifact.mean_range(), fresh.mean_range());
            assert_eq!(
                artifact.pca_at(SignificanceLevel::Five),
                fresh.pca_at(SignificanceLevel::Five)
            );
        }
    }

    #[test]
    fn artifact_rethresholding_matches_fresh_training() {
        let data = corpus(3, 12, 18);
        let engine = EvalEngine::train(&data, &config()).expect("valid corpus");
        for artifact in engine.artifacts() {
            for level in [SignificanceLevel::Five, SignificanceLevel::Ten] {
                let fresh =
                    KldDetector::train(artifact.train_matrix(), engine.config().bins, level)
                        .expect("trains");
                assert_eq!(artifact.kld_at(level), fresh);
                let fresh_cond = ConditionedKldDetector::train_tou(
                    artifact.train_matrix(),
                    &TouPlan::ireland_nightsaver(),
                    engine.config().bins,
                    level,
                )
                .expect("trains");
                assert_eq!(artifact.conditioned_at(level), fresh_cond);
            }
        }
    }
}
