//! ROC analysis for threshold detectors.
//!
//! The significance level α trades detection against false positives
//! (Section VIII-F.1 demonstrates the trade-off with two points, 5% and
//! 10%); this module computes the whole operating curve so a utility can
//! pick its own operating point from its alert budget.

use serde::{Deserialize, Serialize};

use fdeta_tsdata::week::{WeekMatrix, WeekVector};
use fdeta_tsdata::TsError;

use crate::kld::KldDetector;

/// One operating point of a threshold detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Upper-tail significance level (1 − threshold percentile).
    pub alpha: f64,
    /// Fraction of attack weeks flagged.
    pub detection_rate: f64,
    /// Fraction of clean weeks flagged.
    pub false_positive_rate: f64,
}

impl RocPoint {
    /// Youden's J statistic (`detection − FP`), a scalar quality of the
    /// operating point.
    pub fn youden_j(&self) -> f64 {
        self.detection_rate - self.false_positive_rate
    }
}

/// Computes the KLD detector's operating curve for one consumer: train
/// **once**, score every week **once**, then re-threshold the cached
/// scores at each significance level (the detector's scores are
/// threshold-independent, so this is exactly the curve per-α retraining
/// would produce, at a fraction of the cost).
///
/// Alphas are clamped into `(0, 1)`; the returned points are in the input
/// order.
///
/// # Errors
///
/// Propagates histogram construction errors from detector training.
pub fn kld_roc_curve(
    train: &WeekMatrix,
    clean_weeks: &[WeekVector],
    attack_weeks: &[WeekVector],
    bins: usize,
    alphas: &[f64],
) -> Result<Vec<RocPoint>, TsError> {
    // The percentile used here is irrelevant: only the cached training
    // quantiles and the week scores matter, and both are shared across α.
    let detector = KldDetector::train(train, bins, crate::kld::SignificanceLevel::Five)?;
    let clean_scores: Vec<f64> = clean_weeks
        .iter()
        .map(|w| detector.score(w))
        .collect::<Result<_, _>>()?;
    let attack_scores: Vec<f64> = attack_weeks
        .iter()
        .map(|w| detector.score(w))
        .collect::<Result<_, _>>()?;
    let mut points = Vec::with_capacity(alphas.len());
    for &alpha in alphas {
        let alpha = alpha.clamp(1e-6, 1.0 - 1e-6);
        let threshold = detector.threshold_at(1.0 - alpha);
        let rate = |scores: &[f64]| {
            if scores.is_empty() {
                return 0.0;
            }
            scores.iter().filter(|&&s| s > threshold).count() as f64 / scores.len() as f64
        };
        points.push(RocPoint {
            alpha,
            detection_rate: rate(&attack_scores),
            false_positive_rate: rate(&clean_scores),
        });
    }
    Ok(points)
}

/// The operating point with the highest Youden's J on a curve, if any.
pub fn best_operating_point(curve: &[RocPoint]) -> Option<RocPoint> {
    // Rates are finite ratios; total_cmp agrees with the partial order
    // there and cannot panic on adversarial input.
    curve
        .iter()
        .copied()
        .max_by(|a, b| a.youden_j().total_cmp(&b.youden_j()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdeta_tsdata::{SLOTS_PER_DAY, SLOTS_PER_WEEK};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn training(weeks: usize, seed: u64) -> WeekMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..weeks * SLOTS_PER_WEEK)
            .map(|i| {
                let slot = i % SLOTS_PER_DAY;
                let base: f64 = if (36..46).contains(&slot) { 2.0 } else { 0.5 };
                (base * rng.gen_range(0.7..1.3)).max(0.0)
            })
            .collect();
        WeekMatrix::from_flat(values).unwrap()
    }

    fn setup() -> (WeekMatrix, Vec<WeekVector>, Vec<WeekVector>) {
        let all = training(36, 9);
        let train = WeekMatrix::from_flat(all.flat()[..30 * SLOTS_PER_WEEK].to_vec()).unwrap();
        let clean: Vec<WeekVector> = (30..36).map(|w| all.week_vector(w)).collect();
        let attacks: Vec<WeekVector> = clean
            .iter()
            .map(|w| WeekVector::new(w.as_slice().iter().map(|v| v * 2.2 + 0.3).collect()).unwrap())
            .collect();
        (train, clean, attacks)
    }

    #[test]
    fn rates_are_monotone_in_alpha() {
        let (train, clean, attacks) = setup();
        let alphas = [0.01, 0.05, 0.10, 0.20, 0.40];
        let curve = kld_roc_curve(&train, &clean, &attacks, 10, &alphas).unwrap();
        assert_eq!(curve.len(), alphas.len());
        for pair in curve.windows(2) {
            assert!(pair[1].detection_rate >= pair[0].detection_rate - 1e-12);
            assert!(pair[1].false_positive_rate >= pair[0].false_positive_rate - 1e-12);
        }
    }

    #[test]
    fn blatant_attacks_dominate_clean_weeks() {
        let (train, clean, attacks) = setup();
        let curve = kld_roc_curve(&train, &clean, &attacks, 10, &[0.05]).unwrap();
        let p = curve[0];
        assert!(p.detection_rate > p.false_positive_rate, "{p:?}");
        assert!(p.youden_j() > 0.5, "doubled consumption is easy: {p:?}");
    }

    #[test]
    fn best_point_maximises_youden() {
        let (train, clean, attacks) = setup();
        let curve = kld_roc_curve(&train, &clean, &attacks, 10, &[0.01, 0.05, 0.1, 0.2]).unwrap();
        let best = best_operating_point(&curve).unwrap();
        for p in &curve {
            assert!(best.youden_j() >= p.youden_j());
        }
        assert!(best_operating_point(&[]).is_none());
    }

    #[test]
    fn rethresholded_curve_matches_per_alpha_retraining() {
        // The optimisation claim, verified: scoring once and re-thresholding
        // is exactly equivalent to retraining the detector per α.
        use crate::detector::Detector;
        let (train, clean, attacks) = setup();
        let alphas = [0.01, 0.05, 0.10, 0.20];
        let curve = kld_roc_curve(&train, &clean, &attacks, 10, &alphas).unwrap();
        for (point, &alpha) in curve.iter().zip(&alphas) {
            let det = KldDetector::train_at_percentile(&train, 10, 1.0 - alpha).unwrap();
            let rate = |weeks: &[WeekVector]| {
                weeks.iter().filter(|w| det.is_anomalous(w)).count() as f64 / weeks.len() as f64
            };
            assert_eq!(point.detection_rate, rate(&attacks));
            assert_eq!(point.false_positive_rate, rate(&clean));
        }
    }

    #[test]
    fn empty_week_sets_yield_zero_rates() {
        let (train, _, _) = setup();
        let curve = kld_roc_curve(&train, &[], &[], 10, &[0.05]).unwrap();
        assert_eq!(curve[0].detection_rate, 0.0);
        assert_eq!(curve[0].false_positive_rate, 0.0);
    }
}
