//! Theft detectors and the paper's evaluation protocol.
//!
//! Three detector families are evaluated in the paper:
//!
//! * [`ArimaDetector`] — the per-reading confidence-interval check of
//!   Badrinath Krishna et al. (CRITIS 2015): a "first-level check on the
//!   range of smart meter readings".
//! * [`IntegratedArimaDetector`] — the same plus weekly mean/variance
//!   range checks derived from the training history.
//! * [`KldDetector`] — the paper's contribution: a non-parametric
//!   multiple-reading detector thresholding the Kullback-Leibler
//!   divergence between a week's histogram and the training histogram at
//!   the 90th/95th percentile of the training KLD distribution
//!   (Section VII-D), with a price-conditioned variant
//!   ([`ConditionedKldDetector`]) that splits the histogram by TOU window
//!   to catch the Optimal Swap attack (Section VIII-F.3).
//!
//! Beyond the paper's detectors, [`PcaDetector`] implements the companion
//! QEST-2015 subspace method, [`roc`] computes full operating curves, and
//! [`budget`] turns a curve plus an investigation capacity into a
//! significance-level choice.
//!
//! [`eval`] reproduces the full Section VIII protocol: train on 60 weeks,
//! inject the Integrated ARIMA attack (worst of 50 vectors) and the
//! Optimal Swap attack into the test period, score every detector with
//! the false-positive penalty rule of Section VIII-E, and aggregate the
//! paper's Metric 1 (detection percentage) and Metric 2 (worst-case kWh
//! stolen and $ profit). [`ttd`] adds the time-to-detection analysis the
//! paper cites from its companion work.
//!
//! [`engine`] is how the protocol actually runs: an [`EvalEngine`] trains
//! one [`TrainedConsumer`] artifact per consumer (ARIMA fit, KLD
//! histograms and quantiles, PCA subspace, integrated ranges) with
//! work-stealing scheduling, then scores the protocol — and any number of
//! threshold sweeps — from the cached artifacts. Failures surface as
//! typed [`EvalError`]s rather than panics.

pub mod arima_detector;
pub mod budget;
/// Byte-level codec primitives, re-exported from `fdeta-tsdata` where they
/// now live so the corpus layer can share them; see
/// [`fdeta_tsdata::codec`] for the format conventions.
pub mod codec {
    pub use fdeta_tsdata::codec::*;
}
pub mod detector;
pub mod engine;
pub mod error;
pub mod eval;
pub mod integrated;
pub mod kld;
pub mod pca;
pub mod prelude;
pub mod robustness;
pub mod roc;
pub mod store;
pub mod stream;
pub(crate) mod sync;
pub mod ttd;

pub use arima_detector::ArimaDetector;
pub use budget::AlertBudget;
pub use detector::{Detector, Verdict};
pub use engine::{
    AlphaPoint, ArtifactParams, EngineStage, EngineStats, EvalEngine, TrainScratch,
    TrainedConsumer, WorkQueue,
};
pub use error::{ConfigError, EvalError, TrainError};
pub use eval::{
    evaluate, DetectorKind, EvalConfig, EvalConfigBuilder, Evaluation, Metric2, Scenario,
    ScenarioResult,
};
pub use integrated::IntegratedArimaDetector;
pub use kld::{BandView, ConditionedKldDetector, KldDetector, KldError, SignificanceLevel};
pub use pca::{PcaDetector, PcaScratch};
pub use robustness::{
    QuarantinedConsumer, RepairAttempt, RobustEngine, RobustEvaluation, RobustnessConfig,
    RobustnessConfigBuilder,
};
pub use roc::{best_operating_point, kld_roc_curve, RocPoint};
pub use store::{ArtifactStore, CacheOutcome, CacheStatus, StoreError, STORE_VERSION};
pub use stream::{
    AlertEvent, AlertTier, HealthConfig, HealthState, MeterHealth, MeterHealthRepr, ServeConfig,
    ServeConfigBuilder, SlidingState, StreamDetector, StreamScorer, WeekSummary,
};
pub use ttd::time_to_detection;
