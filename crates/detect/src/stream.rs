//! Incremental (tick-by-tick) scoring for the streaming service layer.
//!
//! The batch protocol scores whole [`fdeta_tsdata::WeekVector`]s; a live
//! fleet delivers
//! one half-hour reading at a time. [`StreamScorer`] is the per-consumer
//! incremental engine: it maintains a 336-slot sliding window, updates the
//! KLD histograms in O(1) per tick
//! ([`fdeta_tsdata::BinEdges::count_slide`]: decrement
//! the expiring slot's bin, increment the new one), rolls the ARIMA
//! one-step forecast from the cached fit ([`Forecaster::step`]), and at
//! every completed week emits threshold crossings as typed [`AlertEvent`]s
//! graded into [`AlertTier`]s.
//!
//! **Correctness anchor**: after ingesting a batch corpus tick-by-tick,
//! every weekly score is *bit-identical* to the batch detectors on the
//! same weeks. The incremental histogram counts are exact `u64`s over the
//! same multiset of values the batch counting loop sees (same
//! `BinEdges::bin_of` arithmetic, order-independent addition), the
//! divergence is computed by the same
//! [`kl_divergence_smoothed_counts`] over those counts, and the streamed
//! interval check replays [`ArimaDetector::violations`]'s exact
//! forecast-check-observe loop from the same seeded forecaster.
//!
//! PCA and the Integrated ARIMA detector need whole-week statistics with
//! no incremental decomposition; they remain batch-only and are not
//! streamed here.
//!
//! # Degraded mode
//!
//! Live meters go missing: comms drop, readings arrive malformed, meters
//! stick. The scorer mirrors the batch robustness layer's mask machinery
//! ([`fdeta_tsdata::ObservedSeries`]) in streaming form — a per-slot
//! observation bitmask over the sliding window. [`StreamScorer::ingest_gap`]
//! records a masked (unobserved) slot in O(1): the expiring value leaves
//! the histograms and nothing replaces it, so a completed window scores
//! over *observed mass only* — exactly the masked-KLD renormalisation of
//! [`KldDetector::score_masked`], bit-identical on the same mask because
//! both paths feed the same observed multiset (hence the same exact `u64`
//! counts and total) to the same [`kl_divergence_smoothed_counts`] call. A
//! fully masked window yields no [`WeekSummary`]; a fully masked *band*
//! is skipped, matching the batch path's
//! [`crate::kld::KldError::EmptyBand`] rejection. The streamed ARIMA
//! check needs contiguous readings, so a window containing any gap
//! reports [`WeekSummary::arima_violations`] as `None` and resumes at the
//! next window boundary.
//!
//! [`MeterHealth`] is the per-meter escalation ladder a serving fleet
//! drives from tick outcomes (Healthy → Suspect → Quarantined →
//! Probation → Healthy), with a streaming stuck-meter detector reusing
//! `tsdata`'s [`STUCK_RUN_MIN_SLOTS`] contract. [`SlidingState`] captures
//! and restores a scorer's resident window for crash-safe checkpoints.

use serde::{Deserialize, Serialize};

use fdeta_arima::Forecaster;
use fdeta_tsdata::hist::HistScratch;
use fdeta_tsdata::kl::kl_divergence_smoothed_counts;
use fdeta_tsdata::{TsError, SLOTS_PER_WEEK, STUCK_RUN_MIN_SLOTS};

use crate::arima_detector::ArimaDetector;
use crate::engine::TrainedConsumer;
use crate::error::ConfigError;
use crate::kld::{ConditionedKldDetector, KldDetector, SignificanceLevel};

/// Alert severity, ordered: `Low < Medium < High`. Tiers are graded by
/// comparing a detector's score against thresholds at increasingly
/// extreme percentiles of its *training* score distribution, so the tier
/// is monotone in the score by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AlertTier {
    /// Crossed the firing threshold but no higher tier.
    Low,
    /// Crossed the medium-tier percentile threshold.
    Medium,
    /// Crossed the high-tier percentile threshold.
    High,
}

/// Which streamed detector raised an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamDetector {
    /// The unconditioned KLD detector.
    Kld,
    /// One band of the price-conditioned KLD detector.
    CondKld {
        /// Index of the offending band.
        band: usize,
    },
    /// The per-reading ARIMA interval detector (violation count).
    Arima,
}

/// A threshold crossing emitted at a completed scoring window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// The consumer's meter id.
    pub consumer: u32,
    /// Graded severity (monotone in `score`).
    pub tier: AlertTier,
    /// Which detector fired.
    pub detector: StreamDetector,
    /// The detector's score: divergence in bits for the KLD detectors,
    /// violation count for ARIMA.
    pub score: f64,
    /// Completed-window index since the stream started (window 0 is the
    /// first 336 ticks).
    pub window: u64,
}

/// Weekly scoring digest returned when a tick completes a window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeekSummary {
    /// Completed-window index since the stream started.
    pub window: u64,
    /// The unconditioned KLD divergence of the window, in bits —
    /// renormalised over observed mass when the window has gap ticks.
    pub kld_score: f64,
    /// Worst per-band excess over threshold of the conditioned detector
    /// (positive means some band fired). Fully masked bands are skipped;
    /// `-inf` when every band was skipped.
    pub worst_band_excess: f64,
    /// Interval-detector violations in the window: `None` when the
    /// consumer has no fitted ARIMA model *or* the window contained a gap
    /// tick (the streamed forecast needs contiguous readings).
    pub arima_violations: Option<u32>,
    /// Observed (unmasked) ticks the window scored over; 336 for a clean
    /// window.
    pub observed_ticks: u32,
}

/// Streaming service configuration: the alert-tier grading percentiles.
///
/// An alert fires when a score crosses its detector's threshold at
/// `tier_low` (the serving analogue of the batch significance level) and
/// is graded [`AlertTier::Medium`] / [`AlertTier::High`] past the
/// `tier_medium` / `tier_high` percentiles of the training distribution.
/// Prefer [`ServeConfig::builder`] — the same builder family as
/// [`crate::eval::EvalConfig::builder`] and
/// [`crate::robustness::RobustnessConfig::builder`], sharing
/// [`ConfigError`] variants — which rejects conflicting tiers at build
/// time; a hand-written literal is validated when a scorer is built.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Firing percentile (defaults to the 5%-significance threshold).
    pub tier_low: f64,
    /// Medium-severity percentile.
    pub tier_medium: f64,
    /// High-severity percentile.
    pub tier_high: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            tier_low: SignificanceLevel::Five.percentile(),
            tier_medium: 0.99,
            tier_high: 0.999,
        }
    }
}

impl ServeConfig {
    /// A builder that validates at construction.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder::default()
    }

    /// Rejects conflicting alert tiers: the percentiles must be strictly
    /// increasing inside `(0, 1)`, otherwise severity grading would be
    /// ambiguous.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ConflictingAlertTiers`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        let ordered = 0.0 < self.tier_low
            && self.tier_low < self.tier_medium
            && self.tier_medium < self.tier_high
            && self.tier_high < 1.0;
        if !ordered {
            return Err(ConfigError::ConflictingAlertTiers {
                low: self.tier_low,
                medium: self.tier_medium,
                high: self.tier_high,
            });
        }
        Ok(())
    }
}

/// Builder for [`ServeConfig`]: conflicting tier percentiles are rejected
/// by [`ServeConfigBuilder::build`] instead of at the first scored window.
#[derive(Debug, Clone, Default)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Firing percentile of every streamed detector.
    pub fn tier_low(mut self, percentile: f64) -> Self {
        self.config.tier_low = percentile;
        self
    }

    /// Medium-severity percentile.
    pub fn tier_medium(mut self, percentile: f64) -> Self {
        self.config.tier_medium = percentile;
        self
    }

    /// High-severity percentile.
    pub fn tier_high(mut self, percentile: f64) -> Self {
        self.config.tier_high = percentile;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ConflictingAlertTiers`].
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Per-consumer incremental scorer over half-hour ticks.
///
/// Built from a [`TrainedConsumer`] artifact; the trained cores (edges,
/// baselines, training quantiles, ARIMA coefficients) are shared with the
/// artifact behind `Arc`s, so per-scorer resident state is the sliding
/// window, the incremental counts, and the live forecaster buffers —
/// see [`StreamScorer::state_bytes`].
#[derive(Debug, Clone)]
pub struct StreamScorer {
    consumer: u32,
    kld: KldDetector,
    cond: ConditionedKldDetector,
    arima: Option<ArimaDetector>,
    /// Live forecaster for the current window, reset to the detector's
    /// seeded state at every window boundary (matching the per-week clone
    /// in [`ArimaDetector::violations`]).
    live: Option<Forecaster>,
    confidence: f64,
    /// Tier thresholds `[low, medium, high]` for the unconditioned KLD.
    kld_tiers: [f64; 3],
    /// Tier thresholds per conditioned band.
    band_tiers: Vec<[f64; 3]>,
    /// The window's values, indexed by slot-of-week (0.0 in masked slots).
    ring: Vec<f64>,
    /// Per-slot observation bitmask over the ring (bit set = observed) —
    /// the streaming mirror of [`fdeta_tsdata::ObservedSeries`]'s mask.
    ring_mask: Vec<u64>,
    /// Ticks ingested since the stream started (gap ticks included: a gap
    /// advances the window position without contributing observed mass).
    ticks: u64,
    /// Whether the *current* (incomplete) window has seen a gap tick —
    /// suspends the streamed ARIMA check until the next window boundary.
    window_gapped: bool,
    /// Incremental whole-week histogram counts over observed slots.
    kld_counts: HistScratch,
    /// Incremental per-band histogram counts over observed slots.
    band_counts: Vec<HistScratch>,
    /// Interval violations in the current window.
    violations: u32,
    /// Alerts from the most recently completed window (buffer reused).
    alerts: Vec<AlertEvent>,
}

/// Words in the 336-slot observation bitmask.
const MASK_WORDS: usize = SLOTS_PER_WEEK.div_ceil(64);

fn mask_get(mask: &[u64], slot: usize) -> bool {
    mask[slot / 64] & (1u64 << (slot % 64)) != 0
}

fn mask_set(mask: &mut [u64], slot: usize, observed: bool) {
    let bit = 1u64 << (slot % 64);
    if observed {
        mask[slot / 64] |= bit;
    } else {
        mask[slot / 64] &= !bit;
    }
}

impl StreamScorer {
    /// Builds the scorer from a consumer's trained artifact.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ConflictingAlertTiers`] for an invalid tier ladder.
    pub fn new(artifact: &TrainedConsumer, config: &ServeConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let kld = artifact.kld_base().clone();
        let cond = artifact.conditioned_base().clone();
        let arima = artifact.arima_detector().cloned();
        let live = arima.as_ref().map(|a| a.seeded_forecaster().clone());
        let confidence = arima.as_ref().map_or(0.95, ArimaDetector::confidence);
        let kld_tiers = [
            kld.threshold_at(config.tier_low),
            kld.threshold_at(config.tier_medium),
            kld.threshold_at(config.tier_high),
        ];
        let band_tiers = (0..cond.band_count())
            .map(|b| {
                [
                    cond.band_threshold_at(b, config.tier_low),
                    cond.band_threshold_at(b, config.tier_medium),
                    cond.band_threshold_at(b, config.tier_high),
                ]
            })
            .collect();
        let mut kld_counts = HistScratch::new();
        kld.edges().reset_counts(&mut kld_counts);
        let band_counts = (0..cond.band_count())
            .map(|b| {
                let mut scratch = HistScratch::new();
                cond.band_view(b).edges.reset_counts(&mut scratch);
                scratch
            })
            .collect();
        Ok(Self {
            consumer: artifact.id(),
            kld,
            cond,
            arima,
            live,
            confidence,
            kld_tiers,
            band_tiers,
            ring: vec![0.0; SLOTS_PER_WEEK],
            ring_mask: vec![0u64; MASK_WORDS],
            ticks: 0,
            window_gapped: false,
            kld_counts,
            band_counts,
            violations: 0,
            alerts: Vec::new(),
        })
    }

    /// Ingests one half-hour reading. O(1) histogram maintenance per tick;
    /// returns a [`WeekSummary`] when the tick completes a 336-slot
    /// window, at which point [`StreamScorer::alerts`] holds that window's
    /// threshold crossings.
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidValue`] for a non-finite or negative reading
    /// (mirroring [`fdeta_tsdata::week::WeekVector`]'s validation), and
    /// propagates divergence errors from a corrupted artifact.
    pub fn ingest(&mut self, reading: f64) -> Result<Option<WeekSummary>, TsError> {
        if !reading.is_finite() || reading < 0.0 {
            return Err(TsError::InvalidValue {
                what: "tick reading",
                value: reading,
            });
        }
        let slot = (self.ticks % SLOTS_PER_WEEK as u64) as usize;
        if self.ticks >= SLOTS_PER_WEEK as u64 && mask_get(&self.ring_mask, slot) {
            // Steady state over an observed expiring slot: O(1) slide —
            // the expiring value sits in the same slot (hence the same
            // band) as the incoming one.
            let expiring = self.ring[slot];
            self.kld
                .edges()
                .count_slide(&mut self.kld_counts, expiring, reading);
            if let Some(band) = self.cond.band_of(slot) {
                let edges = self.cond.band_view(band).edges;
                edges.count_slide(&mut self.band_counts[band], expiring, reading);
            }
        } else {
            // Warmup (the window is still filling) or a masked expiring
            // slot (nothing to pop): the incoming value only pushes.
            self.kld.edges().count_push(&mut self.kld_counts, reading);
            if let Some(band) = self.cond.band_of(slot) {
                let edges = self.cond.band_view(band).edges;
                edges.count_push(&mut self.band_counts[band], reading);
            }
        }
        self.ring[slot] = reading;
        mask_set(&mut self.ring_mask, slot, true);
        if let Some(live) = self.live.as_mut() {
            // Bit-identical to the batch ArimaDetector::violations loop:
            // forecast, check the clamped interval, then observe.
            let f = live.step(reading, self.confidence);
            if !(f.lower.max(0.0)..=f.upper.max(0.0)).contains(&reading) {
                self.violations += 1;
            }
        }
        self.ticks += 1;
        if self.ticks.is_multiple_of(SLOTS_PER_WEEK as u64) {
            self.close_window()
        } else {
            Ok(None)
        }
    }

    /// Ingests one *gap* tick: the reading for this slot is missing,
    /// invalid, or deliberately unscored (a quarantined meter). The window
    /// position advances but the slot is recorded as masked — the expiring
    /// value leaves the histograms and nothing replaces it, so subsequent
    /// window scores renormalise over observed mass exactly like
    /// [`KldDetector::score_masked`]. The streamed ARIMA check is
    /// suspended for the remainder of the window (its forecast recursion
    /// cannot skip a slot) and re-seeds at the boundary.
    ///
    /// O(1) per tick, and strictly cheaper than [`StreamScorer::ingest`]:
    /// no bin search for an incoming value, no forecast step.
    ///
    /// # Errors
    ///
    /// Propagates divergence errors from a corrupted artifact when the
    /// tick completes a window.
    pub fn ingest_gap(&mut self) -> Result<Option<WeekSummary>, TsError> {
        let slot = (self.ticks % SLOTS_PER_WEEK as u64) as usize;
        if self.ticks >= SLOTS_PER_WEEK as u64 && mask_get(&self.ring_mask, slot) {
            let expiring = self.ring[slot];
            self.kld.edges().count_pop(&mut self.kld_counts, expiring);
            if let Some(band) = self.cond.band_of(slot) {
                let edges = self.cond.band_view(band).edges;
                edges.count_pop(&mut self.band_counts[band], expiring);
            }
        }
        self.ring[slot] = 0.0;
        mask_set(&mut self.ring_mask, slot, false);
        self.window_gapped = true;
        self.violations = 0;
        self.live = None;
        self.ticks += 1;
        if self.ticks.is_multiple_of(SLOTS_PER_WEEK as u64) {
            self.close_window()
        } else {
            Ok(None)
        }
    }

    /// Scores the completed window, refills the alert buffer, and resets
    /// the per-window ARIMA/gap state. Returns `None` (no summary, no
    /// alerts) for a fully masked window — there is no observed mass to
    /// score, the streaming analogue of the batch masked path rejecting an
    /// empty week.
    fn close_window(&mut self) -> Result<Option<WeekSummary>, TsError> {
        let window = self.ticks / SLOTS_PER_WEEK as u64 - 1;
        self.alerts.clear();
        let gapped = self.window_gapped;
        self.window_gapped = false;
        let window_violations = self.violations;
        self.violations = 0;
        if let Some(det) = self.arima.as_ref() {
            // Re-seed the forecaster for the next window (matching the
            // per-week clone in the batch violations loop) — including
            // after a gapped window suspended it.
            self.live = Some(det.seeded_forecaster().clone());
        }
        let observed = self.kld_counts.total();
        if observed == 0 {
            return Ok(None);
        }
        let kld_score = kl_divergence_smoothed_counts(
            self.kld_counts.counts(),
            observed,
            self.kld.baseline().counts(),
            self.kld.baseline().total(),
        )?;
        if kld_score > self.kld_tiers[0] {
            self.alerts.push(AlertEvent {
                consumer: self.consumer,
                tier: grade(kld_score, &self.kld_tiers),
                detector: StreamDetector::Kld,
                score: kld_score,
                window,
            });
        }
        let mut worst_band_excess = f64::NEG_INFINITY;
        for band in 0..self.cond.band_count() {
            if self.band_counts[band].total() == 0 {
                // Every slot of this band was masked: the batch path
                // rejects it as KldError::EmptyBand; the stream skips it.
                continue;
            }
            let view = self.cond.band_view(band);
            let score = kl_divergence_smoothed_counts(
                self.band_counts[band].counts(),
                self.band_counts[band].total(),
                view.baseline.counts(),
                view.baseline.total(),
            )?;
            worst_band_excess = worst_band_excess.max(score - view.threshold);
            let tiers = self.band_tiers[band];
            if score > tiers[0] {
                self.alerts.push(AlertEvent {
                    consumer: self.consumer,
                    tier: grade(score, &tiers),
                    detector: StreamDetector::CondKld { band },
                    score,
                    window,
                });
            }
        }
        // A gapped window never grades ARIMA: the forecast recursion was
        // suspended at the first gap, so its violation count is partial.
        let arima_violations = if gapped {
            None
        } else {
            self.arima.as_ref().map(|det| {
                let v = f64::from(window_violations);
                if v > det.threshold() {
                    self.alerts.push(AlertEvent {
                        consumer: self.consumer,
                        tier: arima_tier(v, det),
                        detector: StreamDetector::Arima,
                        score: v,
                        window,
                    });
                }
                window_violations
            })
        };
        Ok(Some(WeekSummary {
            window,
            kld_score,
            worst_band_excess,
            arima_violations,
            observed_ticks: u32::try_from(observed).unwrap_or(u32::MAX),
        }))
    }

    /// Threshold crossings of the most recently completed window (empty
    /// until the first window completes, and between crossings).
    pub fn alerts(&self) -> &[AlertEvent] {
        &self.alerts
    }

    /// The unconditioned KLD divergence of the *current* sliding window
    /// (the last 336 ticks), without waiting for a window boundary.
    ///
    /// # Errors
    ///
    /// As [`StreamScorer::ingest`]'s divergence errors; meaningless (an
    /// under-filled histogram) before [`StreamScorer::window_filled`].
    pub fn kld_score(&self) -> Result<f64, TsError> {
        kl_divergence_smoothed_counts(
            self.kld_counts.counts(),
            self.kld_counts.total(),
            self.kld.baseline().counts(),
            self.kld.baseline().total(),
        )
    }

    /// Per-band `(score, threshold)` of the current sliding window,
    /// visited in band order — the streaming analogue of
    /// [`ConditionedKldDetector::visit_band_scores`], allocation-free.
    ///
    /// # Errors
    ///
    /// As [`StreamScorer::kld_score`].
    pub fn visit_band_scores<F>(&self, mut visit: F) -> Result<(), TsError>
    where
        F: FnMut(f64, f64),
    {
        for band in 0..self.cond.band_count() {
            let view = self.cond.band_view(band);
            let score = kl_divergence_smoothed_counts(
                self.band_counts[band].counts(),
                self.band_counts[band].total(),
                view.baseline.counts(),
                view.baseline.total(),
            )?;
            visit(score, view.threshold);
        }
        Ok(())
    }

    /// The consumer's meter id.
    pub fn consumer(&self) -> u32 {
        self.consumer
    }

    /// Ticks ingested since the stream started.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Whether a full 336-tick window has been ingested (sliding-window
    /// scores are meaningful from here on).
    pub fn window_filled(&self) -> bool {
        self.ticks >= SLOTS_PER_WEEK as u64
    }

    /// Observed (unmasked) ticks currently contributing to the sliding
    /// window; equals the window length only when no slot is masked.
    pub fn observed_in_window(&self) -> u64 {
        self.kld_counts.total()
    }

    /// Whether the current (incomplete) window has seen a gap tick.
    pub fn window_gapped(&self) -> bool {
        self.window_gapped
    }

    /// Captures the scorer's resident sliding state for a checkpoint. The
    /// trained cores are *not* captured — they are reloaded from the
    /// artifact store — and neither are the incremental histogram counts
    /// or the live forecaster, both of which are pure functions of
    /// `(ring, mask, ticks)` and are rebuilt by
    /// [`StreamScorer::restore_sliding`]. Keeping derived state out of the
    /// snapshot makes it impossible for a checkpoint to carry counts that
    /// disagree with its own window.
    pub fn sliding_state(&self) -> SlidingState {
        SlidingState {
            ring: self.ring.clone(),
            ring_mask: self.ring_mask.clone(),
            ticks: self.ticks,
            window_gapped: self.window_gapped,
        }
    }

    /// Restores a state captured by [`StreamScorer::sliding_state`] onto a
    /// freshly built scorer for the same artifact: rebuilds the histogram
    /// counts by re-counting the observed slots (order-independent `u64`
    /// additions — bit-identical to having streamed them) and replays the
    /// current window's readings through a re-seeded forecaster (the live
    /// forecaster is reset at every window boundary, so its state depends
    /// only on the current window — the replay reproduces it exactly).
    ///
    /// # Errors
    ///
    /// [`TsError::NotWeekAligned`] for a ring/mask of the wrong length,
    /// [`TsError::InvalidValue`] for a non-finite or negative observed
    /// value.
    pub fn restore_sliding(&mut self, state: &SlidingState) -> Result<(), TsError> {
        if state.ring.len() != SLOTS_PER_WEEK || state.ring_mask.len() != MASK_WORDS {
            return Err(TsError::NotWeekAligned {
                len: state.ring.len(),
            });
        }
        let filled = usize::try_from(state.ticks.min(SLOTS_PER_WEEK as u64)).unwrap_or(0);
        for slot in 0..SLOTS_PER_WEEK {
            let observed = slot < filled && mask_get(&state.ring_mask, slot);
            if observed {
                let value = state.ring[slot];
                if !value.is_finite() || value < 0.0 {
                    return Err(TsError::InvalidValue {
                        what: "restored tick reading",
                        value,
                    });
                }
                self.ring[slot] = value;
            } else {
                // Normalise: unobserved slots carry no information.
                self.ring[slot] = 0.0;
            }
            mask_set(&mut self.ring_mask, slot, observed);
        }
        self.ticks = state.ticks;
        let pos = (state.ticks % SLOTS_PER_WEEK as u64) as usize;
        // The gapped flag is fully determined by the mask: a gap in the
        // current window is exactly a masked slot at a position already
        // ticked this window. Deriving it (instead of trusting the stored
        // flag) keeps a corrupt snapshot from desynchronising the replay;
        // for any state the scorer itself produced the two agree.
        self.window_gapped = (0..pos.min(filled)).any(|slot| !mask_get(&self.ring_mask, slot));
        // Rebuild the incremental counts from the observed window. The
        // observed slots are gathered per destination first and counted
        // with one batched histogram pass per edge set, instead of one
        // bin lookup per value — bit-identical by the documented
        // batch/incremental contract (`BinEdges::reset_counts`), and the
        // dominant cost of a fleet-scale restore before batching.
        self.kld_counts.gather_mut();
        for scratch in &mut self.band_counts {
            scratch.gather_mut();
        }
        for slot in 0..filled {
            if !mask_get(&self.ring_mask, slot) {
                continue;
            }
            let value = self.ring[slot];
            self.kld_counts.gather_push(value);
            if let Some(band) = self.cond.band_of(slot) {
                self.band_counts[band].gather_push(value);
            }
        }
        self.kld.edges().histogram_gathered(&mut self.kld_counts);
        for band in 0..self.cond.band_count() {
            let edges = self.cond.band_view(band).edges;
            edges.histogram_gathered(&mut self.band_counts[band]);
        }
        // Rebuild the per-window ARIMA state. A gapped window has its
        // forecast suspended; otherwise every tick of the current partial
        // window (positions 0..pos) was observed, so the replay walks them
        // in ingest order.
        self.violations = 0;
        self.alerts.clear();
        if self.window_gapped {
            self.live = None;
        } else if let Some(det) = self.arima.as_ref() {
            let mut live = det.seeded_forecaster().clone();
            for &reading in &self.ring[..pos] {
                let f = live.step(reading, self.confidence);
                if !(f.lower.max(0.0)..=f.upper.max(0.0)).contains(&reading) {
                    self.violations += 1;
                }
            }
            self.live = Some(live);
        }
        Ok(())
    }

    /// Whether this consumer streams the ARIMA interval check (false when
    /// the artifact has no fitted model).
    pub fn has_arima(&self) -> bool {
        self.arima.is_some()
    }

    /// Bytes of *per-scorer* resident state: the sliding window, the
    /// incremental counts, tier ladders, the alert buffer, and the live
    /// forecaster buffers. Trained cores (histogram baselines, training
    /// quantiles, model coefficients) are `Arc`-shared with the artifact
    /// store and excluded — they are fleet-resident once, not per meter.
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.ring.capacity() * std::mem::size_of::<f64>()
            + self.ring_mask.capacity() * std::mem::size_of::<u64>()
            + self.kld_counts.heap_bytes()
            + self
                .band_counts
                .iter()
                .map(HistScratch::heap_bytes)
                .sum::<usize>()
            + self.band_tiers.capacity() * std::mem::size_of::<[f64; 3]>()
            + self.alerts.capacity() * std::mem::size_of::<AlertEvent>()
            + self.live.as_ref().map_or(0, Forecaster::heap_bytes)
            + self
                .arima
                .as_ref()
                .map_or(0, |a| a.seeded_forecaster().heap_bytes())
    }
}

/// A scorer's resident sliding state, captured for a crash-safe
/// checkpoint by [`StreamScorer::sliding_state`] and reapplied by
/// [`StreamScorer::restore_sliding`].
///
/// Only the irreducible state is here: the windowed values, their
/// observation mask, and the stream position. Histogram counts and the
/// live forecaster are derived from these on restore, so a snapshot can
/// never carry counts that contradict its own window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlidingState {
    /// The window's values, indexed by slot-of-week (0.0 in masked slots).
    pub ring: Vec<f64>,
    /// Per-slot observation bitmask (bit set = observed).
    pub ring_mask: Vec<u64>,
    /// Ticks ingested since the stream started.
    pub ticks: u64,
    /// Whether the current window had seen a gap at capture time. Recorded
    /// for self-description; the restore derives the flag from the mask,
    /// which agrees for any state the scorer itself produced.
    pub window_gapped: bool,
}

/// A meter's position on the serving health ladder.
///
/// ```text
///            bad*suspect_after            bad*quarantine_after | stuck
///  Healthy ───────────────────▶ Suspect ───────────────────────▶ Quarantined
///     ▲                            │ good                            │
///     │                            ▼                                 │ good*probation_after
///     │◀───────────────────── Healthy ◀── good*heal_after ── Probation
///                                                  (any bad: back to Quarantined)
/// ```
///
/// Quarantined is the only non-scoring state: the fleet advances a
/// quarantined meter's window position with gap ticks (keeping probation
/// re-entry seamless) but spends no histogram or forecast work on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HealthState {
    /// Scoring normally.
    Healthy,
    /// A short run of bad ticks; still scoring (the bad ticks themselves
    /// are masked gaps), one good tick heals.
    Suspect,
    /// Not scoring: telemetry is unusable (a long bad run) or untrustworthy
    /// (a stuck meter repeating one value).
    Quarantined,
    /// Scoring again after a quarantine, but one bad tick re-quarantines;
    /// a full clean week completes recovery.
    Probation,
}

/// Escalation/recovery thresholds for [`MeterHealth`], in ticks.
///
/// Validated by [`HealthConfig::validate`]: every rung at least 1,
/// `suspect_after <= quarantine_after` (a meter passes through Suspect on
/// its way down) and `probation_after <= heal_after` (it passes through
/// Probation on its way back up), `stuck_after >= 2` (a single reading
/// cannot be "stuck").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Consecutive bad ticks before Healthy demotes to Suspect.
    pub suspect_after: u32,
    /// Consecutive bad ticks before quarantine (default one day).
    pub quarantine_after: u32,
    /// Consecutive good ticks before a quarantined meter re-enters scoring
    /// on probation (default one day).
    pub probation_after: u32,
    /// Consecutive good ticks before a probationary meter is fully healthy
    /// (default one week).
    pub heal_after: u32,
    /// Consecutive bit-identical positive readings before the meter is
    /// considered stuck and quarantined — the streaming analogue of
    /// `tsdata`'s batch stuck-run detector, sharing its
    /// [`STUCK_RUN_MIN_SLOTS`] default.
    pub stuck_after: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            suspect_after: 3,
            quarantine_after: 48,
            probation_after: 48,
            // lint:allow(lossy-cast-in-datapath, compile-time constant 336 fits u32)
            heal_after: SLOTS_PER_WEEK as u32,
            // lint:allow(lossy-cast-in-datapath, compile-time constant fits u32)
            stuck_after: STUCK_RUN_MIN_SLOTS as u32,
        }
    }
}

impl HealthConfig {
    /// Rejects an inconsistent ladder.
    ///
    /// # Errors
    ///
    /// [`ConfigError::InvalidHealthLadder`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        let what = if self.suspect_after == 0 || self.probation_after == 0 {
            Some("every rung must be at least 1 tick")
        } else if self.suspect_after > self.quarantine_after {
            Some("suspect_after must not exceed quarantine_after")
        } else if self.probation_after > self.heal_after {
            Some("probation_after must not exceed heal_after")
        } else if self.stuck_after < 2 {
            Some("stuck_after must be at least 2")
        } else {
            None
        };
        match what {
            Some(what) => Err(ConfigError::InvalidHealthLadder { what }),
            None => Ok(()),
        }
    }
}

/// Streaming per-meter health state machine (see [`HealthState`] for the
/// ladder). Driven by the fleet with one [`MeterHealth::observe_valid`] or
/// [`MeterHealth::observe_bad`] call per tick; the returned post-transition
/// state decides whether the tick is scored (`!= Quarantined`) or recorded
/// as a gap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeterHealth {
    state: HealthState,
    /// Consecutive bad ticks.
    bad_run: u32,
    /// Consecutive good (valid, non-stuck) ticks.
    good_run: u32,
    /// Bit pattern of the last valid reading, for stuck detection.
    stuck_bits: u64,
    /// Consecutive valid readings bit-identical to `stuck_bits` (positive
    /// values only — flat zero consumption is legitimate).
    stuck_run: u32,
    /// Ticks not scored: bad, missing, or quarantined.
    gap_ticks: u64,
    /// Total ticks observed by this machine.
    ticks: u64,
}

impl Default for MeterHealth {
    fn default() -> Self {
        Self {
            state: HealthState::Healthy,
            bad_run: 0,
            good_run: 0,
            stuck_bits: 0,
            stuck_run: 0,
            gap_ticks: 0,
            ticks: 0,
        }
    }
}

impl MeterHealth {
    /// A fresh machine in [`HealthState::Healthy`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes a *valid* reading (finite, non-negative) and returns the
    /// post-transition state. The caller scores the tick unless the
    /// returned state is [`HealthState::Quarantined`].
    pub fn observe_valid(&mut self, config: &HealthConfig, value: f64) -> HealthState {
        self.ticks += 1;
        self.bad_run = 0;
        if value > 0.0 && value.to_bits() == self.stuck_bits {
            self.stuck_run = self.stuck_run.saturating_add(1);
        } else {
            self.stuck_bits = value.to_bits();
            self.stuck_run = 1;
        }
        if self.stuck_run >= config.stuck_after {
            // A stuck meter repeats one plausible value: the readings are
            // individually valid but carry no information, and a histogram
            // of them is pure distortion. Quarantine, and hold the
            // recovery clock at zero until the value moves.
            self.state = HealthState::Quarantined;
            self.good_run = 0;
        } else {
            self.good_run = self.good_run.saturating_add(1);
            match self.state {
                HealthState::Healthy => {}
                HealthState::Suspect => self.state = HealthState::Healthy,
                HealthState::Quarantined => {
                    if self.good_run >= config.probation_after {
                        self.state = HealthState::Probation;
                    }
                }
                HealthState::Probation => {
                    if self.good_run >= config.heal_after {
                        self.state = HealthState::Healthy;
                    }
                }
            }
        }
        if self.state == HealthState::Quarantined {
            self.gap_ticks += 1;
        }
        self.state
    }

    /// Observes a bad tick (invalid or missing reading) and returns the
    /// post-transition state. Bad ticks are never scored regardless of
    /// state — the caller records a gap.
    pub fn observe_bad(&mut self, config: &HealthConfig) -> HealthState {
        self.ticks += 1;
        self.gap_ticks += 1;
        self.good_run = 0;
        self.stuck_run = 0;
        self.bad_run = self.bad_run.saturating_add(1);
        match self.state {
            // Probation is one-strike: a meter that just recovered and
            // immediately fails goes straight back.
            HealthState::Probation => self.state = HealthState::Quarantined,
            HealthState::Quarantined => {}
            HealthState::Healthy | HealthState::Suspect => {
                if self.bad_run >= config.quarantine_after {
                    self.state = HealthState::Quarantined;
                } else if self.bad_run >= config.suspect_after {
                    self.state = HealthState::Suspect;
                }
            }
        }
        self.state
    }

    /// The current ladder position.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Whether ticks are currently scored (everything but Quarantined).
    pub fn is_scoring(&self) -> bool {
        self.state != HealthState::Quarantined
    }

    /// Ticks not scored so far (bad, missing, or quarantined).
    pub fn gap_ticks(&self) -> u64 {
        self.gap_ticks
    }

    /// Total ticks observed by this machine.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

/// The raw fields of a [`MeterHealth`], for checkpoint codecs — the same
/// pattern as `KldDetectorRepr`: the machine's fields stay private, the
/// repr is the stable exchange surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeterHealthRepr {
    /// Ladder position.
    pub state: HealthState,
    /// Consecutive bad ticks.
    pub bad_run: u32,
    /// Consecutive good ticks.
    pub good_run: u32,
    /// Bit pattern of the last valid reading.
    pub stuck_bits: u64,
    /// Consecutive readings matching `stuck_bits`.
    pub stuck_run: u32,
    /// Ticks not scored.
    pub gap_ticks: u64,
    /// Total ticks observed.
    pub ticks: u64,
}

impl From<&MeterHealth> for MeterHealthRepr {
    fn from(h: &MeterHealth) -> Self {
        Self {
            state: h.state,
            bad_run: h.bad_run,
            good_run: h.good_run,
            stuck_bits: h.stuck_bits,
            stuck_run: h.stuck_run,
            gap_ticks: h.gap_ticks,
            ticks: h.ticks,
        }
    }
}

impl From<MeterHealthRepr> for MeterHealth {
    fn from(r: MeterHealthRepr) -> Self {
        Self {
            state: r.state,
            bad_run: r.bad_run,
            good_run: r.good_run,
            stuck_bits: r.stuck_bits,
            stuck_run: r.stuck_run,
            gap_ticks: r.gap_ticks,
            ticks: r.ticks,
        }
    }
}

/// Grades a score against a sorted `[low, medium, high]` threshold
/// ladder; callers only invoke it past `tiers[0]`.
fn grade(score: f64, tiers: &[f64; 3]) -> AlertTier {
    if score > tiers[2] {
        AlertTier::High
    } else if score > tiers[1] {
        AlertTier::Medium
    } else {
        AlertTier::Low
    }
}

/// Grades an interval-violation count by its binomial excess over the
/// nominal rate: `Medium` one standard deviation past the firing margin,
/// `High` two past it. Monotone in the count.
fn arima_tier(violations: f64, det: &ArimaDetector) -> AlertTier {
    let n = SLOTS_PER_WEEK as f64;
    let p = 1.0 - det.confidence();
    let sigma = (n * p * (1.0 - p)).sqrt();
    let excess = (violations - n * p) / sigma;
    if excess >= det.z_margin() + 2.0 {
        AlertTier::High
    } else if excess >= det.z_margin() + 1.0 {
        AlertTier::Medium
    } else {
        AlertTier::Low
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EvalEngine;
    use crate::eval::EvalConfig;
    use fdeta_cer_synth::{DatasetConfig, SyntheticDataset};
    use fdeta_tsdata::week::WeekVector;

    fn engine() -> EvalEngine {
        let data = SyntheticDataset::generate(&DatasetConfig::small(3, 14, 41));
        let config = EvalConfig {
            threads: 1,
            ..EvalConfig::fast(8, 3)
        };
        EvalEngine::train(&data, &config).unwrap()
    }

    #[test]
    fn tick_ingest_matches_batch_scores_bit_identically() {
        let engine = engine();
        for (index, artifact) in engine.artifacts().iter().enumerate() {
            let mut scorer = StreamScorer::new(artifact, &ServeConfig::default()).unwrap();
            let test = artifact.test_matrix().unwrap();
            let mut summaries = Vec::new();
            for w in 0..test.weeks() {
                let week = test.week_vector(w);
                for &reading in week.as_slice() {
                    if let Some(summary) = scorer.ingest(reading).unwrap() {
                        summaries.push(summary);
                    }
                }
            }
            assert_eq!(summaries.len(), test.weeks());
            for (summary, w) in summaries.iter().zip(0..test.weeks()) {
                let week = test.week_vector(w);
                let batch_kld = artifact.kld_base().score(&week).unwrap();
                assert_eq!(
                    summary.kld_score.to_bits(),
                    batch_kld.to_bits(),
                    "consumer {index} week {w}: stream KLD must be bit-identical"
                );
                let mut batch_excess = f64::NEG_INFINITY;
                artifact
                    .conditioned_base()
                    .visit_band_scores(&week, None, |s, t| {
                        batch_excess = batch_excess.max(s - t);
                    })
                    .unwrap();
                assert_eq!(summary.worst_band_excess.to_bits(), batch_excess.to_bits());
                if let Some(v) = summary.arima_violations {
                    let batch_v = artifact.arima_detector().unwrap().violations(&week);
                    assert_eq!(v as usize, batch_v, "consumer {index} week {w}");
                }
            }
        }
    }

    #[test]
    fn alerts_fire_on_an_inflated_window_and_grade_high() {
        let engine = engine();
        let artifact = &engine.artifacts()[0];
        let mut scorer = StreamScorer::new(artifact, &ServeConfig::default()).unwrap();
        // One clean held-out week, then the same week at triple scale: the
        // KLD detector must stay quiet, then fire with a severe tier.
        let week = artifact.test_matrix().unwrap().week_vector(0);
        let mut clean_alerts = 0;
        for &r in week.as_slice() {
            if scorer.ingest(r).unwrap().is_some() {
                clean_alerts = scorer
                    .alerts()
                    .iter()
                    .filter(|a| a.detector == StreamDetector::Kld)
                    .count();
            }
        }
        assert_eq!(clean_alerts, 0, "training-like week must not alert");
        let mut fired = None;
        for &r in week.as_slice() {
            if scorer.ingest(r * 3.0).unwrap().is_some() {
                fired = scorer
                    .alerts()
                    .iter()
                    .find(|a| a.detector == StreamDetector::Kld)
                    .copied();
            }
        }
        let alert = fired.expect("tripled week must cross the KLD threshold");
        assert_eq!(alert.consumer, artifact.id());
        assert_eq!(alert.tier, AlertTier::High);
        assert_eq!(alert.window, 1);
    }

    #[test]
    fn sliding_score_tracks_any_336_tick_window() {
        let engine = engine();
        let artifact = &engine.artifacts()[1];
        let mut scorer = StreamScorer::new(artifact, &ServeConfig::default()).unwrap();
        let flat = artifact.test_matrix().unwrap().flat();
        // Feed 1.5 weeks and compare the mid-week sliding window against a
        // batch score of the same 336 values.
        let ticks = SLOTS_PER_WEEK + SLOTS_PER_WEEK / 2;
        for &r in &flat[..ticks] {
            scorer.ingest(r).unwrap();
        }
        let window: Vec<f64> = flat[ticks - SLOTS_PER_WEEK..ticks].to_vec();
        let batch = artifact
            .kld_base()
            .score(&WeekVector::new(window).unwrap())
            .unwrap();
        assert_eq!(scorer.kld_score().unwrap().to_bits(), batch.to_bits());
    }

    #[test]
    fn invalid_readings_are_typed_errors() {
        let engine = engine();
        let mut scorer =
            StreamScorer::new(&engine.artifacts()[0], &ServeConfig::default()).unwrap();
        assert!(scorer.ingest(f64::NAN).is_err());
        assert!(scorer.ingest(-1.0).is_err());
        assert_eq!(scorer.ticks(), 0, "rejected ticks must not advance state");
    }

    #[test]
    fn conflicting_tiers_rejected_at_build_time() {
        assert!(matches!(
            ServeConfig::builder().tier_medium(0.5).build(),
            Err(ConfigError::ConflictingAlertTiers { .. })
        ));
        assert!(matches!(
            ServeConfig::builder().tier_high(1.0).build(),
            Err(ConfigError::ConflictingAlertTiers { .. })
        ));
        assert!(ServeConfig::builder().build().is_ok());
    }

    #[test]
    fn state_bytes_are_bounded_and_positive() {
        let engine = engine();
        let artifact = &engine.artifacts()[0];
        let mut scorer = StreamScorer::new(artifact, &ServeConfig::default()).unwrap();
        let before = scorer.state_bytes();
        assert!(before > 0);
        let flat = artifact.test_matrix().unwrap().flat();
        for &r in &flat[..3 * SLOTS_PER_WEEK] {
            scorer.ingest(r).unwrap();
        }
        let after = scorer.state_bytes();
        // The forecaster buffers are bounded and everything else is
        // fixed-size: three weeks of ticks must not balloon the state.
        assert!(after < before + 8 * 1024, "state grew {before} -> {after}");
    }
}
