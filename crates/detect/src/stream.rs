//! Incremental (tick-by-tick) scoring for the streaming service layer.
//!
//! The batch protocol scores whole [`fdeta_tsdata::WeekVector`]s; a live
//! fleet delivers
//! one half-hour reading at a time. [`StreamScorer`] is the per-consumer
//! incremental engine: it maintains a 336-slot sliding window, updates the
//! KLD histograms in O(1) per tick
//! ([`fdeta_tsdata::BinEdges::count_slide`]: decrement
//! the expiring slot's bin, increment the new one), rolls the ARIMA
//! one-step forecast from the cached fit ([`Forecaster::step`]), and at
//! every completed week emits threshold crossings as typed [`AlertEvent`]s
//! graded into [`AlertTier`]s.
//!
//! **Correctness anchor**: after ingesting a batch corpus tick-by-tick,
//! every weekly score is *bit-identical* to the batch detectors on the
//! same weeks. The incremental histogram counts are exact `u64`s over the
//! same multiset of values the batch counting loop sees (same
//! [`BinEdges::bin_of`] arithmetic, order-independent addition), the
//! divergence is computed by the same
//! [`kl_divergence_smoothed_counts`] over those counts, and the streamed
//! interval check replays [`ArimaDetector::violations`]'s exact
//! forecast-check-observe loop from the same seeded forecaster.
//!
//! PCA and the Integrated ARIMA detector need whole-week statistics with
//! no incremental decomposition; they remain batch-only and are not
//! streamed here.

use serde::{Deserialize, Serialize};

use fdeta_arima::Forecaster;
use fdeta_tsdata::hist::HistScratch;
use fdeta_tsdata::kl::kl_divergence_smoothed_counts;
use fdeta_tsdata::{TsError, SLOTS_PER_WEEK};

use crate::arima_detector::ArimaDetector;
use crate::engine::TrainedConsumer;
use crate::error::ConfigError;
use crate::kld::{ConditionedKldDetector, KldDetector, SignificanceLevel};

/// Alert severity, ordered: `Low < Medium < High`. Tiers are graded by
/// comparing a detector's score against thresholds at increasingly
/// extreme percentiles of its *training* score distribution, so the tier
/// is monotone in the score by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AlertTier {
    /// Crossed the firing threshold but no higher tier.
    Low,
    /// Crossed the medium-tier percentile threshold.
    Medium,
    /// Crossed the high-tier percentile threshold.
    High,
}

/// Which streamed detector raised an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamDetector {
    /// The unconditioned KLD detector.
    Kld,
    /// One band of the price-conditioned KLD detector.
    CondKld {
        /// Index of the offending band.
        band: usize,
    },
    /// The per-reading ARIMA interval detector (violation count).
    Arima,
}

/// A threshold crossing emitted at a completed scoring window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// The consumer's meter id.
    pub consumer: u32,
    /// Graded severity (monotone in `score`).
    pub tier: AlertTier,
    /// Which detector fired.
    pub detector: StreamDetector,
    /// The detector's score: divergence in bits for the KLD detectors,
    /// violation count for ARIMA.
    pub score: f64,
    /// Completed-window index since the stream started (window 0 is the
    /// first 336 ticks).
    pub window: u64,
}

/// Weekly scoring digest returned when a tick completes a window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeekSummary {
    /// Completed-window index since the stream started.
    pub window: u64,
    /// The unconditioned KLD divergence of the window, in bits.
    pub kld_score: f64,
    /// Worst per-band excess over threshold of the conditioned detector
    /// (positive means some band fired).
    pub worst_band_excess: f64,
    /// Interval-detector violations in the window, when the consumer has a
    /// fitted ARIMA model.
    pub arima_violations: Option<u32>,
}

/// Streaming service configuration: the alert-tier grading percentiles.
///
/// An alert fires when a score crosses its detector's threshold at
/// `tier_low` (the serving analogue of the batch significance level) and
/// is graded [`AlertTier::Medium`] / [`AlertTier::High`] past the
/// `tier_medium` / `tier_high` percentiles of the training distribution.
/// Prefer [`ServeConfig::builder`] — the same builder family as
/// [`crate::eval::EvalConfig::builder`] and
/// [`crate::robustness::RobustnessConfig::builder`], sharing
/// [`ConfigError`] variants — which rejects conflicting tiers at build
/// time; a hand-written literal is validated when a scorer is built.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Firing percentile (defaults to the 5%-significance threshold).
    pub tier_low: f64,
    /// Medium-severity percentile.
    pub tier_medium: f64,
    /// High-severity percentile.
    pub tier_high: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            tier_low: SignificanceLevel::Five.percentile(),
            tier_medium: 0.99,
            tier_high: 0.999,
        }
    }
}

impl ServeConfig {
    /// A builder that validates at construction.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder::default()
    }

    /// Rejects conflicting alert tiers: the percentiles must be strictly
    /// increasing inside `(0, 1)`, otherwise severity grading would be
    /// ambiguous.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ConflictingAlertTiers`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        let ordered = 0.0 < self.tier_low
            && self.tier_low < self.tier_medium
            && self.tier_medium < self.tier_high
            && self.tier_high < 1.0;
        if !ordered {
            return Err(ConfigError::ConflictingAlertTiers {
                low: self.tier_low,
                medium: self.tier_medium,
                high: self.tier_high,
            });
        }
        Ok(())
    }
}

/// Builder for [`ServeConfig`]: conflicting tier percentiles are rejected
/// by [`ServeConfigBuilder::build`] instead of at the first scored window.
#[derive(Debug, Clone, Default)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Firing percentile of every streamed detector.
    pub fn tier_low(mut self, percentile: f64) -> Self {
        self.config.tier_low = percentile;
        self
    }

    /// Medium-severity percentile.
    pub fn tier_medium(mut self, percentile: f64) -> Self {
        self.config.tier_medium = percentile;
        self
    }

    /// High-severity percentile.
    pub fn tier_high(mut self, percentile: f64) -> Self {
        self.config.tier_high = percentile;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ConflictingAlertTiers`].
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Per-consumer incremental scorer over half-hour ticks.
///
/// Built from a [`TrainedConsumer`] artifact; the trained cores (edges,
/// baselines, training quantiles, ARIMA coefficients) are shared with the
/// artifact behind `Arc`s, so per-scorer resident state is the sliding
/// window, the incremental counts, and the live forecaster buffers —
/// see [`StreamScorer::state_bytes`].
#[derive(Debug, Clone)]
pub struct StreamScorer {
    consumer: u32,
    kld: KldDetector,
    cond: ConditionedKldDetector,
    arima: Option<ArimaDetector>,
    /// Live forecaster for the current window, reset to the detector's
    /// seeded state at every window boundary (matching the per-week clone
    /// in [`ArimaDetector::violations`]).
    live: Option<Forecaster>,
    confidence: f64,
    /// Tier thresholds `[low, medium, high]` for the unconditioned KLD.
    kld_tiers: [f64; 3],
    /// Tier thresholds per conditioned band.
    band_tiers: Vec<[f64; 3]>,
    /// The window's values, indexed by slot-of-week.
    ring: Vec<f64>,
    /// Ticks ingested since the stream started.
    ticks: u64,
    /// Incremental whole-week histogram counts.
    kld_counts: HistScratch,
    /// Incremental per-band histogram counts.
    band_counts: Vec<HistScratch>,
    /// Interval violations in the current window.
    violations: u32,
    /// Alerts from the most recently completed window (buffer reused).
    alerts: Vec<AlertEvent>,
}

impl StreamScorer {
    /// Builds the scorer from a consumer's trained artifact.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ConflictingAlertTiers`] for an invalid tier ladder.
    pub fn new(artifact: &TrainedConsumer, config: &ServeConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let kld = artifact.kld_base().clone();
        let cond = artifact.conditioned_base().clone();
        let arima = artifact.arima_detector().cloned();
        let live = arima.as_ref().map(|a| a.seeded_forecaster().clone());
        let confidence = arima.as_ref().map_or(0.95, ArimaDetector::confidence);
        let kld_tiers = [
            kld.threshold_at(config.tier_low),
            kld.threshold_at(config.tier_medium),
            kld.threshold_at(config.tier_high),
        ];
        let band_tiers = (0..cond.band_count())
            .map(|b| {
                [
                    cond.band_threshold_at(b, config.tier_low),
                    cond.band_threshold_at(b, config.tier_medium),
                    cond.band_threshold_at(b, config.tier_high),
                ]
            })
            .collect();
        let mut kld_counts = HistScratch::new();
        kld.edges().reset_counts(&mut kld_counts);
        let band_counts = (0..cond.band_count())
            .map(|b| {
                let mut scratch = HistScratch::new();
                cond.band_view(b).edges.reset_counts(&mut scratch);
                scratch
            })
            .collect();
        Ok(Self {
            consumer: artifact.id(),
            kld,
            cond,
            arima,
            live,
            confidence,
            kld_tiers,
            band_tiers,
            ring: vec![0.0; SLOTS_PER_WEEK],
            ticks: 0,
            kld_counts,
            band_counts,
            violations: 0,
            alerts: Vec::new(),
        })
    }

    /// Ingests one half-hour reading. O(1) histogram maintenance per tick;
    /// returns a [`WeekSummary`] when the tick completes a 336-slot
    /// window, at which point [`StreamScorer::alerts`] holds that window's
    /// threshold crossings.
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidValue`] for a non-finite or negative reading
    /// (mirroring [`fdeta_tsdata::week::WeekVector`]'s validation), and
    /// propagates divergence errors from a corrupted artifact.
    pub fn ingest(&mut self, reading: f64) -> Result<Option<WeekSummary>, TsError> {
        if !reading.is_finite() || reading < 0.0 {
            return Err(TsError::InvalidValue {
                what: "tick reading",
                value: reading,
            });
        }
        let slot = (self.ticks % SLOTS_PER_WEEK as u64) as usize;
        if self.ticks >= SLOTS_PER_WEEK as u64 {
            // Steady state: O(1) slide — the expiring value sits in the
            // same slot (hence the same band) as the incoming one.
            let expiring = self.ring[slot];
            self.kld
                .edges()
                .count_slide(&mut self.kld_counts, expiring, reading);
            if let Some(band) = self.cond.band_of(slot) {
                let edges = self.cond.band_view(band).edges;
                edges.count_slide(&mut self.band_counts[band], expiring, reading);
            }
        } else {
            // Warmup: the window is still filling.
            self.kld.edges().count_push(&mut self.kld_counts, reading);
            if let Some(band) = self.cond.band_of(slot) {
                let edges = self.cond.band_view(band).edges;
                edges.count_push(&mut self.band_counts[band], reading);
            }
        }
        self.ring[slot] = reading;
        if let Some(live) = self.live.as_mut() {
            // Bit-identical to the batch ArimaDetector::violations loop:
            // forecast, check the clamped interval, then observe.
            let f = live.step(reading, self.confidence);
            if !(f.lower.max(0.0)..=f.upper.max(0.0)).contains(&reading) {
                self.violations += 1;
            }
        }
        self.ticks += 1;
        if self.ticks % SLOTS_PER_WEEK as u64 == 0 {
            self.close_window().map(Some)
        } else {
            Ok(None)
        }
    }

    /// Scores the completed window, refills the alert buffer, and resets
    /// the per-window ARIMA state.
    fn close_window(&mut self) -> Result<WeekSummary, TsError> {
        let window = self.ticks / SLOTS_PER_WEEK as u64 - 1;
        self.alerts.clear();
        let kld_score = kl_divergence_smoothed_counts(
            self.kld_counts.counts(),
            self.kld_counts.total(),
            self.kld.baseline().counts(),
            self.kld.baseline().total(),
        )?;
        if kld_score > self.kld_tiers[0] {
            self.alerts.push(AlertEvent {
                consumer: self.consumer,
                tier: grade(kld_score, &self.kld_tiers),
                detector: StreamDetector::Kld,
                score: kld_score,
                window,
            });
        }
        let mut worst_band_excess = f64::NEG_INFINITY;
        for band in 0..self.cond.band_count() {
            let view = self.cond.band_view(band);
            let score = kl_divergence_smoothed_counts(
                self.band_counts[band].counts(),
                self.band_counts[band].total(),
                view.baseline.counts(),
                view.baseline.total(),
            )?;
            worst_band_excess = worst_band_excess.max(score - view.threshold);
            let tiers = self.band_tiers[band];
            if score > tiers[0] {
                self.alerts.push(AlertEvent {
                    consumer: self.consumer,
                    tier: grade(score, &tiers),
                    detector: StreamDetector::CondKld { band },
                    score,
                    window,
                });
            }
        }
        let arima_violations = self.arima.as_ref().map(|det| {
            let violations = self.violations;
            let v = violations as f64;
            if v > det.threshold() {
                self.alerts.push(AlertEvent {
                    consumer: self.consumer,
                    tier: arima_tier(v, det),
                    detector: StreamDetector::Arima,
                    score: v,
                    window,
                });
            }
            violations
        });
        self.violations = 0;
        if let Some(det) = self.arima.as_ref() {
            self.live = Some(det.seeded_forecaster().clone());
        }
        Ok(WeekSummary {
            window,
            kld_score,
            worst_band_excess,
            arima_violations,
        })
    }

    /// Threshold crossings of the most recently completed window (empty
    /// until the first window completes, and between crossings).
    pub fn alerts(&self) -> &[AlertEvent] {
        &self.alerts
    }

    /// The unconditioned KLD divergence of the *current* sliding window
    /// (the last 336 ticks), without waiting for a window boundary.
    ///
    /// # Errors
    ///
    /// As [`StreamScorer::ingest`]'s divergence errors; meaningless (an
    /// under-filled histogram) before [`StreamScorer::window_filled`].
    pub fn kld_score(&self) -> Result<f64, TsError> {
        kl_divergence_smoothed_counts(
            self.kld_counts.counts(),
            self.kld_counts.total(),
            self.kld.baseline().counts(),
            self.kld.baseline().total(),
        )
    }

    /// Per-band `(score, threshold)` of the current sliding window,
    /// visited in band order — the streaming analogue of
    /// [`ConditionedKldDetector::visit_band_scores`], allocation-free.
    ///
    /// # Errors
    ///
    /// As [`StreamScorer::kld_score`].
    pub fn visit_band_scores<F>(&self, mut visit: F) -> Result<(), TsError>
    where
        F: FnMut(f64, f64),
    {
        for band in 0..self.cond.band_count() {
            let view = self.cond.band_view(band);
            let score = kl_divergence_smoothed_counts(
                self.band_counts[band].counts(),
                self.band_counts[band].total(),
                view.baseline.counts(),
                view.baseline.total(),
            )?;
            visit(score, view.threshold);
        }
        Ok(())
    }

    /// The consumer's meter id.
    pub fn consumer(&self) -> u32 {
        self.consumer
    }

    /// Ticks ingested since the stream started.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Whether a full 336-tick window has been ingested (sliding-window
    /// scores are meaningful from here on).
    pub fn window_filled(&self) -> bool {
        self.ticks >= SLOTS_PER_WEEK as u64
    }

    /// Whether this consumer streams the ARIMA interval check (false when
    /// the artifact has no fitted model).
    pub fn has_arima(&self) -> bool {
        self.arima.is_some()
    }

    /// Bytes of *per-scorer* resident state: the sliding window, the
    /// incremental counts, tier ladders, the alert buffer, and the live
    /// forecaster buffers. Trained cores (histogram baselines, training
    /// quantiles, model coefficients) are `Arc`-shared with the artifact
    /// store and excluded — they are fleet-resident once, not per meter.
    pub fn state_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.ring.capacity() * std::mem::size_of::<f64>()
            + self.kld_counts.heap_bytes()
            + self
                .band_counts
                .iter()
                .map(HistScratch::heap_bytes)
                .sum::<usize>()
            + self.band_tiers.capacity() * std::mem::size_of::<[f64; 3]>()
            + self.alerts.capacity() * std::mem::size_of::<AlertEvent>()
            + self.live.as_ref().map_or(0, Forecaster::heap_bytes)
            + self
                .arima
                .as_ref()
                .map_or(0, |a| a.seeded_forecaster().heap_bytes())
    }
}

/// Grades a score against a sorted `[low, medium, high]` threshold
/// ladder; callers only invoke it past `tiers[0]`.
fn grade(score: f64, tiers: &[f64; 3]) -> AlertTier {
    if score > tiers[2] {
        AlertTier::High
    } else if score > tiers[1] {
        AlertTier::Medium
    } else {
        AlertTier::Low
    }
}

/// Grades an interval-violation count by its binomial excess over the
/// nominal rate: `Medium` one standard deviation past the firing margin,
/// `High` two past it. Monotone in the count.
fn arima_tier(violations: f64, det: &ArimaDetector) -> AlertTier {
    let n = SLOTS_PER_WEEK as f64;
    let p = 1.0 - det.confidence();
    let sigma = (n * p * (1.0 - p)).sqrt();
    let excess = (violations - n * p) / sigma;
    if excess >= det.z_margin() + 2.0 {
        AlertTier::High
    } else if excess >= det.z_margin() + 1.0 {
        AlertTier::Medium
    } else {
        AlertTier::Low
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EvalEngine;
    use crate::eval::EvalConfig;
    use fdeta_cer_synth::{DatasetConfig, SyntheticDataset};
    use fdeta_tsdata::week::WeekVector;

    fn engine() -> EvalEngine {
        let data = SyntheticDataset::generate(&DatasetConfig::small(3, 14, 41));
        let config = EvalConfig {
            threads: 1,
            ..EvalConfig::fast(8, 3)
        };
        EvalEngine::train(&data, &config).unwrap()
    }

    #[test]
    fn tick_ingest_matches_batch_scores_bit_identically() {
        let engine = engine();
        for (index, artifact) in engine.artifacts().iter().enumerate() {
            let mut scorer = StreamScorer::new(artifact, &ServeConfig::default()).unwrap();
            let test = artifact.test_matrix().unwrap();
            let mut summaries = Vec::new();
            for w in 0..test.weeks() {
                let week = test.week_vector(w);
                for &reading in week.as_slice() {
                    if let Some(summary) = scorer.ingest(reading).unwrap() {
                        summaries.push(summary);
                    }
                }
            }
            assert_eq!(summaries.len(), test.weeks());
            for (summary, w) in summaries.iter().zip(0..test.weeks()) {
                let week = test.week_vector(w);
                let batch_kld = artifact.kld_base().score(&week).unwrap();
                assert_eq!(
                    summary.kld_score.to_bits(),
                    batch_kld.to_bits(),
                    "consumer {index} week {w}: stream KLD must be bit-identical"
                );
                let mut batch_excess = f64::NEG_INFINITY;
                artifact
                    .conditioned_base()
                    .visit_band_scores(&week, None, |s, t| {
                        batch_excess = batch_excess.max(s - t);
                    })
                    .unwrap();
                assert_eq!(summary.worst_band_excess.to_bits(), batch_excess.to_bits());
                if let Some(v) = summary.arima_violations {
                    let batch_v = artifact.arima_detector().unwrap().violations(&week);
                    assert_eq!(v as usize, batch_v, "consumer {index} week {w}");
                }
            }
        }
    }

    #[test]
    fn alerts_fire_on_an_inflated_window_and_grade_high() {
        let engine = engine();
        let artifact = &engine.artifacts()[0];
        let mut scorer = StreamScorer::new(artifact, &ServeConfig::default()).unwrap();
        // One clean held-out week, then the same week at triple scale: the
        // KLD detector must stay quiet, then fire with a severe tier.
        let week = artifact.test_matrix().unwrap().week_vector(0);
        let mut clean_alerts = 0;
        for &r in week.as_slice() {
            if scorer.ingest(r).unwrap().is_some() {
                clean_alerts = scorer
                    .alerts()
                    .iter()
                    .filter(|a| a.detector == StreamDetector::Kld)
                    .count();
            }
        }
        assert_eq!(clean_alerts, 0, "training-like week must not alert");
        let mut fired = None;
        for &r in week.as_slice() {
            if scorer.ingest(r * 3.0).unwrap().is_some() {
                fired = scorer
                    .alerts()
                    .iter()
                    .find(|a| a.detector == StreamDetector::Kld)
                    .copied();
            }
        }
        let alert = fired.expect("tripled week must cross the KLD threshold");
        assert_eq!(alert.consumer, artifact.id());
        assert_eq!(alert.tier, AlertTier::High);
        assert_eq!(alert.window, 1);
    }

    #[test]
    fn sliding_score_tracks_any_336_tick_window() {
        let engine = engine();
        let artifact = &engine.artifacts()[1];
        let mut scorer = StreamScorer::new(artifact, &ServeConfig::default()).unwrap();
        let flat = artifact.test_matrix().unwrap().flat();
        // Feed 1.5 weeks and compare the mid-week sliding window against a
        // batch score of the same 336 values.
        let ticks = SLOTS_PER_WEEK + SLOTS_PER_WEEK / 2;
        for &r in &flat[..ticks] {
            scorer.ingest(r).unwrap();
        }
        let window: Vec<f64> = flat[ticks - SLOTS_PER_WEEK..ticks].to_vec();
        let batch = artifact
            .kld_base()
            .score(&WeekVector::new(window).unwrap())
            .unwrap();
        assert_eq!(scorer.kld_score().unwrap().to_bits(), batch.to_bits());
    }

    #[test]
    fn invalid_readings_are_typed_errors() {
        let engine = engine();
        let mut scorer =
            StreamScorer::new(&engine.artifacts()[0], &ServeConfig::default()).unwrap();
        assert!(scorer.ingest(f64::NAN).is_err());
        assert!(scorer.ingest(-1.0).is_err());
        assert_eq!(scorer.ticks(), 0, "rejected ticks must not advance state");
    }

    #[test]
    fn conflicting_tiers_rejected_at_build_time() {
        assert!(matches!(
            ServeConfig::builder().tier_medium(0.5).build(),
            Err(ConfigError::ConflictingAlertTiers { .. })
        ));
        assert!(matches!(
            ServeConfig::builder().tier_high(1.0).build(),
            Err(ConfigError::ConflictingAlertTiers { .. })
        ));
        assert!(ServeConfig::builder().build().is_ok());
    }

    #[test]
    fn state_bytes_are_bounded_and_positive() {
        let engine = engine();
        let artifact = &engine.artifacts()[0];
        let mut scorer = StreamScorer::new(artifact, &ServeConfig::default()).unwrap();
        let before = scorer.state_bytes();
        assert!(before > 0);
        let flat = artifact.test_matrix().unwrap().flat();
        for &r in &flat[..3 * SLOTS_PER_WEEK] {
            scorer.ingest(r).unwrap();
        }
        let after = scorer.state_bytes();
        // The forecaster buffers are bounded and everything else is
        // fixed-size: three weeks of ticks must not balloon the state.
        assert!(after < before + 8 * 1024, "state grew {before} -> {after}");
    }
}
