//! The robustness harness: detection quality as a function of data decay.
//!
//! [`robustness_sweep`] runs the full evaluation protocol across a grid of
//! fault rate × repair policy over one synthetic fleet, and reports per
//! cell how the KLD detector's Table II numbers hold up: detection
//! percentage for the integrated over/under scenarios, the clean-week
//! false-positive rate, and how many consumers the lenient training path
//! had to quarantine (against the fault log's ground-truth count of
//! affected consumers).
//!
//! Each cell disables the retry fallback (`fallback == primary`) so the
//! numbers measure one policy in isolation; production runs want the
//! retrying [`RobustnessConfig::default`] instead.
//!
//! Everything is deterministic in [`SweepConfig::seed`]: the corpus, every
//! fault draw, every attack vector, and therefore the rendered JSON — byte
//! for byte, at any thread count.

use std::fmt;
use std::fmt::Write as _;

use fdeta_cer_synth::{DatasetConfig, FaultModel, SyntheticDataset};
use fdeta_detect::robustness::{RobustEngine, RobustnessConfig};
use fdeta_detect::{DetectorKind, EvalConfig, EvalError, Scenario};
use fdeta_tsdata::{RepairPolicy, TsError};

/// The sweep grid and the fleet it runs over.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Fleet size.
    pub consumers: usize,
    /// Weeks of history per consumer.
    pub weeks: usize,
    /// Training window per consumer.
    pub train_weeks: usize,
    /// Attack vectors per scenario (the worst-of-N protocol).
    pub attack_vectors: usize,
    /// Master seed for the corpus, the faults, and the attacks.
    pub seed: u64,
    /// Dropout rates to sweep. `0.0` means a pristine fleet (no faults of
    /// any kind); every positive rate also injects one fleet-wide comms
    /// burst.
    pub fault_rates: Vec<f64>,
    /// Repair policies to sweep.
    pub policies: Vec<RepairPolicy>,
    /// Coverage gate handed to [`RobustnessConfig`].
    pub min_coverage: f64,
    /// Worker threads (0 = all available).
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            consumers: 20,
            weeks: 12,
            train_weeks: 8,
            attack_vectors: 3,
            seed: 7,
            fault_rates: vec![0.0, 0.05, 0.15],
            policies: vec![
                RepairPolicy::DropWeek,
                RepairPolicy::LinearInterpolate,
                RepairPolicy::HistoricalMedian,
            ],
            min_coverage: 0.5,
            threads: 0,
        }
    }
}

/// One cell of the sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// The dropout rate this cell ran at.
    pub fault_rate: f64,
    /// The repair policy this cell trained under.
    pub policy: RepairPolicy,
    /// Consumers the fault log says were touched by at least one fault.
    pub affected: usize,
    /// Consumers the lenient path quarantined.
    pub quarantined: usize,
    /// Consumers that survived into the evaluation.
    pub survivors: usize,
    /// KLD-95 Metric 1 for the integrated over-report scenario, in `[0, 1]`.
    pub detection_over: f64,
    /// KLD-95 Metric 1 for the integrated under-report scenario, in `[0, 1]`.
    pub detection_under: f64,
    /// Fraction of evaluated consumers whose clean week raised a KLD-95
    /// false positive, in `[0, 1]`.
    pub false_positive_rate: f64,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Fleet size the sweep ran over.
    pub consumers: usize,
    /// Weeks of history per consumer.
    pub weeks: usize,
    /// Training window per consumer.
    pub train_weeks: usize,
    /// The master seed.
    pub seed: u64,
    /// One cell per (fault rate, policy) pair, rates outer, policies inner.
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Renders the report as JSON.
    ///
    /// Hand-rolled on purpose: field order is fixed and floats use Rust's
    /// shortest-round-trip formatting, so the same seed yields the same
    /// bytes on every run and thread count — the CI smoke job diffs this.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"consumers\": {},\n  \"weeks\": {},\n  \"train_weeks\": {},\n  \"seed\": {},\n  \"cells\": [",
            self.consumers, self.weeks, self.train_weeks, self.seed
        );
        for (i, cell) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    {{\"fault_rate\": {}, \"policy\": \"{}\", \"affected\": {}, \"quarantined\": {}, \"survivors\": {}, \"detection_over\": {}, \"detection_under\": {}, \"false_positive_rate\": {}}}{}",
                cell.fault_rate,
                cell.policy,
                cell.affected,
                cell.quarantined,
                cell.survivors,
                cell.detection_over,
                cell.detection_under,
                cell.false_positive_rate,
                comma
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Failure of a sweep run.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// A fault rate outside `[0, 1]`.
    InvalidFaultRate {
        /// The rejected value.
        rate: f64,
    },
    /// Fault injection failed (a malformed corpus).
    Data(TsError),
    /// The evaluation engine failed (bad config or a worker panic —
    /// per-consumer data problems quarantine instead).
    Eval(EvalError),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::InvalidFaultRate { rate } => {
                write!(f, "fault rate {rate} outside [0, 1]")
            }
            SweepError::Data(e) => write!(f, "fault injection failed: {e}"),
            SweepError::Eval(e) => write!(f, "evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::InvalidFaultRate { .. } => None,
            SweepError::Data(e) => Some(e),
            SweepError::Eval(e) => Some(e),
        }
    }
}

impl From<TsError> for SweepError {
    fn from(e: TsError) -> Self {
        SweepError::Data(e)
    }
}

impl From<EvalError> for SweepError {
    fn from(e: EvalError) -> Self {
        SweepError::Eval(e)
    }
}

/// Runs the fault-rate × repair-policy grid. See the module docs.
///
/// # Errors
///
/// [`SweepError::InvalidFaultRate`] before any work starts;
/// [`SweepError::Data`] / [`SweepError::Eval`] if a cell fails outright
/// (per-consumer problems quarantine rather than erroring).
pub fn robustness_sweep(config: &SweepConfig) -> Result<SweepReport, SweepError> {
    for &rate in &config.fault_rates {
        if !(0.0..=1.0).contains(&rate) {
            return Err(SweepError::InvalidFaultRate { rate });
        }
    }
    let data = SyntheticDataset::generate(&DatasetConfig::small(
        config.consumers,
        config.weeks,
        config.seed,
    ));
    let eval_config = EvalConfig {
        threads: config.threads,
        ..EvalConfig::fast(config.train_weeks, config.attack_vectors)
    };
    let mut cells = Vec::with_capacity(config.fault_rates.len() * config.policies.len());
    for &rate in &config.fault_rates {
        let model = if rate > 0.0 {
            FaultModel::dropout_and_burst(config.seed, rate)
        } else {
            FaultModel::clean(config.seed)
        };
        let (observed, log) = model.degrade(&data)?;
        let affected = log.affected_consumers().len();
        for &policy in &config.policies {
            let robustness = RobustnessConfig {
                primary: policy,
                fallback: policy,
                min_coverage: config.min_coverage,
            };
            let robust = RobustEngine::train(&observed, &eval_config, &robustness)?;
            let report = robust.evaluate()?;
            let evaluation = &report.evaluation;
            let kld = DetectorKind::Kld5;
            let active: Vec<_> = evaluation.consumers.iter().filter(|c| !c.skipped).collect();
            let fp = active
                .iter()
                .filter(|c| c.false_positive[kld.index()])
                .count();
            let false_positive_rate = if active.is_empty() {
                0.0
            } else {
                fp as f64 / active.len() as f64
            };
            cells.push(SweepCell {
                fault_rate: rate,
                policy,
                affected,
                quarantined: report.quarantined.len(),
                survivors: robust.survivors(),
                detection_over: evaluation.metric1(kld, Scenario::IntegratedOver),
                detection_under: evaluation.metric1(kld, Scenario::IntegratedUnder),
                false_positive_rate,
            });
        }
    }
    Ok(SweepReport {
        consumers: config.consumers,
        weeks: config.weeks,
        train_weeks: config.train_weeks,
        seed: config.seed,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig {
            consumers: 6,
            weeks: 12,
            train_weeks: 8,
            attack_vectors: 2,
            seed: 11,
            fault_rates: vec![0.0, 0.05],
            policies: vec![RepairPolicy::HistoricalMedian],
            min_coverage: 0.5,
            threads: 2,
        }
    }

    #[test]
    fn sweep_covers_the_grid_and_accounts_for_every_consumer() {
        let report = robustness_sweep(&tiny()).expect("sweep runs");
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert_eq!(cell.survivors + cell.quarantined, 6);
            assert!(cell.quarantined <= cell.affected);
            assert!((0.0..=1.0).contains(&cell.detection_over));
            assert!((0.0..=1.0).contains(&cell.detection_under));
            assert!((0.0..=1.0).contains(&cell.false_positive_rate));
        }
        let pristine = &report.cells[0];
        assert_eq!(pristine.fault_rate, 0.0);
        assert_eq!(pristine.affected, 0, "rate 0.0 injects no faults at all");
        assert_eq!(pristine.quarantined, 0);
    }

    #[test]
    fn sweep_json_is_deterministic() {
        let a = robustness_sweep(&tiny()).expect("sweep runs");
        let b = robustness_sweep(&SweepConfig {
            threads: 1,
            ..tiny()
        })
        .expect("sweep runs");
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "same seed must render the same bytes at any thread count"
        );
        assert!(a.to_json().contains("\"policy\": \"historical-median\""));
    }

    #[test]
    fn bad_rates_are_rejected_up_front() {
        let bad = SweepConfig {
            fault_rates: vec![0.05, 1.5],
            ..tiny()
        };
        assert!(matches!(
            robustness_sweep(&bad),
            Err(SweepError::InvalidFaultRate { .. })
        ));
    }
}
