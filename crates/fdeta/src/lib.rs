//! # F-DETA: a Framework for Detecting Electricity Theft Attacks
//!
//! A from-scratch Rust reproduction of *F-DETA* (Badrinath Krishna, Lee,
//! Weaver, Iyer, Sanders — DSN 2016). The paper makes three contributions,
//! and each maps onto a crate re-exported here:
//!
//! 1. **A comprehensive attack taxonomy** — seven classes of electricity
//!    theft attacks classified by their relation to distribution-grid
//!    balance checks and pricing schemes: [`attacks`] (taxonomy and
//!    concrete injections) over [`gridsim`] (radial grid topology, balance
//!    checks, pricing, billing, ADR).
//! 2. **A KL-divergence theft detector** — non-parametric, multi-reading:
//!    [`detect`] (KLD, price-conditioned KLD, and the ARIMA baselines it
//!    is compared against, built on [`arima`]).
//! 3. **A data-driven evaluation** — [`detect::eval`] reproduces the
//!    Section VIII protocol on a CER-style corpus from [`cer_synth`].
//!
//! This crate adds the *framework* itself: the five-step detection
//! pipeline of Section VII ([`pipeline::Pipeline`]):
//!
//! 1. model each consumer's expected consumption;
//! 2. score incoming weeks for anomalies;
//! 3. label anomalies as attacker-like (abnormally low) or victim-like
//!    (abnormally high) per Propositions 1 and 2;
//! 4. suppress alerts explained by external evidence (weather, holidays,
//!    special events) via the [`pipeline::ExternalEvidence`] hook;
//! 5. plan the physical investigation over the grid topology
//!    (Section V-B/V-C).
//!
//! # Quickstart
//!
//! ```
//! use fdeta::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small synthetic CER-style corpus.
//! let data = SyntheticDataset::generate(&DatasetConfig::small(4, 10, 7));
//!
//! // Train the framework on the first 8 weeks of every consumer.
//! let pipeline = Pipeline::train(&data, &PipelineConfig { train_weeks: 8, ..Default::default() })?;
//!
//! // Score a held-out week for one consumer.
//! let split = data.split(0, 8)?;
//! let alerts = pipeline.assess(data.consumer(0).id, &split.test.week_vector(0));
//! // An honest week raises no (unsuppressed) alarm for most consumers.
//! println!("{} alerts", alerts.len());
//! # Ok(())
//! # }
//! ```

pub mod pipeline;
pub mod report;
pub mod robustness;

pub use pipeline::{
    Alert, AnomalyKind, ExternalEvidence, HolidayCalendar, NoEvidence, Pipeline, PipelineConfig,
    RoleHint,
};
pub use report::{FrameworkReport, InvestigationRequest};
pub use robustness::{robustness_sweep, SweepCell, SweepConfig, SweepError, SweepReport};

// Re-export the constituent crates under stable names so downstream users
// depend on `fdeta` alone.
pub use fdeta_arima as arima;
pub use fdeta_attacks as attacks;
pub use fdeta_cer_synth as cer_synth;
pub use fdeta_detect as detect;
pub use fdeta_gridsim as gridsim;
pub use fdeta_tsdata as tsdata;

/// One-line imports for examples and applications.
pub mod prelude {
    pub use crate::pipeline::{Alert, AnomalyKind, Pipeline, PipelineConfig, RoleHint};
    pub use crate::report::{FrameworkReport, InvestigationRequest};
    pub use crate::robustness::{robustness_sweep, SweepConfig, SweepReport};
    pub use fdeta_arima::{ArimaModel, ArimaSpec};
    pub use fdeta_attacks::{
        arima_attack, integrated_arima_worst_case, optimal_swap, AttackClass, AttackVector,
        Direction, InjectionContext,
    };
    pub use fdeta_cer_synth::{
        ConsumerClass, DatasetConfig, FaultLog, FaultModel, ObservedDataset, SyntheticDataset,
    };
    pub use fdeta_detect::prelude::*;
    pub use fdeta_detect::AlertBudget;
    pub use fdeta_gridsim::{
        BalanceChecker, GridTopology, MeterDeployment, PricingScheme, Snapshot, TouPlan,
    };
    pub use fdeta_tsdata::{HalfHourSeries, Kw, WeekMatrix, WeekVector, SLOTS_PER_WEEK};
}
