//! Step-5 outputs: investigation requests and framework reports.

use serde::{Deserialize, Serialize};

use fdeta_gridsim::balance::{BalanceChecker, Snapshot};
use fdeta_gridsim::investigate::PortableMeterSearch;
use fdeta_gridsim::topology::{GridTopology, NodeId};
use fdeta_gridsim::GridError;

use crate::pipeline::{Alert, RoleHint};

/// A concrete task for the utility's field crew, derived from alerts and
/// the grid topology (step 5 of the framework).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvestigationRequest {
    /// Consumers whose smart meters should be physically validated.
    pub inspect_meters: Vec<u32>,
    /// Grid nodes where a portable balance meter should be clamped
    /// (Section V-C Case 2 walk), in visit order.
    pub clamp_points: Vec<NodeId>,
    /// Why the request was raised: the surviving (unsuppressed) alerts.
    pub alerts: Vec<Alert>,
}

impl InvestigationRequest {
    /// Builds a request from alerts and a topology.
    ///
    /// Victim-labelled alerts implicate the victim's *neighbours* (one of
    /// them is the attacker, per Proposition 2) as well as the victim's
    /// own meter; attacker-labelled alerts implicate the consumer
    /// directly. If a grid snapshot is available, a Case-2 portable-meter
    /// walk is planned to corroborate.
    ///
    /// # Errors
    ///
    /// Propagates topology lookups ([`GridError`]) — e.g. alerts that name
    /// consumers not present in the topology are reported, not ignored.
    pub fn from_alerts(
        alerts: Vec<Alert>,
        grid: &GridTopology,
        label_to_node: &dyn Fn(u32) -> Option<NodeId>,
        snapshot: Option<&Snapshot>,
    ) -> Result<Self, GridError> {
        let mut inspect = Vec::new();
        for alert in alerts.iter().filter(|a| a.actionable()) {
            let Some(node) = label_to_node(alert.consumer) else {
                // Not placed in this feeder's topology; still inspect the
                // meter itself.
                inspect.push(alert.consumer);
                continue;
            };
            inspect.push(alert.consumer);
            if alert.role == RoleHint::Victim {
                for neighbor in grid.neighbors(node)? {
                    if let Some(label) = grid.consumer_label(neighbor) {
                        if let Ok(id) = label.parse::<u32>() {
                            inspect.push(id);
                        }
                    }
                }
            }
        }
        inspect.sort_unstable();
        inspect.dedup();

        let clamp_points = match snapshot {
            Some(snap) => PortableMeterSearch::run(grid, snap, &BalanceChecker::default())?.visited,
            None => Vec::new(),
        };
        Ok(Self {
            inspect_meters: inspect,
            clamp_points,
            alerts,
        })
    }

    /// Whether any field action is requested.
    pub fn is_empty(&self) -> bool {
        self.inspect_meters.is_empty() && self.clamp_points.is_empty()
    }
}

/// A serialisable summary of one monitoring cycle across the fleet.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FrameworkReport {
    /// Week index (relative to deployment) this report covers.
    pub week: usize,
    /// Consumers scored.
    pub consumers_scored: usize,
    /// Alerts raised before suppression.
    pub alerts_raised: usize,
    /// Alerts surviving external-evidence suppression.
    pub alerts_actionable: usize,
    /// The surviving alerts.
    pub alerts: Vec<Alert>,
}

impl FrameworkReport {
    /// Builds a report from the alerts of one scoring cycle.
    pub fn from_cycle(week: usize, consumers_scored: usize, all_alerts: Vec<Alert>) -> Self {
        let raised = all_alerts.len();
        let actionable: Vec<Alert> = all_alerts.into_iter().filter(|a| a.actionable()).collect();
        Self {
            week,
            consumers_scored,
            alerts_raised: raised,
            alerts_actionable: actionable.len(),
            alerts: actionable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AnomalyKind;

    fn alert(consumer: u32, role: RoleHint, suppressed: bool) -> Alert {
        Alert {
            consumer,
            kind: AnomalyKind::DistributionShift,
            role,
            score: 1.0,
            suppressed: suppressed.then(|| "holiday".to_owned()),
        }
    }

    /// root ── bus ── {c100, c101, c102}
    fn grid() -> (GridTopology, Vec<NodeId>) {
        let mut g = GridTopology::new();
        let bus = g.add_internal(g.root()).unwrap();
        let nodes = (100..103)
            .map(|id| g.add_consumer(bus, id.to_string()).unwrap())
            .collect();
        (g, nodes)
    }

    #[test]
    fn victim_alert_implicates_neighbors() {
        let (g, nodes) = grid();
        let lookup = move |id: u32| match id {
            100 => Some(nodes[0]),
            101 => Some(nodes[1]),
            102 => Some(nodes[2]),
            _ => None,
        };
        let req = InvestigationRequest::from_alerts(
            vec![alert(101, RoleHint::Victim, false)],
            &g,
            &lookup,
            None,
        )
        .unwrap();
        assert_eq!(req.inspect_meters, vec![100, 101, 102]);
        assert!(req.clamp_points.is_empty());
    }

    #[test]
    fn attacker_alert_implicates_only_the_consumer() {
        let (g, nodes) = grid();
        let lookup = move |id: u32| (id == 100).then_some(nodes[0]);
        let req = InvestigationRequest::from_alerts(
            vec![alert(100, RoleHint::Attacker, false)],
            &g,
            &lookup,
            None,
        )
        .unwrap();
        assert_eq!(req.inspect_meters, vec![100]);
    }

    #[test]
    fn suppressed_alerts_request_nothing() {
        let (g, _) = grid();
        let req = InvestigationRequest::from_alerts(
            vec![alert(100, RoleHint::Attacker, true)],
            &g,
            &|_| None,
            None,
        )
        .unwrap();
        assert!(req.inspect_meters.is_empty());
        assert!(req.is_empty());
    }

    #[test]
    fn snapshot_triggers_portable_walk() {
        let (g, nodes) = grid();
        let mut snap = Snapshot::new();
        for (i, &n) in nodes.iter().enumerate() {
            // Consumer 100 under-reports.
            let reported = if i == 0 { 0.2 } else { 1.0 };
            snap.set_consumer(&g, n, 1.0, reported).unwrap();
        }
        let lookup = move |id: u32| (id == 100).then_some(nodes[0]);
        let req = InvestigationRequest::from_alerts(
            vec![alert(100, RoleHint::Attacker, false)],
            &g,
            &lookup,
            Some(&snap),
        )
        .unwrap();
        assert!(!req.clamp_points.is_empty());
        assert_eq!(req.clamp_points[0], g.root());
    }

    #[test]
    fn report_counts_suppression() {
        let alerts = vec![
            alert(1, RoleHint::Attacker, false),
            alert(2, RoleHint::Victim, true),
            alert(3, RoleHint::Unknown, false),
        ];
        let report = FrameworkReport::from_cycle(4, 100, alerts);
        assert_eq!(report.week, 4);
        assert_eq!(report.consumers_scored, 100);
        assert_eq!(report.alerts_raised, 3);
        assert_eq!(report.alerts_actionable, 2);
        assert_eq!(report.alerts.len(), 2);
    }
}
