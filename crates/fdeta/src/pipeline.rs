//! The five-step detection pipeline of Section VII.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use fdeta_cer_synth::SyntheticDataset;
use fdeta_detect::{
    ArimaDetector, ArtifactParams, ConditionedKldDetector, Detector, IntegratedArimaDetector,
    KldDetector, SignificanceLevel, TrainError, TrainedConsumer,
};
use fdeta_gridsim::pricing::TouPlan;
use fdeta_tsdata::week::{WeekMatrix, WeekVector};

/// What kind of anomaly an alert describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnomalyKind {
    /// Weekly consumption far below the historic range — the attacker
    /// signature of Attack Classes 2A/2B (Proposition 1).
    AbnormallyLow,
    /// Weekly consumption far above the historic range — the victim
    /// signature of Attack Classes 1B–3B (Proposition 2).
    AbnormallyHigh,
    /// The reading distribution diverged from history (KLD flag) without a
    /// decisive mean displacement.
    DistributionShift,
    /// The whole-week distribution looks normal but a price-conditioned
    /// window diverged — the load-shift signature of Attack Classes 3A/3B.
    LoadShift,
}

/// Step-3 labelling: whether the anomalous meter likely belongs to the
/// attacker or to a victimised neighbour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoleHint {
    /// Abnormally low reporter — investigate this consumer as Mallory.
    Attacker,
    /// Abnormally high reporter — investigate this consumer's *neighbours*
    /// (one of them is Mallory stealing in their name).
    Victim,
    /// No clear direction (e.g. pure load shift).
    Unknown,
}

/// An anomaly alert for one consumer-week.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The consumer's meter id.
    pub consumer: u32,
    /// The anomaly signature.
    pub kind: AnomalyKind,
    /// Step-3 role labelling.
    pub role: RoleHint,
    /// Detector evidence (KLD bits or mean displacement in kW,
    /// kind-dependent).
    pub score: f64,
    /// Step-4 suppression: `Some(reason)` if external evidence explains
    /// the anomaly and the alert should not trigger an investigation.
    pub suppressed: Option<String>,
}

impl Alert {
    /// Whether the alert survives step 4 and should be investigated.
    pub fn actionable(&self) -> bool {
        self.suppressed.is_none()
    }
}

/// Step-4 hook: external evidence that can explain an anomaly (severe
/// weather, holidays, special events — Section VII's example list).
pub trait ExternalEvidence {
    /// Returns a human-readable explanation if the consumer's anomaly in
    /// this week is expected, `None` otherwise.
    fn explain(&self, consumer: u32, kind: AnomalyKind) -> Option<String>;
}

/// The default evidence source: nothing is ever explained away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoEvidence;

impl ExternalEvidence for NoEvidence {
    fn explain(&self, _consumer: u32, _kind: AnomalyKind) -> Option<String> {
        None
    }
}

/// A simple calendar-based evidence source: during a declared holiday
/// period, abnormally low consumption is expected (consumers travel).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HolidayCalendar {
    holiday: bool,
}

impl HolidayCalendar {
    /// Creates a calendar; `holiday` marks the week under assessment.
    pub fn new(holiday: bool) -> Self {
        Self { holiday }
    }
}

impl ExternalEvidence for HolidayCalendar {
    fn explain(&self, _consumer: u32, kind: AnomalyKind) -> Option<String> {
        if self.holiday && kind == AnomalyKind::AbnormallyLow {
            Some("holiday period: low consumption expected".to_owned())
        } else {
            None
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Training weeks per consumer.
    pub train_weeks: usize,
    /// KLD histogram bins.
    pub bins: usize,
    /// KLD significance level.
    pub level: SignificanceLevel,
    /// Interval-detector confidence.
    pub confidence: f64,
    /// Utility ARIMA order.
    pub arima_order: (usize, usize, usize),
    /// TOU plan used for price conditioning.
    pub tou: TouPlan,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            train_weeks: 60,
            bins: 10,
            level: SignificanceLevel::Five,
            confidence: 0.95,
            arima_order: (2, 0, 1),
            tou: TouPlan::ireland_nightsaver(),
        }
    }
}

/// Per-consumer trained state.
#[derive(Serialize, Deserialize)]
struct ConsumerMonitor {
    /// The sliding training window this monitor was calibrated on.
    train: WeekMatrix,
    kld: KldDetector,
    conditioned: ConditionedKldDetector,
    /// Interval detectors are kept when the ARIMA fit succeeds; degenerate
    /// histories (constant load) still get KLD coverage.
    interval: Option<(ArimaDetector, IntegratedArimaDetector)>,
    mean_range: (f64, f64),
}

/// The trained F-DETA pipeline: one monitor per consumer.
///
/// Serialisable: train once (expensive at fleet scale), persist with
/// serde, reload at the next monitoring cycle. Monitors live in a
/// `BTreeMap` so iteration — and therefore the persisted JSON — is in
/// consumer-id order, byte-identical across runs (a `HashMap` here made
/// every serialisation shuffle monitors by that map's random hash seed).
#[derive(Serialize, Deserialize)]
pub struct Pipeline {
    monitors: BTreeMap<u32, ConsumerMonitor>,
    config: PipelineConfig,
}

impl Pipeline {
    /// Trains monitors for every consumer in the dataset (step 1).
    ///
    /// Each monitor is derived from a shared [`TrainedConsumer`] artifact
    /// (the same per-consumer trained state the evaluation engine uses),
    /// re-thresholded at the pipeline's significance level.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::NotEnoughWeeks`] if any consumer has fewer
    /// than `train_weeks` whole weeks, and propagates detector training
    /// errors.
    pub fn train(dataset: &SyntheticDataset, config: &PipelineConfig) -> Result<Self, TrainError> {
        let mut monitors = BTreeMap::new();
        for index in 0..dataset.len() {
            let record = dataset.consumer(index);
            let available = record.series.whole_weeks();
            if available < config.train_weeks {
                return Err(TrainError::NotEnoughWeeks {
                    consumer: record.id,
                    required: config.train_weeks,
                    available,
                });
            }
            let train = record
                .series
                .week_range(0, config.train_weeks)
                .and_then(|s| s.to_week_matrix())?;
            monitors.insert(record.id, Self::train_monitor(record.id, &train, config)?);
        }
        Ok(Self {
            monitors,
            config: config.clone(),
        })
    }

    fn train_monitor(
        id: u32,
        train: &WeekMatrix,
        config: &PipelineConfig,
    ) -> Result<ConsumerMonitor, TrainError> {
        let params = ArtifactParams {
            bins: config.bins,
            confidence: config.confidence,
            arima_order: config.arima_order,
            // The pipeline does not use the subspace detector.
            pca_components: 0,
            tou: config.tou,
        };
        let artifact = TrainedConsumer::from_window(id, 0, train, &params)?;
        Ok(ConsumerMonitor {
            train: train.clone(),
            kld: artifact.kld_at(config.level),
            conditioned: artifact.conditioned_at(config.level),
            interval: artifact.interval_detectors(),
            mean_range: artifact.mean_range(),
        })
    }

    /// Rolls one *trusted* week into a consumer's training window and
    /// retrains their monitor — the online maintenance loop of
    /// Section VII-D: "As new consumption readings are recorded, they will
    /// replace the historic readings". Only weeks the utility has vetted
    /// (no actionable alert, or alert resolved as benign) should be rolled
    /// in, lest an attacker poison her own baseline.
    ///
    /// Unknown consumers are ignored.
    ///
    /// # Errors
    ///
    /// Propagates detector-retraining errors.
    pub fn observe_trusted_week(
        &mut self,
        consumer: u32,
        week: &WeekVector,
    ) -> Result<(), TrainError> {
        let Some(monitor) = self.monitors.get_mut(&consumer) else {
            return Ok(());
        };
        let mut train = monitor.train.clone();
        train.roll(week);
        *monitor = Self::train_monitor(consumer, &train, &self.config)?;
        Ok(())
    }

    /// Consumers the pipeline monitors.
    pub fn monitored(&self) -> usize {
        self.monitors.len()
    }

    /// Steps 2–3 with no external evidence (step 4 passthrough).
    pub fn assess(&self, consumer: u32, week: &WeekVector) -> Vec<Alert> {
        self.assess_with_evidence(consumer, week, &NoEvidence)
    }

    /// Scores a whole fleet's weekly reports in one call and returns the
    /// cycle report (steps 2–4 for every consumer). Unknown consumers are
    /// skipped; `week_index` labels the report.
    pub fn assess_fleet(
        &self,
        week_index: usize,
        reports: &[(u32, WeekVector)],
        evidence: &dyn ExternalEvidence,
    ) -> crate::report::FrameworkReport {
        let mut all_alerts = Vec::new();
        for (consumer, week) in reports {
            all_alerts.extend(self.assess_with_evidence(*consumer, week, evidence));
        }
        crate::report::FrameworkReport::from_cycle(week_index, reports.len(), all_alerts)
    }

    /// Steps 2–4: scores the week, labels anomalies, applies external
    /// evidence. Unknown consumers yield no alerts.
    pub fn assess_with_evidence(
        &self,
        consumer: u32,
        week: &WeekVector,
        evidence: &dyn ExternalEvidence,
    ) -> Vec<Alert> {
        let Some(monitor) = self.monitors.get(&consumer) else {
            return Vec::new();
        };
        let mut alerts = Vec::new();
        let summary = week.summary();
        let (mean_lo, mean_hi) = monitor.mean_range;
        let kld_verdict = monitor.kld.assess(week);
        let interval_flag = monitor
            .interval
            .as_ref()
            .is_some_and(|(_, integrated)| integrated.is_anomalous(week));

        if kld_verdict.anomalous || interval_flag {
            let (kind, role, score) = if summary.mean < mean_lo {
                (
                    AnomalyKind::AbnormallyLow,
                    RoleHint::Attacker,
                    mean_lo - summary.mean,
                )
            } else if summary.mean > mean_hi {
                (
                    AnomalyKind::AbnormallyHigh,
                    RoleHint::Victim,
                    summary.mean - mean_hi,
                )
            } else {
                (
                    AnomalyKind::DistributionShift,
                    RoleHint::Unknown,
                    kld_verdict.score,
                )
            };
            alerts.push(Alert {
                consumer,
                kind,
                role,
                score,
                suppressed: evidence.explain(consumer, kind),
            });
        }

        // Load-shift check: the 3A/3B signature is a week whose overall
        // histogram is intact (no unconditioned flag) while a tariff
        // band's conditional distribution diverges *decisively*. Organic
        // band exceedances cluster just above the percentile threshold; a
        // swap dumps the week's largest readings into the cheap band and
        // overshoots it by whole bits, so the margin requirement keeps
        // the operator's false-alert load low without losing the attack.
        const LOAD_SHIFT_MARGIN_BITS: f64 = 0.5;
        let band_scores = monitor
            .conditioned
            .band_scores(week)
            // lint:allow(no-panic-in-lib, monitors share edges by construction; band_scores covers untrusted artifacts)
            .expect("same edges by construction");
        let decisive_band = band_scores
            .iter()
            .any(|(score, threshold)| score - threshold > LOAD_SHIFT_MARGIN_BITS);
        if decisive_band && !kld_verdict.anomalous {
            let kind = AnomalyKind::LoadShift;
            alerts.push(Alert {
                consumer,
                kind,
                role: RoleHint::Attacker,
                score: band_scores
                    .iter()
                    .map(|(s, t)| s - t)
                    .fold(f64::NEG_INFINITY, f64::max),
                suppressed: evidence.explain(consumer, kind),
            });
        }
        alerts
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdeta_attacks::optimal_swap;
    use fdeta_cer_synth::DatasetConfig;
    use fdeta_tsdata::SLOTS_PER_WEEK;

    fn pipeline_and_data() -> (Pipeline, SyntheticDataset) {
        let data = SyntheticDataset::generate(&DatasetConfig::small(5, 12, 77));
        let config = PipelineConfig {
            train_weeks: 10,
            ..Default::default()
        };
        let pipeline = Pipeline::train(&data, &config).unwrap();
        (pipeline, data)
    }

    #[test]
    fn trains_one_monitor_per_consumer() {
        let (pipeline, data) = pipeline_and_data();
        assert_eq!(pipeline.monitored(), data.len());
    }

    #[test]
    fn unknown_consumer_yields_no_alerts() {
        let (pipeline, _) = pipeline_and_data();
        let week = WeekVector::new(vec![1.0; SLOTS_PER_WEEK]).unwrap();
        assert!(pipeline.assess(99_999, &week).is_empty());
    }

    #[test]
    fn inflated_week_is_labelled_victim() {
        let (pipeline, data) = pipeline_and_data();
        let record = data.consumer(0);
        let split = data.split(0, 10).unwrap();
        let inflated: Vec<f64> = split.test.week(0).iter().map(|v| v * 4.0 + 1.0).collect();
        let week = WeekVector::new(inflated).unwrap();
        let alerts = pipeline.assess(record.id, &week);
        assert!(
            alerts.iter().any(|a| a.kind == AnomalyKind::AbnormallyHigh
                && a.role == RoleHint::Victim
                && a.actionable()),
            "alerts: {alerts:?}"
        );
    }

    #[test]
    fn zeroed_week_is_labelled_attacker() {
        let (pipeline, data) = pipeline_and_data();
        let record = data.consumer(1);
        let week = WeekVector::new(vec![0.0; SLOTS_PER_WEEK]).unwrap();
        let alerts = pipeline.assess(record.id, &week);
        assert!(
            alerts
                .iter()
                .any(|a| a.kind == AnomalyKind::AbnormallyLow && a.role == RoleHint::Attacker),
            "alerts: {alerts:?}"
        );
    }

    #[test]
    fn holiday_evidence_suppresses_low_alerts() {
        let (pipeline, data) = pipeline_and_data();
        let record = data.consumer(1);
        let week = WeekVector::new(vec![0.0; SLOTS_PER_WEEK]).unwrap();
        let alerts = pipeline.assess_with_evidence(record.id, &week, &HolidayCalendar::new(true));
        let low = alerts
            .iter()
            .find(|a| a.kind == AnomalyKind::AbnormallyLow)
            .expect("low alert still produced");
        assert!(!low.actionable(), "holiday evidence must suppress: {low:?}");
    }

    #[test]
    fn fleet_assessment_aggregates_cycle_alerts() {
        let (pipeline, data) = pipeline_and_data();
        let reports: Vec<(u32, WeekVector)> = (0..data.len())
            .map(|i| {
                let split = data.split(i, 10).unwrap();
                let week = if i == 1 {
                    // One blatant under-reporter in the fleet.
                    WeekVector::new(vec![0.0; SLOTS_PER_WEEK]).unwrap()
                } else {
                    split.test.week_vector(0)
                };
                (data.consumer(i).id, week)
            })
            .collect();
        let report = pipeline.assess_fleet(7, &reports, &crate::pipeline::NoEvidence);
        assert_eq!(report.week, 7);
        assert_eq!(report.consumers_scored, data.len());
        assert!(
            report
                .alerts
                .iter()
                .any(|a| a.consumer == data.consumer(1).id),
            "the planted under-reporter must be among the cycle's alerts"
        );
    }

    #[test]
    fn rolling_retraining_adapts_to_a_new_level() {
        // A consumer whose consumption permanently doubles (e.g. an EV):
        // at first the new level alerts; after the trusted window has
        // rolled over it, the same level is normal.
        let (mut pipeline, data) = pipeline_and_data();
        let record = data.consumer(2);
        let split = data.split(2, 10).unwrap();
        let doubled = WeekVector::new(
            split
                .test
                .week(0)
                .iter()
                .map(|v| v * 3.0 + 0.5)
                .collect::<Vec<f64>>(),
        )
        .unwrap();
        assert!(
            !pipeline.assess(record.id, &doubled).is_empty(),
            "tripled consumption must alert at first"
        );
        // The utility investigates, finds an EV, and rolls the new normal
        // into the training window for a full window length.
        for _ in 0..10 {
            pipeline.observe_trusted_week(record.id, &doubled).unwrap();
        }
        assert!(
            pipeline.assess(record.id, &doubled).is_empty(),
            "after retraining, the new level is the baseline"
        );
    }

    #[test]
    fn rolling_unknown_consumer_is_a_noop() {
        let (mut pipeline, _) = pipeline_and_data();
        let week = WeekVector::new(vec![1.0; SLOTS_PER_WEEK]).unwrap();
        pipeline.observe_trusted_week(424242, &week).unwrap();
    }

    #[test]
    fn load_shift_alert_fires_for_swap_on_quiet_weeks() {
        // The swap signature: conditioned flag without an unconditioned
        // flag. Verified on a consumer whose clean week passes both.
        let (pipeline, data) = pipeline_and_data();
        let mut fired = false;
        for index in 0..data.len() {
            let record = data.consumer(index);
            let split = data.split(index, 10).unwrap();
            let clean = split.test.week_vector(0);
            if !pipeline.assess(record.id, &clean).is_empty() {
                continue; // organically anomalous week; skip
            }
            let attack = optimal_swap(&clean, &TouPlan::ireland_nightsaver(), 0);
            let alerts = pipeline.assess(record.id, &attack.reported);
            if alerts.iter().any(|a| a.kind == AnomalyKind::LoadShift) {
                fired = true;
                break;
            }
        }
        assert!(fired, "no load-shift alert fired for any quiet consumer");
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;
    use fdeta_cer_synth::DatasetConfig;

    #[test]
    fn training_twice_serialises_byte_identically() {
        // Regression: with a HashMap of monitors, two identically-trained
        // pipelines serialised in different (random) monitor orders.
        let data = SyntheticDataset::generate(&DatasetConfig::small(5, 12, 123));
        let config = PipelineConfig {
            train_weeks: 10,
            ..Default::default()
        };
        let first = serde_json::to_string(&Pipeline::train(&data, &config).unwrap()).unwrap();
        let second = serde_json::to_string(&Pipeline::train(&data, &config).unwrap()).unwrap();
        assert_eq!(first, second, "persisted pipelines must be byte-identical");
    }

    #[test]
    fn fleet_report_alerts_follow_submission_order() {
        // Alerts in a cycle report appear in the order the weekly reports
        // were submitted, not in any map-iteration order.
        let data = SyntheticDataset::generate(&DatasetConfig::small(5, 12, 77));
        let config = PipelineConfig {
            train_weeks: 10,
            ..Default::default()
        };
        let pipeline = Pipeline::train(&data, &config).unwrap();
        // Every consumer blatantly under-reports, so every consumer alerts;
        // submit the reports in reversed id order to make ordering visible.
        let zero = WeekVector::new(vec![0.0; fdeta_tsdata::SLOTS_PER_WEEK]).unwrap();
        let mut reports: Vec<(u32, WeekVector)> = (0..data.len())
            .map(|i| (data.consumer(i).id, zero.clone()))
            .collect();
        reports.reverse();
        let report = pipeline.assess_fleet(3, &reports, &NoEvidence);
        let mut alert_order: Vec<u32> = report.alerts.iter().map(|a| a.consumer).collect();
        alert_order.dedup(); // a consumer's alerts are contiguous
        let expected: Vec<u32> = reports
            .iter()
            .map(|(id, _)| *id)
            .filter(|id| alert_order.contains(id))
            .collect();
        assert!(!alert_order.is_empty(), "zero weeks must raise alerts");
        assert_eq!(
            alert_order, expected,
            "alert order must mirror report submission order"
        );
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use fdeta_cer_synth::DatasetConfig;

    #[test]
    fn pipeline_round_trips_through_serde_with_identical_verdicts() {
        let data = SyntheticDataset::generate(&DatasetConfig::small(4, 12, 99));
        let config = PipelineConfig {
            train_weeks: 10,
            ..Default::default()
        };
        let pipeline = Pipeline::train(&data, &config).unwrap();
        let json = serde_json::to_string(&pipeline).expect("pipelines serialise");
        let restored: Pipeline = serde_json::from_str(&json).expect("pipelines deserialise");
        assert_eq!(restored.monitored(), pipeline.monitored());
        for index in 0..data.len() {
            let record = data.consumer(index);
            let split = data.split(index, 10).unwrap();
            for w in 0..split.test.weeks() {
                let week = split.test.week_vector(w);
                assert_eq!(
                    pipeline.assess(record.id, &week),
                    restored.assess(record.id, &week),
                    "verdicts must survive persistence (consumer {index}, week {w})"
                );
            }
        }
    }
}
