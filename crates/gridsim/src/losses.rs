//! Calculated network losses (Section V-A).
//!
//! The paper's loss pseudo-nodes "model line impedances and transformer
//! losses", and their values are "not reported, but calculated by
//! utilities based on known values of distribution system component
//! specifications, such as line impedances" (the calculation the paper
//! attributes to Nikovski et al., its reference \[24\]). This module implements
//! that calculation for the two dominant loss mechanisms:
//!
//! * **Series (copper) loss** — `I²R` heating of a line segment: with the
//!   downstream real power `P` delivered at line-to-line voltage `V` and
//!   power factor `pf`, the current is `I = P / (√3 · V · pf)` (three
//!   phase), so the loss is `3 · I² · R`.
//! * **Shunt (core) loss** — transformer magnetisation: a constant
//!   no-load loss while the segment is energised.
//!
//! A [`LossModel`] attached to a loss leaf lets a snapshot be *derived*
//! from consumer demands instead of hand-entered, which is how the
//! investigation algorithms obtain `D_l(t)` in practice.

use serde::{Deserialize, Serialize};

use crate::balance::Snapshot;
use crate::error::GridError;
use crate::topology::GridTopology;

/// Component specification for one loss segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossModel {
    /// Series resistance per phase, in ohms.
    pub resistance_ohm: f64,
    /// Line-to-line voltage at the segment, in volts (e.g. 400 V LV,
    /// 10–20 kV MV).
    pub voltage_v: f64,
    /// Power factor of the downstream load (0 < pf <= 1).
    pub power_factor: f64,
    /// Constant no-load (core) loss, in kW.
    pub no_load_kw: f64,
}

impl LossModel {
    /// A typical European low-voltage feeder segment: 400 V, 50 mΩ series
    /// resistance, pf 0.95, 50 W core loss.
    pub fn typical_lv() -> Self {
        Self {
            resistance_ohm: 0.05,
            voltage_v: 400.0,
            power_factor: 0.95,
            no_load_kw: 0.05,
        }
    }

    /// A typical medium-voltage segment: 10 kV, 1 Ω series resistance,
    /// pf 0.95, 1 kW transformer core loss.
    pub fn typical_mv() -> Self {
        Self {
            resistance_ohm: 1.0,
            voltage_v: 10_000.0,
            power_factor: 0.95,
            no_load_kw: 1.0,
        }
    }

    /// Loss in kW for a downstream real power `downstream_kw`.
    ///
    /// # Panics
    ///
    /// Panics if the model has non-positive voltage or power factor
    /// (construction bugs, not data conditions).
    pub fn loss_kw(&self, downstream_kw: f64) -> f64 {
        assert!(self.voltage_v > 0.0, "voltage must be positive");
        assert!(
            self.power_factor > 0.0 && self.power_factor <= 1.0,
            "power factor must be in (0, 1]"
        );
        let p_w = downstream_kw.max(0.0) * 1000.0;
        // Three-phase line current.
        let current = p_w / (3f64.sqrt() * self.voltage_v * self.power_factor);
        let copper_w = 3.0 * current * current * self.resistance_ohm;
        self.no_load_kw + copper_w / 1000.0
    }
}

/// Derives the loss-leaf values of `snapshot` from the consumer demands
/// already recorded in it: each loss leaf's value becomes
/// `model.loss_kw(sum of actual sibling-subtree consumer demands)`.
///
/// The same model is applied to every loss leaf; per-segment models can
/// be applied by calling [`LossModel::loss_kw`] and
/// [`Snapshot::set_loss`] directly.
///
/// # Errors
///
/// Returns [`GridError::MissingDemand`] if a consumer demand needed for
/// the calculation has not been recorded.
pub fn derive_losses(
    grid: &GridTopology,
    snapshot: &mut Snapshot,
    model: &LossModel,
) -> Result<(), GridError> {
    // Collect first (immutably), then write.
    let mut updates = Vec::new();
    for loss in grid.losses() {
        let parent = grid.parent(loss).expect("loss leaves always have a parent");
        let mut downstream = 0.0;
        for c in grid.consumer_descendants(parent) {
            downstream += snapshot.actual(c)?;
        }
        updates.push((loss, model.loss_kw(downstream)));
    }
    for (loss, value) in updates {
        snapshot.set_loss(grid, loss, value)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copper_loss_is_quadratic_in_load() {
        let model = LossModel::typical_lv();
        let base = model.loss_kw(0.0);
        let at_10 = model.loss_kw(10.0) - base;
        let at_20 = model.loss_kw(20.0) - base;
        assert!(
            (at_20 / at_10 - 4.0).abs() < 1e-9,
            "I²R loss must scale quadratically"
        );
    }

    #[test]
    fn no_load_loss_present_at_zero_demand() {
        let model = LossModel::typical_mv();
        assert!((model.loss_kw(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_lv_example() {
        // 10 kW at 400 V, pf 0.95: I = 10000 / (1.732 * 400 * 0.95) ≈ 15.19 A;
        // copper = 3 * 15.19² * 0.05 ≈ 34.6 W.
        let model = LossModel::typical_lv();
        let loss = model.loss_kw(10.0);
        assert!((loss - (0.05 + 0.0346)).abs() < 5e-4, "loss = {loss}");
    }

    #[test]
    fn mv_losses_are_relatively_smaller() {
        // Same power at 25× the voltage ⇒ ~625× less copper loss per ohm.
        let lv = LossModel {
            no_load_kw: 0.0,
            ..LossModel::typical_lv()
        };
        let mv = LossModel {
            no_load_kw: 0.0,
            ..LossModel::typical_mv()
        };
        let p = 50.0;
        let lv_frac = lv.loss_kw(p) / p;
        let mv_frac = mv.loss_kw(p) / p;
        assert!(mv_frac < lv_frac, "high voltage must lose less per kW");
    }

    #[test]
    fn derive_losses_fills_every_loss_leaf() {
        let grid = GridTopology::balanced(1, 2, 3);
        let mut snapshot = Snapshot::new();
        for c in grid.consumers() {
            snapshot.set_consumer(&grid, c, 2.0, 2.0).expect("consumer");
        }
        derive_losses(&grid, &mut snapshot, &LossModel::typical_lv()).expect("demands set");
        for l in grid.losses() {
            // 3 consumers × 2 kW downstream of each bus.
            let expected = LossModel::typical_lv().loss_kw(6.0);
            assert!((snapshot.loss(l) - expected).abs() < 1e-12);
        }
        // The derived snapshot passes the balance check end to end.
        let deployment = crate::meter::MeterDeployment::full(&grid);
        let checker = crate::balance::BalanceChecker::default();
        let events = checker
            .w_events(&grid, &deployment, &snapshot)
            .expect("complete");
        assert!(events.values().all(|s| !s.is_failure()));
    }

    #[test]
    fn derive_losses_requires_demands() {
        let grid = GridTopology::balanced(1, 1, 2);
        let mut snapshot = Snapshot::new();
        assert!(matches!(
            derive_losses(&grid, &mut snapshot, &LossModel::typical_lv()),
            Err(GridError::MissingDemand(_))
        ));
    }
}
