//! The balance check (Section V-A) and the Section V-B meter-fault alarms.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::GridError;
use crate::meter::{MeterDeployment, MeterState};
use crate::topology::{GridTopology, NodeId};

/// Demands at one time period `t`: actual and reported values for consumer
/// leaves, and calculated values for loss leaves.
///
/// The paper's notation: `D_c(t)` (actual), `D'_c(t)` (reported), `D_l(t)`
/// (loss, calculated by the utility from component specifications — losses
/// have no reported variant, Section V-A).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    actual: BTreeMap<NodeId, f64>,
    reported: BTreeMap<NodeId, f64>,
    losses: BTreeMap<NodeId, f64>,
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a consumer's actual and reported demand (kW).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::NotConsumer`] if `node` is not a consumer leaf
    /// of `grid`.
    pub fn set_consumer(
        &mut self,
        grid: &GridTopology,
        node: NodeId,
        actual: f64,
        reported: f64,
    ) -> Result<(), GridError> {
        if !grid.is_consumer(node) {
            return Err(GridError::NotConsumer(node));
        }
        self.actual.insert(node, actual);
        self.reported.insert(node, reported);
        Ok(())
    }

    /// Records a loss leaf's calculated demand (kW).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::UnknownNode`] if `node` is not a loss leaf.
    pub fn set_loss(
        &mut self,
        grid: &GridTopology,
        node: NodeId,
        value: f64,
    ) -> Result<(), GridError> {
        if !grid.is_loss(node) {
            return Err(GridError::UnknownNode(node));
        }
        self.losses.insert(node, value);
        Ok(())
    }

    /// Actual demand of a consumer.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::MissingDemand`] if the consumer was never set.
    pub fn actual(&self, node: NodeId) -> Result<f64, GridError> {
        self.actual
            .get(&node)
            .copied()
            .ok_or(GridError::MissingDemand(node))
    }

    /// Reported demand of a consumer.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::MissingDemand`] if the consumer was never set.
    pub fn reported(&self, node: NodeId) -> Result<f64, GridError> {
        self.reported
            .get(&node)
            .copied()
            .ok_or(GridError::MissingDemand(node))
    }

    /// Calculated loss at a loss leaf (0 if never set — lossless segment).
    pub fn loss(&self, node: NodeId) -> f64 {
        self.losses.get(&node).copied().unwrap_or(0.0)
    }

    /// The physical power flowing through `node` (eq. 4): actual demands of
    /// all consumer descendants plus all losses below it. For a consumer
    /// leaf this is its own actual demand.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::MissingDemand`] if a descendant consumer has no
    /// recorded demand.
    pub fn actual_flow(&self, grid: &GridTopology, node: NodeId) -> Result<f64, GridError> {
        if grid.is_consumer(node) {
            return self.actual(node);
        }
        if grid.is_loss(node) {
            return Ok(self.loss(node));
        }
        let mut total = 0.0;
        for c in grid.consumer_descendants(node) {
            total += self.actual(c)?;
        }
        for l in grid.loss_descendants(node) {
            total += self.loss(l);
        }
        Ok(total)
    }

    /// The right-hand side of eq. (5) at `node`: reported demands of all
    /// consumer descendants plus calculated losses.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::MissingDemand`] if a descendant consumer has no
    /// recorded report.
    pub fn reported_flow(&self, grid: &GridTopology, node: NodeId) -> Result<f64, GridError> {
        if grid.is_consumer(node) {
            return self.reported(node);
        }
        if grid.is_loss(node) {
            return Ok(self.loss(node));
        }
        let mut total = 0.0;
        for c in grid.consumer_descendants(node) {
            total += self.reported(c)?;
        }
        for l in grid.loss_descendants(node) {
            total += self.loss(l);
        }
        Ok(total)
    }
}

/// Outcome of a balance check at one metered node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BalanceStatus {
    /// The check balances within tolerance: the paper's event `W` is false.
    Balanced,
    /// The check fails: `W` is true. Carries the signed mismatch
    /// `D'_N − Σ D'_c − Σ D_l` in kW.
    Unbalanced {
        /// Meter reading minus the reported/loss sum, in kW.
        mismatch_kw: f64,
    },
}

impl BalanceStatus {
    /// Whether this is the failing (`W` true) state.
    pub fn is_failure(&self) -> bool {
        matches!(self, BalanceStatus::Unbalanced { .. })
    }
}

/// Alarms raised by the Section V-B rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalanceAlarm {
    /// `W` is true for a node but false for its (metered) parent: at least
    /// one of the two meters is faulty or compromised.
    ChildFailsParentPasses {
        /// The failing node.
        child: NodeId,
        /// Its passing parent.
        parent: NodeId,
    },
    /// `W` is true for a parent whose metered children all pass: one of
    /// the children — or the parent itself — is faulty or compromised.
    ParentFailsChildrenPass {
        /// The failing parent node.
        parent: NodeId,
    },
}

/// Runs balance checks across a metered grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceChecker {
    /// Absolute tolerance in kW under which a mismatch is considered
    /// balanced. Real meters are accurate to a fraction of a percent
    /// (Section VII-A cites ±0.5% for 99.91% of readings), so a small
    /// positive tolerance avoids false `W` events from float noise.
    pub tolerance_kw: f64,
}

impl Default for BalanceChecker {
    fn default() -> Self {
        Self { tolerance_kw: 1e-6 }
    }
}

impl BalanceChecker {
    /// Creates a checker with the given kW tolerance.
    pub fn new(tolerance_kw: f64) -> Self {
        Self { tolerance_kw }
    }

    /// The value the meter at `node` *reports*: the true flow for a
    /// trusted meter, or a cover value (the reported flow, which makes the
    /// local check pass) for a compromised one. `None` if no meter there.
    ///
    /// # Errors
    ///
    /// Propagates [`GridError::MissingDemand`] from the snapshot.
    pub fn meter_reading(
        &self,
        grid: &GridTopology,
        deployment: &MeterDeployment,
        snapshot: &Snapshot,
        node: NodeId,
    ) -> Result<Option<f64>, GridError> {
        match deployment.state(node) {
            MeterState::Absent => Ok(None),
            MeterState::Trusted => Ok(Some(snapshot.actual_flow(grid, node)?)),
            MeterState::Compromised => Ok(Some(snapshot.reported_flow(grid, node)?)),
        }
    }

    /// Balance check (eq. 5) at one metered internal node. Returns `None`
    /// if the node has no meter.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::NotInternal`] for leaves and propagates
    /// [`GridError::MissingDemand`].
    pub fn check_node(
        &self,
        grid: &GridTopology,
        deployment: &MeterDeployment,
        snapshot: &Snapshot,
        node: NodeId,
    ) -> Result<Option<BalanceStatus>, GridError> {
        if !grid.is_internal(node) {
            return Err(GridError::NotInternal(node));
        }
        let Some(meter) = self.meter_reading(grid, deployment, snapshot, node)? else {
            return Ok(None);
        };
        let expected = snapshot.reported_flow(grid, node)?;
        let mismatch = meter - expected;
        if mismatch.abs() <= self.tolerance_kw {
            Ok(Some(BalanceStatus::Balanced))
        } else {
            Ok(Some(BalanceStatus::Unbalanced {
                mismatch_kw: mismatch,
            }))
        }
    }

    /// Runs the check at every metered internal node, returning the `W`
    /// event map.
    ///
    /// # Errors
    ///
    /// Propagates per-node errors.
    pub fn w_events(
        &self,
        grid: &GridTopology,
        deployment: &MeterDeployment,
        snapshot: &Snapshot,
    ) -> Result<BTreeMap<NodeId, BalanceStatus>, GridError> {
        let mut out = BTreeMap::new();
        for node in grid.internal_nodes() {
            if let Some(status) = self.check_node(grid, deployment, snapshot, node)? {
                out.insert(node, status);
            }
        }
        Ok(out)
    }

    /// Applies the Section V-B alarm rules to a `W` event map.
    pub fn alarms(
        &self,
        grid: &GridTopology,
        events: &BTreeMap<NodeId, BalanceStatus>,
    ) -> Vec<BalanceAlarm> {
        let failed = |n: NodeId| events.get(&n).is_some_and(|s| s.is_failure());
        let metered = |n: NodeId| events.contains_key(&n);
        let mut alarms = Vec::new();
        for (&node, status) in events {
            // Rule 1: child fails, metered parent passes.
            if status.is_failure() {
                if let Some(parent) = grid.parent(node) {
                    if metered(parent) && !failed(parent) {
                        alarms.push(BalanceAlarm::ChildFailsParentPasses {
                            child: node,
                            parent,
                        });
                    }
                }
            }
            // Rule 2: parent fails, all metered internal children pass
            // (only meaningful if it has at least one metered child).
            if status.is_failure() {
                let internal_children: Vec<NodeId> = grid
                    .children(node)
                    .iter()
                    .copied()
                    .filter(|&c| grid.is_internal(c) && metered(c))
                    .collect();
                if !internal_children.is_empty() && internal_children.iter().all(|&c| !failed(c)) {
                    alarms.push(BalanceAlarm::ParentFailsChildrenPass { parent: node });
                }
            }
        }
        alarms.sort_by_key(|a| match a {
            BalanceAlarm::ChildFailsParentPasses { child, .. } => (0, child.raw()),
            BalanceAlarm::ParentFailsChildrenPass { parent } => (1, parent.raw()),
        });
        alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root ── busA ── {c0, c1, lossA}
    ///       └─ busB ── {c2, lossB}
    fn grid() -> (GridTopology, NodeId, NodeId, [NodeId; 3], [NodeId; 2]) {
        let mut g = GridTopology::new();
        let root = g.root();
        let bus_a = g.add_internal(root).unwrap();
        let bus_b = g.add_internal(root).unwrap();
        let c0 = g.add_consumer(bus_a, "c0").unwrap();
        let c1 = g.add_consumer(bus_a, "c1").unwrap();
        let loss_a = g.add_loss(bus_a).unwrap();
        let c2 = g.add_consumer(bus_b, "c2").unwrap();
        let loss_b = g.add_loss(bus_b).unwrap();
        (g, bus_a, bus_b, [c0, c1, c2], [loss_a, loss_b])
    }

    fn honest_snapshot(
        g: &GridTopology,
        consumers: &[NodeId; 3],
        losses: &[NodeId; 2],
    ) -> Snapshot {
        let mut s = Snapshot::new();
        s.set_consumer(g, consumers[0], 1.0, 1.0).unwrap();
        s.set_consumer(g, consumers[1], 2.0, 2.0).unwrap();
        s.set_consumer(g, consumers[2], 3.0, 3.0).unwrap();
        s.set_loss(g, losses[0], 0.1).unwrap();
        s.set_loss(g, losses[1], 0.2).unwrap();
        s
    }

    #[test]
    fn flows_are_additive_like_eq4() {
        let (g, bus_a, _, consumers, losses) = grid();
        let s = honest_snapshot(&g, &consumers, &losses);
        assert!((s.actual_flow(&g, bus_a).unwrap() - 3.1).abs() < 1e-12);
        assert!((s.actual_flow(&g, g.root()).unwrap() - 6.3).abs() < 1e-12);
        assert_eq!(s.actual_flow(&g, consumers[0]).unwrap(), 1.0);
        assert_eq!(s.actual_flow(&g, losses[0]).unwrap(), 0.1);
    }

    #[test]
    fn honest_reports_balance_everywhere() {
        let (g, ..) = grid();
        let (g2, _, _, consumers, losses) = grid();
        assert_eq!(g, g2);
        let s = honest_snapshot(&g, &consumers, &losses);
        let dep = MeterDeployment::full(&g);
        let events = BalanceChecker::default().w_events(&g, &dep, &s).unwrap();
        assert_eq!(events.len(), 3);
        assert!(events.values().all(|st| !st.is_failure()));
        assert!(BalanceChecker::default().alarms(&g, &events).is_empty());
    }

    #[test]
    fn under_reporting_fails_checks_up_to_root() {
        let (g, bus_a, bus_b, consumers, losses) = grid();
        let mut s = honest_snapshot(&g, &consumers, &losses);
        // c0 under-reports by 0.5 kW (Attack Class 2A shape).
        s.set_consumer(&g, consumers[0], 1.0, 0.5).unwrap();
        let dep = MeterDeployment::full(&g);
        let events = BalanceChecker::default().w_events(&g, &dep, &s).unwrap();
        // W true at bus_a and at the root (ancestor propagation, V-B),
        // false at bus_b.
        assert!(events[&bus_a].is_failure());
        assert!(events[&g.root()].is_failure());
        assert!(!events[&bus_b].is_failure());
        if let BalanceStatus::Unbalanced { mismatch_kw } = events[&bus_a] {
            assert!((mismatch_kw - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn compromised_route_hides_theft_from_local_checks_but_not_root() {
        let (g, bus_a, _, consumers, losses) = grid();
        let mut s = honest_snapshot(&g, &consumers, &losses);
        s.set_consumer(&g, consumers[0], 1.0, 0.2).unwrap();
        let mut dep = MeterDeployment::full(&g);
        dep.compromise(bus_a).unwrap();
        let checker = BalanceChecker::default();
        let events = checker.w_events(&g, &dep, &s).unwrap();
        // Local check at the compromised bus passes (cover reading)...
        assert!(!events[&bus_a].is_failure());
        // ...but the trusted root still catches the deficit.
        assert!(events[&g.root()].is_failure());
        // V-B rule 2 fires: parent fails, metered children pass.
        let alarms = checker.alarms(&g, &events);
        assert!(alarms.iter().any(
            |a| matches!(a, BalanceAlarm::ParentFailsChildrenPass { parent } if *parent == g.root())
        ));
    }

    #[test]
    fn neighbor_overreport_circumvents_even_the_root_check() {
        // Attack Class 1B shape: Mallory (c0) consumes 2.0 but reports 1.0;
        // neighbour c1's report is inflated by the difference. Every
        // balance check passes — exactly Proposition 2's conclusion.
        let (g, _, _, consumers, losses) = grid();
        let mut s = honest_snapshot(&g, &consumers, &losses);
        s.set_consumer(&g, consumers[0], 2.0, 1.0).unwrap();
        s.set_consumer(&g, consumers[1], 2.0, 3.0).unwrap();
        let dep = MeterDeployment::full(&g);
        let events = BalanceChecker::default().w_events(&g, &dep, &s).unwrap();
        assert!(events.values().all(|st| !st.is_failure()));
    }

    #[test]
    fn child_fails_parent_passes_alarm() {
        // Make bus_a fail while the root passes: compromise the ROOT meter
        // (it covers), leave bus_a trusted, and have c0 under-report.
        let (g, bus_a, _, consumers, losses) = grid();
        let mut s = honest_snapshot(&g, &consumers, &losses);
        s.set_consumer(&g, consumers[0], 1.0, 0.5).unwrap();
        let mut dep = MeterDeployment::full(&g);
        dep.compromise(g.root()).unwrap();
        let checker = BalanceChecker::default();
        let events = checker.w_events(&g, &dep, &s).unwrap();
        assert!(events[&bus_a].is_failure());
        assert!(!events[&g.root()].is_failure());
        let alarms = checker.alarms(&g, &events);
        assert!(alarms.iter().any(|a| matches!(
            a,
            BalanceAlarm::ChildFailsParentPasses { child, .. } if *child == bus_a
        )));
    }

    #[test]
    fn missing_demand_is_reported() {
        let (g, _, _, consumers, _) = grid();
        let s = Snapshot::new();
        assert_eq!(
            s.actual(consumers[0]),
            Err(GridError::MissingDemand(consumers[0]))
        );
        let dep = MeterDeployment::full(&g);
        assert!(BalanceChecker::default().w_events(&g, &dep, &s).is_err());
    }

    #[test]
    fn snapshot_validates_node_kinds() {
        let (g, bus_a, _, consumers, losses) = grid();
        let mut s = Snapshot::new();
        assert_eq!(
            s.set_consumer(&g, bus_a, 1.0, 1.0),
            Err(GridError::NotConsumer(bus_a))
        );
        assert_eq!(
            s.set_loss(&g, consumers[0], 0.1),
            Err(GridError::UnknownNode(consumers[0]))
        );
        assert!(s.set_loss(&g, losses[0], 0.1).is_ok());
    }

    #[test]
    fn check_node_rejects_leaves_and_unmetered_returns_none() {
        let (g, bus_a, _, consumers, losses) = grid();
        let s = honest_snapshot(&g, &consumers, &losses);
        let dep = MeterDeployment::root_only(&g);
        let checker = BalanceChecker::default();
        assert_eq!(
            checker.check_node(&g, &dep, &s, consumers[0]),
            Err(GridError::NotInternal(consumers[0]))
        );
        assert_eq!(checker.check_node(&g, &dep, &s, bus_a).unwrap(), None);
        assert!(checker
            .check_node(&g, &dep, &s, g.root())
            .unwrap()
            .is_some());
    }
}
