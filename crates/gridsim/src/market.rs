//! A simple real-time electricity market.
//!
//! The paper's RTP scheme assumes prices that "change in a
//! non-deterministic manner that captures the dynamic market trends in
//! electricity demand and supply" (Section III) with an update period
//! `k·Δt`. This module generates such price paths: a deterministic daily
//! demand curve (cheap nights, expensive evenings) modulated by a
//! mean-reverting stochastic component — the standard reduced-form model
//! of day-ahead/real-time prices. Class-4B experiments and the taxonomy
//! simulation consume the resulting [`PricingScheme::RealTime`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use fdeta_tsdata::units::PricePerKwh;
use fdeta_tsdata::SLOTS_PER_DAY;

use crate::pricing::PricingScheme;

/// Parameters of the reduced-form RTP market.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarketModel {
    /// Baseline price level in $/kWh (the daily curve oscillates around
    /// it).
    pub base_price: f64,
    /// Relative amplitude of the deterministic daily curve (0..1).
    pub daily_amplitude: f64,
    /// Mean-reversion rate of the stochastic component per update
    /// (0 = random walk, 1 = white noise).
    pub mean_reversion: f64,
    /// Standard deviation of the per-update shock, as a fraction of the
    /// base price.
    pub volatility: f64,
    /// Price update period in polling slots (the paper's `k`).
    pub update_period_slots: usize,
}

impl Default for MarketModel {
    fn default() -> Self {
        Self {
            // Centred between the paper's TOU prices.
            base_price: 0.195,
            daily_amplitude: 0.3,
            mean_reversion: 0.2,
            volatility: 0.08,
            update_period_slots: 2, // hourly updates
        }
    }
}

impl MarketModel {
    /// The deterministic daily shape at a given update index: cheap
    /// overnight, a morning shoulder, an evening peak.
    fn daily_shape(&self, update_index: usize) -> f64 {
        let updates_per_day = (SLOTS_PER_DAY / self.update_period_slots).max(1);
        let phase = (update_index % updates_per_day) as f64 / updates_per_day as f64;
        // Two harmonics give the characteristic double-hump price curve:
        // the fundamental peaks in the evening (phase ~0.75, i.e. ~18:00)
        // and bottoms overnight; the weak second harmonic adds the morning
        // shoulder.
        let tau = std::f64::consts::TAU;
        1.0 + self.daily_amplitude
            * (0.8 * ((phase - 0.5) * tau).sin() + 0.2 * ((phase - 0.08) * 2.0 * tau).sin())
    }

    /// Simulates a price path covering `slots` polling slots, returning a
    /// ready-to-use [`PricingScheme::RealTime`]. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the model has a non-positive base price, an update period
    /// of zero, or volatility/amplitude outside sane bounds (construction
    /// bugs).
    pub fn simulate(&self, slots: usize, seed: u64) -> PricingScheme {
        assert!(self.base_price > 0.0, "base price must be positive");
        assert!(
            self.update_period_slots > 0,
            "update period must be positive"
        );
        assert!(
            (0.0..1.0).contains(&self.daily_amplitude),
            "amplitude in [0, 1)"
        );
        assert!(
            (0.0..=1.0).contains(&self.mean_reversion),
            "mean reversion in [0, 1]"
        );
        assert!(
            self.volatility >= 0.0 && self.volatility < 1.0,
            "volatility in [0, 1)"
        );
        let updates = slots.div_ceil(self.update_period_slots).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut deviation = 0.0f64; // stochastic component, relative units
        let mut prices = Vec::with_capacity(updates);
        for u in 0..updates {
            let shock: f64 = (0..12).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() - 6.0;
            deviation = (1.0 - self.mean_reversion) * deviation + self.volatility * shock;
            let level = self.base_price * self.daily_shape(u) * (1.0 + deviation);
            // Prices floor at a small positive scrap value — negative
            // wholesale prices exist but retail RTP tariffs clamp them.
            prices.push(PricePerKwh::new_unchecked(level.max(0.01)));
        }
        PricingScheme::RealTime {
            prices,
            update_period_slots: self.update_period_slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdeta_tsdata::SLOTS_PER_WEEK;

    #[test]
    fn simulated_path_is_valid_and_deterministic() {
        let model = MarketModel::default();
        let a = model.simulate(SLOTS_PER_WEEK, 7);
        let b = model.simulate(SLOTS_PER_WEEK, 7);
        assert_eq!(a, b);
        for t in 0..SLOTS_PER_WEEK {
            let p = a.price_at(t).value();
            assert!(p >= 0.01 && p.is_finite(), "price {p} at slot {t}");
        }
        assert!(a.is_variable());
        assert!(a.is_real_time());
    }

    #[test]
    fn evening_prices_exceed_night_prices_on_average() {
        let model = MarketModel {
            volatility: 0.02,
            ..MarketModel::default()
        };
        let scheme = model.simulate(SLOTS_PER_WEEK, 3);
        let mut night = 0.0;
        let mut evening = 0.0;
        let mut days = 0.0;
        for day in 0..7 {
            let base = day * SLOTS_PER_DAY;
            // 02:00-05:00 vs 17:00-20:00.
            night += (4..10)
                .map(|s| scheme.price_at(base + s).value())
                .sum::<f64>()
                / 6.0;
            evening += (34..40)
                .map(|s| scheme.price_at(base + s).value())
                .sum::<f64>()
                / 6.0;
            days += 1.0;
        }
        assert!(
            evening / days > night / days,
            "evening {evening} should exceed night {night} on average"
        );
    }

    #[test]
    fn volatility_widens_the_price_range() {
        let calm = MarketModel {
            volatility: 0.01,
            ..MarketModel::default()
        }
        .simulate(SLOTS_PER_WEEK, 5);
        let wild = MarketModel {
            volatility: 0.20,
            ..MarketModel::default()
        }
        .simulate(SLOTS_PER_WEEK, 5);
        let spread = |scheme: &PricingScheme| {
            let prices: Vec<f64> = (0..SLOTS_PER_WEEK)
                .map(|t| scheme.price_at(t).value())
                .collect();
            prices.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - prices.iter().cloned().fold(f64::INFINITY, f64::min)
        };
        assert!(spread(&wild) > spread(&calm));
    }

    #[test]
    fn update_period_is_respected() {
        let model = MarketModel {
            update_period_slots: 4,
            ..MarketModel::default()
        };
        let scheme = model.simulate(96, 11);
        // Prices constant within each 4-slot update window.
        for t in (0..96).step_by(4) {
            for offset in 1..4 {
                assert_eq!(scheme.price_at(t), scheme.price_at(t + offset));
            }
        }
    }

    #[test]
    fn mean_price_tracks_the_base_price() {
        let model = MarketModel::default();
        let scheme = model.simulate(SLOTS_PER_WEEK * 8, 13);
        let n = SLOTS_PER_WEEK * 8;
        let mean: f64 = (0..n).map(|t| scheme.price_at(t).value()).sum::<f64>() / n as f64;
        assert!(
            (mean - model.base_price).abs() < model.base_price * 0.3,
            "long-run mean {mean} should be near base {}",
            model.base_price
        );
    }
}
