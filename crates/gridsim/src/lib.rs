//! Electric distribution grid substrate for the F-DETA reproduction.
//!
//! Section V of the paper models the (radial) distribution grid as an
//! unbalanced n-ary tree whose internal nodes host *balance meters* and
//! whose leaves are either end-consumers or network-loss pseudo-nodes.
//! This crate implements that model and everything the paper's framework
//! needs from it:
//!
//! * [`topology`] — the arena-based radial tree ([`GridTopology`],
//!   [`NodeId`]), with consumer/loss leaves and internal nodes.
//! * [`meter`] — per-node meter deployment and compromise state. The
//!   evaluation's conservative assumption ("the balance meter at the root
//!   node is the only meter that has been deployed", Section VIII-A) is one
//!   configuration; full instrumentation for the Section V-B/V-C
//!   investigation algorithms is another.
//! * [`balance`] — the balance check (eqs. 4–6), per-node `W` events, and
//!   the Section V-B alarm rules for locating faulty or compromised meters.
//! * [`investigate`] — the Section V-C investigation procedures: Case 1
//!   (fully instrumented: deepest failing meter) and Case 2 (portable-meter
//!   BFS with subtree pruning), plus the attacker-side cost analysis of how
//!   many meters must be compromised along the route to the root.
//! * [`pricing`] — flat-rate, time-of-use and real-time pricing schemes
//!   (Section III), including the paper's Electric Ireland NightSaver-style
//!   TOU plan (peak 09:00–24:00 at 0.21 $/kWh, off-peak at 0.18 $/kWh).
//! * [`billing`] — billing and the paper's monetary quantities: the
//!   attacker advantage `α` (eqs. 1–2), the neighbour loss `L_n` (eq. 10),
//!   and the deceptive bill delta `ΔB` of Attack Class 4B (eq. 11).
//! * [`adr`] — the Consumer Own Elasticity model of automated demand
//!   response, the ingredient of Attack Class 4B.
//!
//! # Example
//!
//! ```
//! use fdeta_gridsim::topology::GridTopology;
//!
//! # fn main() -> Result<(), fdeta_gridsim::GridError> {
//! let mut grid = GridTopology::new();
//! let root = grid.root();
//! let feeder = grid.add_internal(root)?;
//! let alice = grid.add_consumer(feeder, "alice")?;
//! let loss = grid.add_loss(feeder)?;
//! assert_eq!(grid.children(feeder), &[alice, loss]);
//! assert_eq!(grid.depth(alice), 2);
//! # Ok(())
//! # }
//! ```

pub mod adr;
pub mod balance;
pub mod billing;
pub mod dot;
pub mod error;
pub mod investigate;
pub mod losses;
pub mod market;
pub mod meter;
pub mod pricing;
pub mod topology;

pub use adr::ElasticityModel;
pub use balance::{BalanceChecker, BalanceStatus, Snapshot};
pub use billing::{attacker_advantage, bill, neighbor_loss};
pub use dot::{to_dot, write_dot};
pub use error::GridError;
pub use investigate::{Investigation, PortableMeterSearch};
pub use losses::{derive_losses, LossModel};
pub use market::MarketModel;
pub use meter::{MeterDeployment, MeterState};
pub use pricing::{PricingScheme, TouPlan};
pub use topology::{GridTopology, NodeId, NodeKind};
