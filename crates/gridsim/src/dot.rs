//! Graphviz export of grid topologies.
//!
//! Utilities reason about feeders visually; `to_dot` renders the radial
//! tree with meter deployment state and (optionally) the latest balance
//! check outcomes, ready for `dot -Tsvg`.

use std::collections::BTreeMap;
use std::fmt::{self, Write};

use crate::balance::BalanceStatus;
use crate::meter::{MeterDeployment, MeterState};
use crate::topology::{GridTopology, NodeId};

/// Writes the topology in Graphviz DOT format into any [`fmt::Write`]
/// sink, propagating the sink's errors instead of panicking.
///
/// Internal nodes are circles coloured by meter state (white = no meter,
/// green = trusted, red = compromised); consumers are boxes; losses are
/// small diamonds. If `events` is given, failing balance checks get a
/// double border and a `W` suffix.
///
/// # Errors
///
/// Returns whatever [`fmt::Error`] the sink reports.
pub fn write_dot<W: Write>(
    grid: &GridTopology,
    deployment: &MeterDeployment,
    events: Option<&BTreeMap<NodeId, BalanceStatus>>,
    out: &mut W,
) -> fmt::Result {
    out.write_str("digraph feeder {\n  rankdir=TB;\n  node [fontsize=10];\n")?;
    for node in grid.iter() {
        let id = node.raw();
        if grid.is_internal(node) {
            let fill = match deployment.state(node) {
                MeterState::Absent => "white",
                MeterState::Trusted => "palegreen",
                MeterState::Compromised => "lightcoral",
            };
            let failing = events
                .and_then(|e| e.get(&node))
                .is_some_and(BalanceStatus::is_failure);
            let label = if node == grid.root() {
                "root".to_owned()
            } else {
                format!("N{id}")
            };
            let label = if failing { format!("{label} W") } else { label };
            let peripheries = if failing { 2 } else { 1 };
            writeln!(
                out,
                "  n{id} [shape=circle style=filled fillcolor={fill} \
                 peripheries={peripheries} label=\"{label}\"];"
            )?;
        } else if grid.is_consumer(node) {
            let label = grid.consumer_label(node).unwrap_or("?");
            writeln!(out, "  n{id} [shape=box label=\"{label}\"];")?;
        } else {
            writeln!(
                out,
                "  n{id} [shape=diamond width=0.3 height=0.3 label=\"L\"];"
            )?;
        }
    }
    for node in grid.iter() {
        for &child in grid.children(node) {
            writeln!(out, "  n{} -> n{};", node.raw(), child.raw())?;
        }
    }
    out.write_str("}\n")
}

/// Renders the topology in Graphviz DOT format. See [`write_dot`] for the
/// rendering rules.
pub fn to_dot(
    grid: &GridTopology,
    deployment: &MeterDeployment,
    events: Option<&BTreeMap<NodeId, BalanceStatus>>,
) -> String {
    let mut out = String::new();
    // `fmt::Write` for `String` is infallible: the only error source is
    // the sink itself, and a String sink never reports one.
    let _ = write_dot(grid, deployment, events, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{BalanceChecker, Snapshot};

    fn grid() -> (GridTopology, NodeId) {
        let mut g = GridTopology::new();
        let bus = g.add_internal(g.root()).unwrap();
        g.add_consumer(bus, "alice").unwrap();
        g.add_consumer(bus, "bob").unwrap();
        g.add_loss(bus).unwrap();
        (g, bus)
    }

    #[test]
    fn renders_every_node_and_edge() {
        let (g, _) = grid();
        let dot = to_dot(&g, &MeterDeployment::full(&g), None);
        assert!(dot.starts_with("digraph feeder {"));
        assert!(dot.trim_end().ends_with('}'));
        // 5 nodes, 4 edges.
        assert_eq!(dot.matches("shape=").count(), 5);
        assert_eq!(dot.matches("->").count(), 4);
        assert!(dot.contains("alice"));
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("fillcolor=palegreen"));
    }

    #[test]
    fn compromised_meters_are_red_and_absent_white() {
        let (g, bus) = grid();
        let mut dep = MeterDeployment::root_only(&g);
        let dot = to_dot(&g, &dep, None);
        assert!(dot.contains("fillcolor=white"), "unmetered bus is white");
        dep = MeterDeployment::full(&g);
        dep.compromise(bus).unwrap();
        let dot = to_dot(&g, &dep, None);
        assert!(dot.contains("fillcolor=lightcoral"));
    }

    #[test]
    fn failing_checks_get_marked() {
        let (g, _) = grid();
        let mut snap = Snapshot::new();
        for c in g.consumers() {
            snap.set_consumer(&g, c, 1.0, 0.5).unwrap();
        }
        let dep = MeterDeployment::full(&g);
        let events = BalanceChecker::default().w_events(&g, &dep, &snap).unwrap();
        let dot = to_dot(&g, &dep, Some(&events));
        assert!(dot.contains("peripheries=2"));
        assert!(dot.contains(" W\""));
    }
}
