//! Radial distribution grid topology as an arena-based n-ary tree.
//!
//! The paper (Section V) assumes radial topologies: power reaches each
//! consumer through a single path from the distribution substation (the
//! *root node*). Internal nodes are buses/transformers where balance meters
//! can live; leaves are end-consumers or loss pseudo-nodes that model line
//! impedance and transformer losses.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::GridError;

/// Index of a node in a [`GridTopology`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Constructs a raw id; only meaningful for ids previously handed out
    /// by the same topology.
    pub fn from_raw(raw: u32) -> Self {
        Self(raw)
    }

    /// The raw index value.
    pub fn raw(self) -> u32 {
        self.0
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A bus/transformer that can host a balance meter.
    Internal,
    /// An end-consumer with a smart meter; carries a stable label so
    /// datasets can be joined back to the topology.
    Consumer {
        /// External identifier, e.g. the anonymised CER meter id.
        label: String,
    },
    /// A network-loss pseudo-node (line impedance / transformer loss).
    /// The utility *calculates* these rather than metering them
    /// (Section V-A).
    Loss,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Node {
    kind: NodeKind,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    depth: usize,
}

/// A radial distribution grid: a rooted tree of internal nodes with
/// consumer and loss leaves.
///
/// The root (a distribution substation) always exists and is internal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridTopology {
    nodes: Vec<Node>,
}

impl Default for GridTopology {
    fn default() -> Self {
        Self::new()
    }
}

impl GridTopology {
    /// Creates a topology containing only the root node.
    pub fn new() -> Self {
        Self {
            nodes: vec![Node {
                kind: NodeKind::Internal,
                parent: None,
                children: Vec::new(),
                depth: 0,
            }],
        }
    }

    /// The root node (the trusted substation of Section VII-A).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    fn node(&self, id: NodeId) -> Result<&Node, GridError> {
        self.nodes.get(id.index()).ok_or(GridError::UnknownNode(id))
    }

    fn attach(&mut self, parent: NodeId, kind: NodeKind) -> Result<NodeId, GridError> {
        let parent_node = self.node(parent)?;
        if parent_node.kind != NodeKind::Internal {
            return Err(GridError::LeafCannotHaveChildren(parent));
        }
        let depth = parent_node.depth + 1;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            children: Vec::new(),
            depth,
        });
        self.nodes[parent.index()].children.push(id);
        Ok(id)
    }

    /// Adds an internal node (bus/transformer) under `parent`.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::UnknownNode`] or
    /// [`GridError::LeafCannotHaveChildren`].
    pub fn add_internal(&mut self, parent: NodeId) -> Result<NodeId, GridError> {
        self.attach(parent, NodeKind::Internal)
    }

    /// Adds a consumer leaf under `parent`.
    ///
    /// # Errors
    ///
    /// As [`GridTopology::add_internal`].
    pub fn add_consumer(
        &mut self,
        parent: NodeId,
        label: impl Into<String>,
    ) -> Result<NodeId, GridError> {
        self.attach(
            parent,
            NodeKind::Consumer {
                label: label.into(),
            },
        )
    }

    /// Adds a loss pseudo-leaf under `parent`.
    ///
    /// # Errors
    ///
    /// As [`GridTopology::add_internal`].
    pub fn add_loss(&mut self, parent: NodeId) -> Result<NodeId, GridError> {
        self.attach(parent, NodeKind::Loss)
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the grid has only the bare root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The kind of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this topology.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// Children of a node, in insertion order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.nodes[id.index()].depth
    }

    /// Whether the node is an internal node.
    pub fn is_internal(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Internal)
    }

    /// Whether the node is a consumer leaf.
    pub fn is_consumer(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Consumer { .. })
    }

    /// Whether the node is a loss pseudo-leaf.
    pub fn is_loss(&self, id: NodeId) -> bool {
        matches!(self.nodes[id.index()].kind, NodeKind::Loss)
    }

    /// Consumer label, if the node is a consumer.
    pub fn consumer_label(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.index()].kind {
            NodeKind::Consumer { label } => Some(label),
            _ => None,
        }
    }

    /// All node ids, root first.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All internal node ids.
    pub fn internal_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().filter(|&id| self.is_internal(id))
    }

    /// All consumer node ids.
    pub fn consumers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().filter(|&id| self.is_consumer(id))
    }

    /// All loss node ids.
    pub fn losses(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().filter(|&id| self.is_loss(id))
    }

    /// Consumer leaves in the subtree rooted at `node` — the paper's `C`
    /// set for the balance check at that node.
    pub fn consumer_descendants(&self, node: NodeId) -> Vec<NodeId> {
        self.descendants_matching(node, |id| self.is_consumer(id))
    }

    /// Loss leaves in the subtree rooted at `node` — the paper's `L` set.
    pub fn loss_descendants(&self, node: NodeId) -> Vec<NodeId> {
        self.descendants_matching(node, |id| self.is_loss(id))
    }

    fn descendants_matching(&self, node: NodeId, pred: impl Fn(NodeId) -> bool) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            for &child in self.children(id) {
                if pred(child) {
                    out.push(child);
                }
                stack.push(child);
            }
        }
        out.sort();
        out
    }

    /// The path from `node` up to the root, inclusive of both ends.
    pub fn path_to_root(&self, node: NodeId) -> Vec<NodeId> {
        let mut path = vec![node];
        let mut current = node;
        while let Some(parent) = self.parent(current) {
            path.push(parent);
            current = parent;
        }
        path
    }

    /// The consumers sharing `consumer`'s parent node — the paper's
    /// "neighbors": the victims available to balance-check-circumventing
    /// attacks (Section VI-B).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::NotConsumer`] if `consumer` is not a consumer
    /// leaf.
    pub fn neighbors(&self, consumer: NodeId) -> Result<Vec<NodeId>, GridError> {
        if !self.is_consumer(consumer) {
            return Err(GridError::NotConsumer(consumer));
        }
        let parent = self
            .parent(consumer)
            .expect("consumers always have a parent");
        Ok(self
            .children(parent)
            .iter()
            .copied()
            .filter(|&c| c != consumer && self.is_consumer(c))
            .collect())
    }

    /// Breadth-first order over all nodes starting at `node`.
    pub fn bfs_order(&self, node: NodeId) -> Vec<NodeId> {
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::from([node]);
        while let Some(id) = queue.pop_front() {
            order.push(id);
            queue.extend(self.children(id).iter().copied());
        }
        order
    }

    /// Builds a balanced radial grid: `levels` tiers of internal nodes with
    /// `fanout` children each, then `consumers_per_bus` consumer leaves and
    /// one loss leaf under every deepest internal node. Consumer labels are
    /// `c<N>` in creation order. Convenient for tests and benchmarks.
    pub fn balanced(levels: usize, fanout: usize, consumers_per_bus: usize) -> Self {
        let mut grid = Self::new();
        let mut frontier = vec![grid.root()];
        for _ in 0..levels {
            let mut next = Vec::new();
            for &node in &frontier {
                for _ in 0..fanout {
                    next.push(grid.add_internal(node).expect("internal parent"));
                }
            }
            frontier = next;
        }
        let mut counter = 0;
        for &bus in &frontier {
            for _ in 0..consumers_per_bus {
                grid.add_consumer(bus, format!("c{counter}"))
                    .expect("internal parent");
                counter += 1;
            }
            grid.add_loss(bus).expect("internal parent");
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> (GridTopology, NodeId, NodeId, NodeId, NodeId) {
        // root ── n1 ── {c1, c2, loss}
        //      └─ c0
        let mut g = GridTopology::new();
        let root = g.root();
        let c0 = g.add_consumer(root, "c0").unwrap();
        let n1 = g.add_internal(root).unwrap();
        let c1 = g.add_consumer(n1, "c1").unwrap();
        let c2 = g.add_consumer(n1, "c2").unwrap();
        g.add_loss(n1).unwrap();
        (g, c0, n1, c1, c2)
    }

    #[test]
    fn construction_and_queries() {
        let (g, c0, n1, c1, c2) = small_grid();
        assert_eq!(g.len(), 6);
        assert!(!g.is_empty());
        assert!(g.is_internal(g.root()));
        assert!(g.is_consumer(c1));
        assert_eq!(g.consumer_label(c1), Some("c1"));
        assert_eq!(g.consumer_label(n1), None);
        assert_eq!(g.depth(c1), 2);
        assert_eq!(g.depth(c0), 1);
        assert_eq!(g.parent(c1), Some(n1));
        assert_eq!(g.parent(g.root()), None);
        assert_eq!(g.consumers().count(), 3);
        assert_eq!(g.losses().count(), 1);
        assert_eq!(g.internal_nodes().count(), 2);
        let _ = (c0, c2);
    }

    #[test]
    fn leaves_cannot_have_children() {
        let (mut g, c0, ..) = small_grid();
        assert_eq!(
            g.add_consumer(c0, "x"),
            Err(GridError::LeafCannotHaveChildren(c0))
        );
        assert_eq!(
            g.add_internal(c0),
            Err(GridError::LeafCannotHaveChildren(c0))
        );
    }

    #[test]
    fn unknown_node_rejected() {
        let mut g = GridTopology::new();
        let ghost = NodeId::from_raw(99);
        assert_eq!(
            g.add_consumer(ghost, "x"),
            Err(GridError::UnknownNode(ghost))
        );
    }

    #[test]
    fn descendant_sets_match_paper_definitions() {
        let (g, c0, n1, c1, c2) = small_grid();
        let all = g.consumer_descendants(g.root());
        assert_eq!(all, vec![c0, c1, c2]);
        assert_eq!(g.consumer_descendants(n1), vec![c1, c2]);
        assert_eq!(g.loss_descendants(n1).len(), 1);
        assert_eq!(g.loss_descendants(c0), vec![]);
    }

    #[test]
    fn path_to_root_and_neighbors() {
        let (g, c0, n1, c1, c2) = small_grid();
        assert_eq!(g.path_to_root(c1), vec![c1, n1, g.root()]);
        assert_eq!(g.neighbors(c1).unwrap(), vec![c2]);
        assert_eq!(g.neighbors(c0).unwrap(), vec![]);
        assert_eq!(g.neighbors(n1), Err(GridError::NotConsumer(n1)));
    }

    #[test]
    fn bfs_visits_root_first_and_everything_once() {
        let (g, ..) = small_grid();
        let order = g.bfs_order(g.root());
        assert_eq!(order[0], g.root());
        assert_eq!(order.len(), g.len());
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), g.len());
    }

    #[test]
    fn balanced_builder_shape() {
        let g = GridTopology::balanced(2, 3, 4);
        // 1 root + 3 + 9 internals; 9 buses × (4 consumers + 1 loss).
        assert_eq!(g.internal_nodes().count(), 1 + 3 + 9);
        assert_eq!(g.consumers().count(), 36);
        assert_eq!(g.losses().count(), 9);
        // All consumers at depth 3.
        for c in g.consumers() {
            assert_eq!(g.depth(c), 3);
        }
    }
}
