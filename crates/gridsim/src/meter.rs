//! Meter deployment and compromise state.
//!
//! Two orthogonal facts matter per internal node: whether a balance meter
//! is *deployed* there at all (industry deploys sparsely; the paper's
//! evaluation assumes root-only), and whether a deployed meter is
//! *compromised* (Section VI-A: an attacker circumventing local balance
//! checks must compromise every meter on her route to the root).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::error::GridError;
use crate::topology::{GridTopology, NodeId};

/// The state of the (potential) balance meter at an internal node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MeterState {
    /// No meter is installed at this node.
    Absent,
    /// A functioning, uncompromised meter.
    Trusted,
    /// A meter whose reported readings are attacker-controlled. A
    /// compromised meter reports whatever hides the attack (it echoes the
    /// sum of reported child demands, so its local balance check passes).
    Compromised,
}

/// Which internal nodes carry balance meters, and which of those are
/// compromised.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeterDeployment {
    metered: HashSet<NodeId>,
    compromised: HashSet<NodeId>,
}

impl MeterDeployment {
    /// The paper's evaluation assumption: only the root node is metered
    /// (and trusted, being co-located with the control centre).
    pub fn root_only(grid: &GridTopology) -> Self {
        let mut metered = HashSet::new();
        metered.insert(grid.root());
        Self {
            metered,
            compromised: HashSet::new(),
        }
    }

    /// Full instrumentation: every internal node metered (Section V-C
    /// Case 1).
    pub fn full(grid: &GridTopology) -> Self {
        Self {
            metered: grid.internal_nodes().collect(),
            compromised: HashSet::new(),
        }
    }

    /// Deployment with an explicit metered set.
    pub fn with_metered(nodes: impl IntoIterator<Item = NodeId>) -> Self {
        Self {
            metered: nodes.into_iter().collect(),
            compromised: HashSet::new(),
        }
    }

    /// Marks a metered node as compromised.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::InsufficientMetering`] if no meter is deployed
    /// at `node` (there is nothing to compromise).
    pub fn compromise(&mut self, node: NodeId) -> Result<(), GridError> {
        if !self.metered.contains(&node) {
            return Err(GridError::InsufficientMetering(node));
        }
        self.compromised.insert(node);
        Ok(())
    }

    /// Restores a meter to trusted state (e.g. after utility remediation).
    pub fn restore(&mut self, node: NodeId) {
        self.compromised.remove(&node);
    }

    /// The state of the meter at `node`.
    pub fn state(&self, node: NodeId) -> MeterState {
        if !self.metered.contains(&node) {
            MeterState::Absent
        } else if self.compromised.contains(&node) {
            MeterState::Compromised
        } else {
            MeterState::Trusted
        }
    }

    /// Whether every internal node of `grid` carries a meter.
    pub fn is_full(&self, grid: &GridTopology) -> bool {
        grid.internal_nodes().all(|n| self.metered.contains(&n))
    }

    /// All metered nodes.
    pub fn metered_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.metered.iter().copied()
    }

    /// Number of compromised meters (the attacker's cost in Section VI-A).
    pub fn compromised_count(&self) -> usize {
        self.compromised.len()
    }

    /// The meters an attacker at consumer `attacker` must compromise to
    /// defeat *every deployed* balance check between her and the root,
    /// excluding the root itself (assumed physically untouchable,
    /// Section VII-A): the metered internal nodes strictly on her route.
    ///
    /// For a balanced tree this is `O(log N)` nodes; for a degenerate
    /// (linear) tree it is `O(N)` — exactly the paper's cost remark.
    pub fn meters_on_route(&self, grid: &GridTopology, attacker: NodeId) -> Vec<NodeId> {
        grid.path_to_root(attacker)
            .into_iter()
            .filter(|&n| n != attacker && n != grid.root() && self.metered.contains(&n))
            .collect()
    }

    /// Compromises every meter on the attacker's route to (but excluding)
    /// the root, returning how many were compromised. This is the setup
    /// step for the B-class attacks when intermediate meters exist.
    pub fn compromise_route(&mut self, grid: &GridTopology, attacker: NodeId) -> usize {
        let route = self.meters_on_route(grid, attacker);
        let count = route.len();
        for node in route {
            self.compromised.insert(node);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_only_deployment() {
        let grid = GridTopology::balanced(2, 2, 2);
        let dep = MeterDeployment::root_only(&grid);
        assert_eq!(dep.state(grid.root()), MeterState::Trusted);
        let other = grid.internal_nodes().find(|&n| n != grid.root()).unwrap();
        assert_eq!(dep.state(other), MeterState::Absent);
        assert!(!dep.is_full(&grid));
    }

    #[test]
    fn full_deployment_and_compromise() {
        let grid = GridTopology::balanced(1, 2, 1);
        let mut dep = MeterDeployment::full(&grid);
        assert!(dep.is_full(&grid));
        let bus = grid.internal_nodes().find(|&n| n != grid.root()).unwrap();
        dep.compromise(bus).unwrap();
        assert_eq!(dep.state(bus), MeterState::Compromised);
        assert_eq!(dep.compromised_count(), 1);
        dep.restore(bus);
        assert_eq!(dep.state(bus), MeterState::Trusted);
    }

    #[test]
    fn cannot_compromise_absent_meter() {
        let grid = GridTopology::balanced(1, 2, 1);
        let mut dep = MeterDeployment::root_only(&grid);
        let bus = grid.internal_nodes().find(|&n| n != grid.root()).unwrap();
        assert_eq!(
            dep.compromise(bus),
            Err(GridError::InsufficientMetering(bus))
        );
    }

    #[test]
    fn route_cost_scales_with_depth() {
        // Balanced: consumer depth = levels + 1, route meters = levels
        // (every internal node on the path except the root).
        let grid = GridTopology::balanced(3, 2, 2);
        let mut dep = MeterDeployment::full(&grid);
        let victim = grid.consumers().next().unwrap();
        let route = dep.meters_on_route(&grid, victim);
        assert_eq!(route.len(), 3);
        assert_eq!(dep.compromise_route(&grid, victim), 3);
        assert_eq!(dep.compromised_count(), 3);
        // Root stays trusted.
        assert_eq!(dep.state(grid.root()), MeterState::Trusted);
    }

    #[test]
    fn route_under_root_only_deployment_is_free() {
        let grid = GridTopology::balanced(3, 2, 2);
        let mut dep = MeterDeployment::root_only(&grid);
        let victim = grid.consumers().next().unwrap();
        assert!(dep.meters_on_route(&grid, victim).is_empty());
        assert_eq!(dep.compromise_route(&grid, victim), 0);
    }
}
