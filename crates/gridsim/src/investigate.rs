//! Investigation of balance-check failures (Section V-C).
//!
//! *Case 1* — every internal node is metered: the deepest failing meters
//! bound the geographic neighbourhood to inspect; their consumer children
//! are the suspects.
//!
//! *Case 2* — sparse metering: a serviceman with a portable meter walks the
//! tree breadth-first from the root, measuring the true flow at each
//! internal node, descending only into subtrees whose check fails. The
//! other subtrees are pruned — that pruning is the efficiency claim this
//! module also quantifies (checks performed).

use serde::{Deserialize, Serialize};

use crate::balance::{BalanceChecker, Snapshot};
use crate::error::GridError;
use crate::meter::MeterDeployment;
use crate::topology::{GridTopology, NodeId};

/// Result of a Case 1 (fully instrumented) investigation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Investigation {
    /// Deepest internal nodes whose balance check fails.
    pub deepest_failing: Vec<NodeId>,
    /// Consumer leaves directly attached to those nodes — the manual
    /// inspection list (one or more of these is the attacker or victim of
    /// tampering).
    pub suspects: Vec<NodeId>,
}

impl Investigation {
    /// Runs Case 1: requires every internal node to be metered.
    ///
    /// Compromised meters *cover* for the attacker, so their checks pass —
    /// which is precisely why the paper's evaluation falls back to the
    /// trusted root meter. Case 1 is still the right tool against
    /// line-tapping attacks (Class 1A/2A) where meters are honest.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::InsufficientMetering`] naming the first
    /// unmetered internal node, and propagates snapshot errors.
    pub fn case1(
        grid: &GridTopology,
        deployment: &MeterDeployment,
        snapshot: &Snapshot,
        checker: &BalanceChecker,
    ) -> Result<Investigation, GridError> {
        for node in grid.internal_nodes() {
            if matches!(deployment.state(node), crate::meter::MeterState::Absent) {
                return Err(GridError::InsufficientMetering(node));
            }
        }
        let events = checker.w_events(grid, deployment, snapshot)?;
        let failing: Vec<NodeId> = events
            .iter()
            .filter(|(_, s)| s.is_failure())
            .map(|(&n, _)| n)
            .collect();
        // Deepest failing: failing nodes none of whose failing descendants
        // exist — equivalently, failing nodes with no failing internal child.
        let mut deepest: Vec<NodeId> = failing
            .iter()
            .copied()
            .filter(|&n| grid.children(n).iter().all(|&c| !failing.contains(&c)))
            .collect();
        deepest.sort();
        let mut suspects: Vec<NodeId> = deepest
            .iter()
            .flat_map(|&n| {
                grid.children(n)
                    .iter()
                    .copied()
                    .filter(|&c| grid.is_consumer(c))
            })
            .collect();
        suspects.sort();
        suspects.dedup();
        Ok(Investigation {
            deepest_failing: deepest,
            suspects,
        })
    }
}

/// A Case 2 portable-meter search and its cost accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortableMeterSearch {
    /// Internal nodes where the serviceman clamped the portable meter, in
    /// visit order.
    pub visited: Vec<NodeId>,
    /// Internal nodes whose subtree check failed (the trail to the theft).
    pub failing_trail: Vec<NodeId>,
    /// Consumer leaves requiring manual inspection at the end of the walk.
    pub suspects: Vec<NodeId>,
}

impl PortableMeterSearch {
    /// Runs the Case 2 search. The portable meter measures ground truth
    /// (it is in the serviceman's hands, not the attacker's), so at each
    /// visited internal node the true flow is compared against the
    /// reported flow of the subtree; only failing subtrees are descended
    /// into.
    ///
    /// # Errors
    ///
    /// Propagates snapshot errors ([`GridError::MissingDemand`]).
    pub fn run(
        grid: &GridTopology,
        snapshot: &Snapshot,
        checker: &BalanceChecker,
    ) -> Result<PortableMeterSearch, GridError> {
        let mut visited = Vec::new();
        let mut failing_trail = Vec::new();
        let mut suspects = Vec::new();
        let mut queue = std::collections::VecDeque::from([grid.root()]);
        while let Some(node) = queue.pop_front() {
            visited.push(node);
            let actual = snapshot.actual_flow(grid, node)?;
            let reported = snapshot.reported_flow(grid, node)?;
            if (actual - reported).abs() <= checker.tolerance_kw {
                continue; // subtree is clean: prune.
            }
            failing_trail.push(node);
            let mut has_internal_child = false;
            for &child in grid.children(node) {
                if grid.is_internal(child) {
                    has_internal_child = true;
                    queue.push_back(child);
                } else if grid.is_consumer(child) {
                    // Leaf-level discrepancy check: compare the consumer's
                    // own actual vs reported demand.
                    let a = snapshot.actual(child)?;
                    let r = snapshot.reported(child)?;
                    if (a - r).abs() > checker.tolerance_kw {
                        suspects.push(child);
                    }
                }
            }
            // A failing node with no internal children and no individually
            // failing consumer (possible under cross-consumer masking)
            // leaves all its consumer children suspect.
            if !has_internal_child && suspects.is_empty() {
                suspects.extend(
                    grid.children(node)
                        .iter()
                        .copied()
                        .filter(|&c| grid.is_consumer(c)),
                );
            }
        }
        suspects.sort();
        suspects.dedup();
        Ok(PortableMeterSearch {
            visited,
            failing_trail,
            suspects,
        })
    }

    /// Number of portable-meter placements performed (the serviceman's
    /// effort — the quantity the subtree pruning minimises).
    pub fn checks_performed(&self) -> usize {
        self.visited.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::BalanceChecker;

    /// root ── a ── a1 ── {c0, c1}
    ///       │    └ a2 ── {c2}
    ///       └ b ── {c3, c4}
    struct Fixture {
        grid: GridTopology,
        a: NodeId,
        a1: NodeId,
        a2: NodeId,
        b: NodeId,
        consumers: [NodeId; 5],
    }

    fn fixture() -> Fixture {
        let mut g = GridTopology::new();
        let root = g.root();
        let a = g.add_internal(root).unwrap();
        let b = g.add_internal(root).unwrap();
        let a1 = g.add_internal(a).unwrap();
        let a2 = g.add_internal(a).unwrap();
        let c0 = g.add_consumer(a1, "c0").unwrap();
        let c1 = g.add_consumer(a1, "c1").unwrap();
        let c2 = g.add_consumer(a2, "c2").unwrap();
        let c3 = g.add_consumer(b, "c3").unwrap();
        let c4 = g.add_consumer(b, "c4").unwrap();
        Fixture {
            grid: g,
            a,
            a1,
            a2,
            b,
            consumers: [c0, c1, c2, c3, c4],
        }
    }

    fn snapshot(f: &Fixture, reports: [f64; 5]) -> Snapshot {
        let mut s = Snapshot::new();
        for (i, &c) in f.consumers.iter().enumerate() {
            s.set_consumer(&f.grid, c, 1.0, reports[i]).unwrap();
        }
        s
    }

    #[test]
    fn case1_localises_the_thief_bus() {
        let f = fixture();
        // c2 under-reports: checks fail at a2, a, root; deepest is a2.
        let s = snapshot(&f, [1.0, 1.0, 0.3, 1.0, 1.0]);
        let dep = MeterDeployment::full(&f.grid);
        let inv = Investigation::case1(&f.grid, &dep, &s, &BalanceChecker::default()).unwrap();
        assert_eq!(inv.deepest_failing, vec![f.a2]);
        assert_eq!(inv.suspects, vec![f.consumers[2]]);
    }

    #[test]
    fn case1_requires_full_instrumentation() {
        let f = fixture();
        let s = snapshot(&f, [1.0; 5]);
        let dep = MeterDeployment::root_only(&f.grid);
        assert!(matches!(
            Investigation::case1(&f.grid, &dep, &s, &BalanceChecker::default()),
            Err(GridError::InsufficientMetering(_))
        ));
    }

    #[test]
    fn case1_clean_grid_has_no_suspects() {
        let f = fixture();
        let s = snapshot(&f, [1.0; 5]);
        let dep = MeterDeployment::full(&f.grid);
        let inv = Investigation::case1(&f.grid, &dep, &s, &BalanceChecker::default()).unwrap();
        assert!(inv.deepest_failing.is_empty());
        assert!(inv.suspects.is_empty());
    }

    #[test]
    fn portable_search_prunes_clean_subtrees() {
        let f = fixture();
        let s = snapshot(&f, [1.0, 1.0, 0.3, 1.0, 1.0]);
        let search = PortableMeterSearch::run(&f.grid, &s, &BalanceChecker::default()).unwrap();
        // Walk: root (fails), a and b enqueued; b passes (pruned), a fails;
        // a1 passes, a2 fails → c2 suspect.
        assert_eq!(search.suspects, vec![f.consumers[2]]);
        assert!(search.failing_trail.contains(&f.grid.root()));
        assert!(search.failing_trail.contains(&f.a));
        assert!(search.failing_trail.contains(&f.a2));
        assert!(!search.failing_trail.contains(&f.b));
        assert!(!search.failing_trail.contains(&f.a1));
        // b is visited (measured once) but its children are not.
        assert!(search.visited.contains(&f.b));
        assert!(search.checks_performed() <= f.grid.internal_nodes().count());
    }

    #[test]
    fn portable_search_clean_grid_costs_one_check() {
        let f = fixture();
        let s = snapshot(&f, [1.0; 5]);
        let search = PortableMeterSearch::run(&f.grid, &s, &BalanceChecker::default()).unwrap();
        assert_eq!(search.checks_performed(), 1);
        assert!(search.suspects.is_empty());
    }

    #[test]
    fn portable_search_beats_exhaustive_on_big_grid() {
        // One thief in a 3-level binary grid: pruned search must clamp the
        // meter at far fewer nodes than there are internal nodes.
        let grid = GridTopology::balanced(3, 2, 4);
        let thief = grid.consumers().next().unwrap();
        let mut s = Snapshot::new();
        for c in grid.consumers() {
            let reported = if c == thief { 0.1 } else { 1.0 };
            s.set_consumer(&grid, c, 1.0, reported).unwrap();
        }
        for l in grid.losses() {
            s.set_loss(&grid, l, 0.0).unwrap();
        }
        let search = PortableMeterSearch::run(&grid, &s, &BalanceChecker::default()).unwrap();
        assert_eq!(search.suspects, vec![thief]);
        let internals = grid.internal_nodes().count();
        assert!(
            search.checks_performed() < internals,
            "pruned {} vs exhaustive {internals}",
            search.checks_performed()
        );
    }

    #[test]
    fn masked_bus_level_theft_suspects_all_children() {
        // Mallory (c0) under-reports while neighbour c1 is over-reported by
        // a *different* amount, so the bus total still fails, but both
        // leaf-level reports differ from actuals — both are suspects.
        let f = fixture();
        let s = snapshot(&f, [0.5, 1.2, 1.0, 1.0, 1.0]);
        let search = PortableMeterSearch::run(&f.grid, &s, &BalanceChecker::default()).unwrap();
        assert_eq!(search.suspects, vec![f.consumers[0], f.consumers[1]]);
    }
}
