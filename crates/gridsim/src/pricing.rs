//! Electricity pricing schemes (Section III).
//!
//! Three schemes appear in the paper's taxonomy: flat-rate, time-of-use
//! (TOU), and real-time pricing (RTP). Prices may update less often than
//! meters poll (the `k·Δt` update period of Section III); [`PricingScheme`]
//! exposes a per-slot `λ(t)` regardless.

use serde::{Deserialize, Serialize};

use fdeta_tsdata::units::PricePerKwh;
use fdeta_tsdata::SLOTS_PER_DAY;

/// A time-of-use plan with one peak window per day.
///
/// The paper's evaluation adopts an Electric Ireland NightSaver-style plan:
/// peak 09:00–24:00 at 0.21 $/kWh and off-peak 00:00–09:00 at 0.18 $/kWh
/// (Section VIII-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TouPlan {
    /// First half-hour slot of the day (0..48) that is charged peak.
    pub peak_start_slot: usize,
    /// One past the last peak slot (0..=48).
    pub peak_end_slot: usize,
    /// Peak price.
    pub peak: PricePerKwh,
    /// Off-peak price.
    pub off_peak: PricePerKwh,
}

impl TouPlan {
    /// The paper's plan: peak 09:00–24:00 at 0.21 $/kWh, off-peak at
    /// 0.18 $/kWh.
    pub fn ireland_nightsaver() -> Self {
        Self {
            peak_start_slot: 18, // 09:00
            peak_end_slot: SLOTS_PER_DAY,
            peak: PricePerKwh::new_unchecked(0.21),
            off_peak: PricePerKwh::new_unchecked(0.18),
        }
    }

    /// Whether global slot `t` (half-hours since the start of the series)
    /// falls in the peak window.
    pub fn is_peak(&self, t: usize) -> bool {
        let slot_of_day = t % SLOTS_PER_DAY;
        (self.peak_start_slot..self.peak_end_slot).contains(&slot_of_day)
    }

    /// Price at global slot `t`.
    pub fn price_at(&self, t: usize) -> PricePerKwh {
        if self.is_peak(t) {
            self.peak
        } else {
            self.off_peak
        }
    }
}

/// A pricing scheme assigning a price `λ(t)` to every polling slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PricingScheme {
    /// Constant price for the whole billing cycle.
    Flat {
        /// The flat price.
        price: PricePerKwh,
    },
    /// Deterministic peak/off-peak plan published in advance.
    TimeOfUse {
        /// The plan.
        plan: TouPlan,
    },
    /// Market-driven prices updating every `update_period_slots` slots
    /// (the paper's `k·Δt`); slot `t` uses `prices[t / k]`, with the last
    /// price held if the series runs out.
    RealTime {
        /// Published price sequence.
        prices: Vec<PricePerKwh>,
        /// Slots per price update (`k ≥ 1`).
        update_period_slots: usize,
    },
}

impl PricingScheme {
    /// A flat plan at the paper's off-peak rate, for experiments that need
    /// a neutral flat price.
    pub fn flat_default() -> Self {
        PricingScheme::Flat {
            price: PricePerKwh::new_unchecked(0.18),
        }
    }

    /// The paper's TOU evaluation plan.
    pub fn tou_ireland() -> Self {
        PricingScheme::TimeOfUse {
            plan: TouPlan::ireland_nightsaver(),
        }
    }

    /// Price at global slot `t`.
    ///
    /// # Panics
    ///
    /// Panics for a [`PricingScheme::RealTime`] with an empty price vector
    /// or a zero update period (construction bugs, not runtime conditions).
    pub fn price_at(&self, t: usize) -> PricePerKwh {
        match self {
            PricingScheme::Flat { price } => *price,
            PricingScheme::TimeOfUse { plan } => plan.price_at(t),
            PricingScheme::RealTime {
                prices,
                update_period_slots,
            } => {
                assert!(*update_period_slots > 0, "update period must be positive");
                assert!(
                    !prices.is_empty(),
                    "real-time scheme needs at least one price"
                );
                let idx = (t / update_period_slots).min(prices.len() - 1);
                prices[idx]
            }
        }
    }

    /// Whether the price can differ between two slots (false only for
    /// flat-rate). Attack Class 3A/3B requires this (Table I).
    pub fn is_variable(&self) -> bool {
        match self {
            PricingScheme::Flat { .. } => false,
            PricingScheme::TimeOfUse { .. } => true,
            PricingScheme::RealTime { prices, .. } => prices.len() > 1,
        }
    }

    /// Whether the scheme is real-time (required by Attack Class 4B).
    pub fn is_real_time(&self) -> bool {
        matches!(self, PricingScheme::RealTime { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nightsaver_window_matches_paper() {
        let plan = TouPlan::ireland_nightsaver();
        // 00:00–09:00 off-peak.
        assert!(!plan.is_peak(0));
        assert!(!plan.is_peak(17)); // 08:30–09:00
                                    // 09:00–24:00 peak.
        assert!(plan.is_peak(18));
        assert!(plan.is_peak(47));
        // Next day wraps.
        assert!(!plan.is_peak(48));
        assert!(plan.is_peak(48 + 18));
        assert_eq!(plan.price_at(20).value(), 0.21);
        assert_eq!(plan.price_at(2).value(), 0.18);
    }

    #[test]
    fn flat_price_is_constant() {
        let scheme = PricingScheme::flat_default();
        assert_eq!(scheme.price_at(0), scheme.price_at(9999));
        assert!(!scheme.is_variable());
        assert!(!scheme.is_real_time());
    }

    #[test]
    fn tou_is_variable_not_real_time() {
        let scheme = PricingScheme::tou_ireland();
        assert!(scheme.is_variable());
        assert!(!scheme.is_real_time());
    }

    #[test]
    fn real_time_updates_every_k_slots() {
        let prices = vec![
            PricePerKwh::new_unchecked(0.1),
            PricePerKwh::new_unchecked(0.3),
        ];
        let scheme = PricingScheme::RealTime {
            prices,
            update_period_slots: 4,
        };
        assert_eq!(scheme.price_at(0).value(), 0.1);
        assert_eq!(scheme.price_at(3).value(), 0.1);
        assert_eq!(scheme.price_at(4).value(), 0.3);
        // Held after the series ends.
        assert_eq!(scheme.price_at(100).value(), 0.3);
        assert!(scheme.is_variable());
        assert!(scheme.is_real_time());
    }

    #[test]
    fn single_price_rtp_is_not_variable() {
        let scheme = PricingScheme::RealTime {
            prices: vec![PricePerKwh::new_unchecked(0.2)],
            update_period_slots: 1,
        };
        assert!(!scheme.is_variable());
    }
}
