//! Billing and the paper's monetary quantities.
//!
//! * eq. (2): the attacker's advantage
//!   `α = Σ λ(t)·D_A(t)·Δt − Σ λ(t)·D'_A(t)·Δt`;
//! * eq. (10): the victimised neighbour's loss
//!   `L_n = Δt Σ λ(t)·[D'_n(t) − D_n(t)]`;
//! * eq. (11): Attack Class 4B's deceptive bill delta
//!   `ΔB = Δt Σ [λ'_n(t)·D'_n(t) − λ(t)·D'_n(t)]`.

use fdeta_tsdata::units::{Money, PricePerKwh};
use fdeta_tsdata::SLOT_HOURS;

use crate::pricing::PricingScheme;

/// Bill for a demand series under a pricing scheme:
/// `Σ λ(t) · D(t) · Δt`, with slot `i` of `readings` billed at global slot
/// `start_slot + i`.
pub fn bill(readings: &[f64], scheme: &PricingScheme, start_slot: usize) -> Money {
    let mut total = 0.0;
    for (i, &kw) in readings.iter().enumerate() {
        total += scheme.price_at(start_slot + i).value() * kw * SLOT_HOURS;
    }
    Money::new(total).expect("finite bill from finite readings")
}

/// The attacker's monetary advantage `α` (eq. 2): what she *should* have
/// been billed minus what she *was* billed. A successful theft attack has
/// `α > 0` (eq. 1).
///
/// # Panics
///
/// Panics if `actual` and `reported` have different lengths.
pub fn attacker_advantage(
    actual: &[f64],
    reported: &[f64],
    scheme: &PricingScheme,
    start_slot: usize,
) -> Money {
    assert_eq!(actual.len(), reported.len(), "series length mismatch");
    bill(actual, scheme, start_slot) - bill(reported, scheme, start_slot)
}

/// The loss `L_n` (eq. 10) incurred by a neighbour whose consumption was
/// over-reported: what they were billed minus what they actually consumed.
///
/// # Panics
///
/// Panics if `actual` and `reported` have different lengths.
pub fn neighbor_loss(
    actual: &[f64],
    reported: &[f64],
    scheme: &PricingScheme,
    start_slot: usize,
) -> Money {
    assert_eq!(actual.len(), reported.len(), "series length mismatch");
    bill(reported, scheme, start_slot) - bill(actual, scheme, start_slot)
}

/// Energy stolen in kWh given actual and reported demand series:
/// `Δt Σ (D − D')`, floored at each slot? — **No**: the paper counts the
/// signed total (load shifting nets to zero), so this is the plain signed
/// sum `Δt Σ [D(t) − D'(t)]`.
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn energy_stolen_kwh(actual: &[f64], reported: &[f64]) -> f64 {
    assert_eq!(actual.len(), reported.len(), "series length mismatch");
    actual
        .iter()
        .zip(reported)
        .map(|(a, r)| (a - r) * SLOT_HOURS)
        .sum()
}

/// Attack Class 4B's deceptive bill delta `ΔB` (eq. 11): the bill the
/// neighbour *expected* under the inflated price signal `λ'_n` minus the
/// bill the utility actually sends (at the true `λ`). Positive `ΔB` makes
/// the victim believe he benefited.
///
/// `reported` is the neighbour's reported demand `D'_n`; `spoofed_prices`
/// is the per-slot `λ'_n` his ADR system saw.
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn deceptive_bill_delta(
    reported: &[f64],
    spoofed_prices: &[PricePerKwh],
    scheme: &PricingScheme,
    start_slot: usize,
) -> Money {
    assert_eq!(
        reported.len(),
        spoofed_prices.len(),
        "series length mismatch"
    );
    let mut expected = 0.0;
    for (i, &kw) in reported.iter().enumerate() {
        expected += spoofed_prices[i].value() * kw * SLOT_HOURS;
    }
    Money::new(expected).expect("finite") - bill(reported, scheme, start_slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdeta_tsdata::SLOTS_PER_DAY;

    #[test]
    fn flat_bill_hand_check() {
        // 48 slots at 2 kW, 0.18 $/kWh: 48 × 2 × 0.5 × 0.18 = $8.64.
        let scheme = PricingScheme::flat_default();
        let b = bill(&vec![2.0; SLOTS_PER_DAY], &scheme, 0);
        assert!((b.dollars() - 8.64).abs() < 1e-9);
    }

    #[test]
    fn tou_bill_splits_peak_and_off_peak() {
        // 1 kW all day under NightSaver: off-peak 18 slots × 0.5 h × 0.18
        // + peak 30 slots × 0.5 h × 0.21 = 1.62 + 3.15 = $4.77.
        let scheme = PricingScheme::tou_ireland();
        let b = bill(&vec![1.0; SLOTS_PER_DAY], &scheme, 0);
        assert!((b.dollars() - 4.77).abs() < 1e-9, "bill = {b}");
    }

    #[test]
    fn advantage_positive_iff_under_reported_value() {
        let scheme = PricingScheme::flat_default();
        let actual = vec![2.0; 10];
        let reported = vec![1.0; 10];
        let alpha = attacker_advantage(&actual, &reported, &scheme, 0);
        assert!(alpha.is_gain());
        // Honest reporting: zero advantage.
        let zero = attacker_advantage(&actual, &actual, &scheme, 0);
        assert_eq!(zero.dollars(), 0.0);
        // Over-reporting yourself is a loss, not an attack (Prop. 1).
        let silly = attacker_advantage(&reported, &actual, &scheme, 0);
        assert!(!silly.is_gain());
    }

    #[test]
    fn neighbor_loss_mirrors_over_report() {
        let scheme = PricingScheme::flat_default();
        let actual = vec![1.0; 10];
        let inflated = vec![1.5; 10];
        let loss = neighbor_loss(&actual, &inflated, &scheme, 0);
        // 10 slots × 0.5 kW × 0.5 h × 0.18 = $0.45.
        assert!((loss.dollars() - 0.45).abs() < 1e-9);
        // The attacker's gain equals the neighbours' loss in a pure 1B
        // exchange: α = Σ L_n (Section VI-B).
        let attacker_actual = vec![1.5; 10];
        let attacker_reported = vec![1.0; 10];
        let alpha = attacker_advantage(&attacker_actual, &attacker_reported, &scheme, 0);
        assert!((alpha.dollars() - loss.dollars()).abs() < 1e-12);
    }

    #[test]
    fn load_shift_steals_nothing_but_profits_under_tou() {
        // Attack 3A shape: move 1 kW of demand from a peak slot to an
        // off-peak slot in the *report only*.
        let scheme = PricingScheme::tou_ireland();
        let mut actual = vec![0.0; SLOTS_PER_DAY];
        actual[20] = 1.0; // 10:00, peak
        let mut reported = vec![0.0; SLOTS_PER_DAY];
        reported[2] = 1.0; // 01:00, off-peak
        assert_eq!(energy_stolen_kwh(&actual, &reported), 0.0);
        let alpha = attacker_advantage(&actual, &reported, &scheme, 0);
        // 0.5 kWh × (0.21 − 0.18) = $0.015.
        assert!((alpha.dollars() - 0.015).abs() < 1e-12);
        // Under flat pricing the same shift profits nothing (Table I: 3A
        // impossible under flat rate).
        let flat_alpha = attacker_advantage(&actual, &reported, &PricingScheme::flat_default(), 0);
        assert_eq!(flat_alpha.dollars(), 0.0);
    }

    #[test]
    fn energy_stolen_signed_sum() {
        let actual = vec![2.0, 2.0];
        let reported = vec![1.0, 3.0];
        assert_eq!(energy_stolen_kwh(&actual, &reported), 0.0);
        assert_eq!(energy_stolen_kwh(&actual, &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn deceptive_delta_positive_when_prices_spoofed_up() {
        // Neighbour reports 1 kW for 4 slots; spoofed price 0.30 vs true
        // flat 0.18: ΔB = 4 × 0.5 × (0.30 − 0.18) = $0.24 > 0.
        let scheme = PricingScheme::flat_default();
        let reported = vec![1.0; 4];
        let spoofed = vec![PricePerKwh::new_unchecked(0.30); 4];
        let delta = deceptive_bill_delta(&reported, &spoofed, &scheme, 0);
        assert!((delta.dollars() - 0.24).abs() < 1e-12);
        assert!(delta.is_gain());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        attacker_advantage(&[1.0], &[1.0, 2.0], &PricingScheme::flat_default(), 0);
    }
}
