//! Error type for grid construction and analysis.

use std::fmt;

use crate::topology::NodeId;

/// Errors produced by grid topology construction and balance analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// The referenced node does not exist in this topology.
    UnknownNode(NodeId),
    /// A child was attached to a leaf node (consumers and losses cannot
    /// have children in a radial topology).
    LeafCannotHaveChildren(NodeId),
    /// An operation that requires an internal node was given a leaf.
    NotInternal(NodeId),
    /// An operation that requires a consumer node was given something else.
    NotConsumer(NodeId),
    /// A demand snapshot was missing a value for the given leaf node.
    MissingDemand(NodeId),
    /// An investigation was requested on a grid whose meter deployment
    /// cannot support it (e.g. Case 1 requires every internal node to be
    /// metered).
    InsufficientMetering(NodeId),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::UnknownNode(n) => write!(f, "unknown node {n}"),
            GridError::LeafCannotHaveChildren(n) => {
                write!(f, "node {n} is a leaf and cannot have children")
            }
            GridError::NotInternal(n) => write!(f, "node {n} is not an internal node"),
            GridError::NotConsumer(n) => write!(f, "node {n} is not a consumer"),
            GridError::MissingDemand(n) => write!(f, "no demand recorded for leaf node {n}"),
            GridError::InsufficientMetering(n) => {
                write!(
                    f,
                    "internal node {n} has no meter; operation requires full instrumentation"
                )
            }
        }
    }
}

impl std::error::Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let node = NodeId::from_raw(3);
        for err in [
            GridError::UnknownNode(node),
            GridError::LeafCannotHaveChildren(node),
            GridError::NotInternal(node),
            GridError::NotConsumer(node),
            GridError::MissingDemand(node),
            GridError::InsufficientMetering(node),
        ] {
            assert!(err.to_string().contains('3'));
        }
    }
}
