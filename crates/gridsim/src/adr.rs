//! Automated Demand Response (ADR) via the Consumer Own Elasticity model.
//!
//! Attack Class 4B (Section VI-B) compromises a neighbour's ADR interface:
//! by inflating the price signal `λ'_n > λ`, the neighbour's ADR system —
//! programmed with a monotonically decreasing demand/price relation —
//! automatically sheds load, which Mallory then consumes. The paper names
//! the Consumer Own Elasticity model (Tan et al., CCS 2013) as the
//! canonical such relation; this module implements the standard
//! constant-elasticity form
//!
//! ```text
//! D(λ) = D_base · (λ / λ_base)^ε,   ε ≤ 0
//! ```
//!
//! which is monotonically decreasing in `λ` for negative elasticity `ε`.

use serde::{Deserialize, Serialize};

use fdeta_tsdata::units::PricePerKwh;

/// Constant own-price elasticity demand model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElasticityModel {
    /// Own-price elasticity `ε ≤ 0` (typical short-run residential values
    /// are around −0.1 to −0.4).
    elasticity: f64,
    /// Reference price at which demand equals the base demand.
    base_price: PricePerKwh,
}

impl ElasticityModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `elasticity` is positive or not finite, or if
    /// `base_price` is zero (the reference ratio would be undefined).
    pub fn new(elasticity: f64, base_price: PricePerKwh) -> Self {
        assert!(
            elasticity.is_finite() && elasticity <= 0.0,
            "own-price elasticity must be finite and non-positive, got {elasticity}"
        );
        assert!(base_price.value() > 0.0, "base price must be positive");
        Self {
            elasticity,
            base_price,
        }
    }

    /// A typical short-run residential model: ε = −0.3 at the paper's
    /// off-peak price.
    pub fn typical_residential() -> Self {
        Self::new(-0.3, PricePerKwh::new_unchecked(0.18))
    }

    /// The elasticity `ε`.
    pub fn elasticity(&self) -> f64 {
        self.elasticity
    }

    /// Demand after the ADR system responds to `price`, given the demand
    /// `base_kw` the consumer would have had at the base price.
    pub fn respond(&self, base_kw: f64, price: PricePerKwh) -> f64 {
        if base_kw == 0.0 {
            return 0.0;
        }
        let ratio = price.value() / self.base_price.value();
        if ratio <= 0.0 {
            // A zero price with negative elasticity would request infinite
            // demand; physical load is bounded, so saturate at base demand
            // (the ADR controller will not *add* appliances).
            return base_kw;
        }
        base_kw * ratio.powf(self.elasticity)
    }

    /// How much load (kW) the consumer sheds when shown `spoofed` instead
    /// of `true_price` — the headroom Mallory gains in Attack Class 4B.
    pub fn load_shed(&self, base_kw: f64, true_price: PricePerKwh, spoofed: PricePerKwh) -> f64 {
        (self.respond(base_kw, true_price) - self.respond(base_kw, spoofed)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_price_returns_base_demand() {
        let m = ElasticityModel::typical_residential();
        let d = m.respond(2.0, PricePerKwh::new_unchecked(0.18));
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn demand_is_monotone_decreasing_in_price() {
        let m = ElasticityModel::typical_residential();
        let lo = m.respond(2.0, PricePerKwh::new_unchecked(0.10));
        let mid = m.respond(2.0, PricePerKwh::new_unchecked(0.18));
        let hi = m.respond(2.0, PricePerKwh::new_unchecked(0.40));
        assert!(
            lo > mid && mid > hi,
            "demand must fall as price rises: {lo} {mid} {hi}"
        );
    }

    #[test]
    fn zero_elasticity_never_responds() {
        let m = ElasticityModel::new(0.0, PricePerKwh::new_unchecked(0.18));
        assert_eq!(m.respond(3.0, PricePerKwh::new_unchecked(0.99)), 3.0);
        assert_eq!(m.elasticity(), 0.0);
    }

    #[test]
    fn load_shed_positive_only_for_inflated_price() {
        let m = ElasticityModel::typical_residential();
        let true_price = PricePerKwh::new_unchecked(0.18);
        let spoofed = PricePerKwh::new_unchecked(0.36);
        let shed = m.load_shed(2.0, true_price, spoofed);
        assert!(shed > 0.0);
        // Deflated price sheds nothing (clamped).
        let negative = m.load_shed(2.0, true_price, PricePerKwh::new_unchecked(0.09));
        assert_eq!(negative, 0.0);
    }

    #[test]
    fn zero_base_demand_stays_zero() {
        let m = ElasticityModel::typical_residential();
        assert_eq!(m.respond(0.0, PricePerKwh::new_unchecked(0.5)), 0.0);
    }

    #[test]
    fn zero_price_saturates_at_base() {
        let m = ElasticityModel::typical_residential();
        assert_eq!(m.respond(2.0, PricePerKwh::ZERO), 2.0);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn positive_elasticity_rejected() {
        ElasticityModel::new(0.5, PricePerKwh::new_unchecked(0.18));
    }
}
