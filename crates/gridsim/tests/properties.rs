//! Property-based tests for the grid substrate: the Section V-B
//! propagation invariant, billing linearity, and investigation soundness
//! over randomly generated feeders.

use proptest::prelude::*;

use fdeta_gridsim::balance::{BalanceChecker, Snapshot};
use fdeta_gridsim::billing::{attacker_advantage, bill, energy_stolen_kwh};
use fdeta_gridsim::investigate::PortableMeterSearch;
use fdeta_gridsim::meter::MeterDeployment;
use fdeta_gridsim::pricing::PricingScheme;
use fdeta_gridsim::topology::{GridTopology, NodeId};

/// A random radial feeder: a root with `buses` internal nodes, each with
/// 1..=4 consumers, honest demands in (0, 3].
#[derive(Debug, Clone)]
struct RandomFeeder {
    grid: GridTopology,
    consumers: Vec<NodeId>,
}

fn feeder(buses: usize, per_bus: Vec<usize>) -> RandomFeeder {
    let mut grid = GridTopology::new();
    let mut consumers = Vec::new();
    for b in 0..buses {
        let bus = grid.add_internal(grid.root()).expect("root internal");
        for c in 0..per_bus[b % per_bus.len()].max(1) {
            consumers.push(
                grid.add_consumer(bus, format!("c{b}_{c}"))
                    .expect("bus internal"),
            );
        }
    }
    RandomFeeder { grid, consumers }
}

fn feeder_strategy() -> impl Strategy<Value = (RandomFeeder, Vec<(f64, f64)>)> {
    (1usize..5, proptest::collection::vec(1usize..5, 1..5)).prop_flat_map(|(buses, per_bus)| {
        let f = feeder(buses, per_bus);
        let n = f.consumers.len();
        (
            Just(f),
            proptest::collection::vec((0.01f64..3.0, 0.0f64..3.0), n..=n),
        )
    })
}

proptest! {
    /// Section V-B: if W is true for an internal node, it is true for all
    /// its trusted ancestors (mismatches only accumulate upward when all
    /// meters are honest and mismatch signs agree — here reports only
    /// under-report, so signs agree).
    #[test]
    fn w_propagates_to_ancestors((f, demands) in feeder_strategy()) {
        let mut snapshot = Snapshot::new();
        for (node, (actual, under)) in f.consumers.iter().zip(&demands) {
            // reported <= actual so every mismatch has the same sign.
            let reported = actual.min(*under);
            snapshot.set_consumer(&f.grid, *node, *actual, reported).expect("consumer");
        }
        let deployment = MeterDeployment::full(&f.grid);
        let checker = BalanceChecker::default();
        let events = checker.w_events(&f.grid, &deployment, &snapshot).expect("complete");
        for (&node, status) in &events {
            if status.is_failure() {
                for ancestor in f.grid.path_to_root(node).into_iter().skip(1) {
                    if let Some(anc_status) = events.get(&ancestor) {
                        prop_assert!(
                            anc_status.is_failure(),
                            "W true at {node} but false at ancestor {ancestor}"
                        );
                    }
                }
            }
        }
    }

    /// The portable-meter search never visits more nodes than exist, finds
    /// no suspects on an honest feeder, and on a single-thief feeder the
    /// thief is always among the suspects.
    #[test]
    fn portable_search_soundness((f, demands) in feeder_strategy(), thief_pick in 0usize..64) {
        let thief = f.consumers[thief_pick % f.consumers.len()];
        let mut honest = Snapshot::new();
        let mut attacked = Snapshot::new();
        for (node, (actual, _)) in f.consumers.iter().zip(&demands) {
            honest.set_consumer(&f.grid, *node, *actual, *actual).expect("consumer");
            let reported = if *node == thief { actual * 0.3 } else { *actual };
            attacked.set_consumer(&f.grid, *node, *actual, reported).expect("consumer");
        }
        let checker = BalanceChecker::default();
        let clean = PortableMeterSearch::run(&f.grid, &honest, &checker).expect("complete");
        prop_assert!(clean.suspects.is_empty());
        prop_assert_eq!(clean.checks_performed(), 1, "honest feeder needs one root check");

        let found = PortableMeterSearch::run(&f.grid, &attacked, &checker).expect("complete");
        prop_assert!(found.suspects.contains(&thief), "thief {thief} not among {:?}", found.suspects);
        prop_assert!(found.checks_performed() <= f.grid.internal_nodes().count());
    }

    /// Billing is linear: bill(a + b) = bill(a) + bill(b) under any scheme,
    /// and the attacker advantage of an honest report is exactly zero.
    #[test]
    fn billing_linearity(
        a in proptest::collection::vec(0.0f64..5.0, 48),
        b in proptest::collection::vec(0.0f64..5.0, 48),
        start in 0usize..96,
    ) {
        let combined: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        for scheme in [PricingScheme::flat_default(), PricingScheme::tou_ireland()] {
            let lhs = bill(&combined, &scheme, start).dollars();
            let rhs = bill(&a, &scheme, start).dollars() + bill(&b, &scheme, start).dollars();
            prop_assert!((lhs - rhs).abs() < 1e-9);
            prop_assert_eq!(attacker_advantage(&a, &a, &scheme, start).dollars(), 0.0);
        }
    }

    /// Stolen energy is antisymmetric and vanishes for honest reports.
    #[test]
    fn stolen_energy_antisymmetric(
        a in proptest::collection::vec(0.0f64..5.0, 48),
        b in proptest::collection::vec(0.0f64..5.0, 48),
    ) {
        let forward = energy_stolen_kwh(&a, &b);
        let backward = energy_stolen_kwh(&b, &a);
        prop_assert!((forward + backward).abs() < 1e-9);
        prop_assert_eq!(energy_stolen_kwh(&a, &a), 0.0);
    }

    /// Compromising the attacker's route silences every check strictly
    /// below the root, for any feeder and any single under-reporter.
    #[test]
    fn route_compromise_silences_local_checks(
        (f, demands) in feeder_strategy(),
        thief_pick in 0usize..64,
    ) {
        let thief = f.consumers[thief_pick % f.consumers.len()];
        let mut snapshot = Snapshot::new();
        for (node, (actual, _)) in f.consumers.iter().zip(&demands) {
            let reported = if *node == thief { actual * 0.5 } else { *actual };
            snapshot.set_consumer(&f.grid, *node, *actual, reported).expect("consumer");
        }
        let mut deployment = MeterDeployment::full(&f.grid);
        deployment.compromise_route(&f.grid, thief);
        let checker = BalanceChecker::default();
        let events = checker.w_events(&f.grid, &deployment, &snapshot).expect("complete");
        for (&node, status) in &events {
            if node != f.grid.root() && f.grid.path_to_root(thief).contains(&node) {
                prop_assert!(!status.is_failure(), "compromised meter at {node} still fails");
            }
        }
        // The trusted root still sees the theft.
        prop_assert!(events[&f.grid.root()].is_failure());
    }
}
