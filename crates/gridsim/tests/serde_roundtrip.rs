//! Serde round trips: utilities persist topologies, deployments, pricing
//! plans and snapshots; every one must survive JSON serialisation.

use fdeta_gridsim::balance::Snapshot;
use fdeta_gridsim::market::MarketModel;
use fdeta_gridsim::meter::MeterDeployment;
use fdeta_gridsim::pricing::PricingScheme;
use fdeta_gridsim::topology::GridTopology;

fn feeder() -> GridTopology {
    GridTopology::balanced(2, 2, 3)
}

#[test]
fn topology_roundtrip() {
    let grid = feeder();
    let json = serde_json::to_string(&grid).expect("serialise");
    let restored: GridTopology = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(grid, restored);
    // Structure survives: same consumer set and parent relations.
    assert_eq!(
        grid.consumers().collect::<Vec<_>>(),
        restored.consumers().collect::<Vec<_>>()
    );
    for node in grid.iter() {
        assert_eq!(grid.parent(node), restored.parent(node));
    }
}

#[test]
fn deployment_roundtrip_preserves_compromise() {
    let grid = feeder();
    let mut deployment = MeterDeployment::full(&grid);
    let victim = grid.consumers().nth(4).expect("consumers exist");
    deployment.compromise_route(&grid, victim);
    let json = serde_json::to_string(&deployment).expect("serialise");
    let restored: MeterDeployment = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(deployment, restored);
    for node in grid.internal_nodes() {
        assert_eq!(deployment.state(node), restored.state(node));
    }
}

#[test]
fn pricing_schemes_roundtrip() {
    let schemes = [
        PricingScheme::flat_default(),
        PricingScheme::tou_ireland(),
        MarketModel::default().simulate(96, 3),
    ];
    for scheme in schemes {
        let json = serde_json::to_string(&scheme).expect("serialise");
        let restored: PricingScheme = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(scheme, restored);
        for t in 0..96 {
            assert_eq!(scheme.price_at(t), restored.price_at(t));
        }
    }
}

#[test]
fn snapshot_roundtrip_preserves_flows() {
    let grid = feeder();
    let mut snapshot = Snapshot::new();
    for (i, c) in grid.consumers().enumerate() {
        snapshot
            .set_consumer(&grid, c, 1.0 + i as f64 * 0.1, 1.0)
            .expect("consumer");
    }
    for l in grid.losses() {
        snapshot.set_loss(&grid, l, 0.05).expect("loss");
    }
    let json = serde_json::to_string(&snapshot).expect("serialise");
    let restored: Snapshot = serde_json::from_str(&json).expect("deserialise");
    assert_eq!(snapshot, restored);
    let root = grid.root();
    assert_eq!(
        snapshot.actual_flow(&grid, root).expect("complete"),
        restored.actual_flow(&grid, root).expect("complete")
    );
}
