//! Property-based tests for the ARIMA substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fdeta_arima::diagnostics::{chi_squared_cdf, gamma_p, ljung_box};
use fdeta_arima::diff::{
    difference, integrate_forecast, seasonal_difference, seasonal_undifference_step,
    undifference_step,
};
use fdeta_arima::{ArimaModel, ArimaSpec};

fn series_strategy() -> impl Strategy<Value = Vec<f64>> {
    (0u64..5000, 200usize..400, 0.0f64..0.9).prop_map(|(seed, n, persistence)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = vec![1.0; n];
        for t in 1..n {
            let noise: f64 = rng.gen_range(-0.5..0.5);
            x[t] = 1.0 + persistence * (x[t - 1] - 1.0) + noise;
        }
        x
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differencing then integrating reproduces the original series.
    #[test]
    fn difference_undifference_roundtrip(series in series_strategy()) {
        let d = difference(&series, 1);
        let restored = undifference_step(&d, series[0]);
        for (a, b) in restored.iter().zip(&series[1..]) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Seasonal differencing round trip at arbitrary lags.
    #[test]
    fn seasonal_roundtrip(series in series_strategy(), lag in 1usize..50) {
        let d = seasonal_difference(&series, lag);
        if d.is_empty() {
            return Ok(());
        }
        let restored = seasonal_undifference_step(&d, &series[..lag]);
        for (a, b) in restored.iter().zip(&series[lag..]) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// `integrate_forecast` of the next true difference reproduces the next
    /// value, for any differencing order that the series supports.
    #[test]
    fn integrate_forecast_consistency(series in series_strategy(), d in 0usize..3) {
        let n = series.len();
        let history = &series[..n - 1];
        let diffs = difference(&series, d);
        if diffs.is_empty() {
            return Ok(());
        }
        let next_diff = *diffs.last().expect("nonempty");
        let integrated = integrate_forecast(next_diff, history, d);
        prop_assert!((integrated - series[n - 1]).abs() < 1e-9);
    }

    /// Fitted models produce symmetric intervals around the mean, and the
    /// interval contains the mean at every confidence level.
    #[test]
    fn forecast_interval_shape(series in series_strategy(), conf in 0.5f64..0.99) {
        let Ok(model) = ArimaModel::fit(&series, ArimaSpec::new(1, 0, 0).expect("order"))
        else {
            return Ok(()); // degenerate draw
        };
        let fc = model.forecaster(&series).expect("seeded");
        let f = fc.forecast(conf);
        prop_assert!(f.lower <= f.mean && f.mean <= f.upper);
        let spread_low = f.mean - f.lower;
        let spread_high = f.upper - f.mean;
        prop_assert!((spread_low - spread_high).abs() < 1e-9, "symmetric interval");
        prop_assert!(f.sigma >= 0.0);
    }

    /// Wider confidence ⇒ wider interval (monotonicity).
    #[test]
    fn interval_width_monotone_in_confidence(series in series_strategy()) {
        let Ok(model) = ArimaModel::fit(&series, ArimaSpec::new(1, 0, 0).expect("order"))
        else {
            return Ok(());
        };
        let fc = model.forecaster(&series).expect("seeded");
        let mut last_width = 0.0;
        for conf in [0.5, 0.8, 0.9, 0.95, 0.99] {
            let f = fc.forecast(conf);
            let width = f.upper - f.lower;
            prop_assert!(width >= last_width - 1e-12);
            last_width = width;
        }
    }

    /// ψ-weights of a guarded model are absolutely summable over a long
    /// horizon (stationarity guard at work), for pure AR fits.
    #[test]
    fn psi_weights_bounded(series in series_strategy()) {
        let Ok(model) = ArimaModel::fit(&series, ArimaSpec::new(2, 0, 0).expect("order"))
        else {
            return Ok(());
        };
        let psi = model.psi_weights(200);
        let total: f64 = psi.iter().map(|p| p.abs()).sum();
        prop_assert!(total.is_finite());
        prop_assert!(total < 1e6, "psi weights must not explode: {total}");
        // The tail decays for a stationary model.
        prop_assert!(psi[199].abs() <= psi.iter().map(|p| p.abs()).fold(0.0, f64::max) + 1e-12);
    }

    /// Statistical kernels stay within their ranges on arbitrary input.
    #[test]
    fn gamma_and_chi_squared_ranges(a in 0.1f64..20.0, x in 0.0f64..100.0, k in 1usize..50) {
        let p = gamma_p(a, x);
        prop_assert!((0.0..=1.0).contains(&p));
        let c = chi_squared_cdf(x, k);
        prop_assert!((0.0..=1.0).contains(&c));
    }

    /// Ljung–Box p-values are probabilities for any residual vector with
    /// variance.
    #[test]
    fn ljung_box_p_in_unit_interval(series in series_strategy(), lags in 1usize..30) {
        if series.len() <= lags {
            return Ok(());
        }
        let Ok(result) = ljung_box(&series, lags, 0) else {
            return Ok(()); // degenerate variance
        };
        prop_assert!((0.0..=1.0).contains(&result.p_value));
        prop_assert!(result.statistic >= 0.0);
        prop_assert!(result.degrees_of_freedom >= 1);
    }
}
