//! Property-based tests for the ARIMA substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fdeta_arima::diagnostics::{chi_squared_cdf, gamma_p, ljung_box};
use fdeta_arima::diff::{
    difference, integrate_forecast, seasonal_difference, seasonal_undifference_step,
    undifference_step,
};
use fdeta_arima::{ArimaModel, ArimaSpec};

fn series_strategy() -> impl Strategy<Value = Vec<f64>> {
    (0u64..5000, 200usize..400, 0.0f64..0.9).prop_map(|(seed, n, persistence)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = vec![1.0; n];
        for t in 1..n {
            let noise: f64 = rng.gen_range(-0.5..0.5);
            x[t] = 1.0 + persistence * (x[t - 1] - 1.0) + noise;
        }
        x
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differencing then integrating reproduces the original series.
    #[test]
    fn difference_undifference_roundtrip(series in series_strategy()) {
        let d = difference(&series, 1);
        let restored = undifference_step(&d, series[0]);
        for (a, b) in restored.iter().zip(&series[1..]) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Seasonal differencing round trip at arbitrary lags.
    #[test]
    fn seasonal_roundtrip(series in series_strategy(), lag in 1usize..50) {
        let d = seasonal_difference(&series, lag);
        if d.is_empty() {
            return Ok(());
        }
        let restored = seasonal_undifference_step(&d, &series[..lag]);
        for (a, b) in restored.iter().zip(&series[lag..]) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// `integrate_forecast` of the next true difference reproduces the next
    /// value, for any differencing order that the series supports.
    #[test]
    fn integrate_forecast_consistency(series in series_strategy(), d in 0usize..3) {
        let n = series.len();
        let history = &series[..n - 1];
        let diffs = difference(&series, d);
        if diffs.is_empty() {
            return Ok(());
        }
        let next_diff = *diffs.last().expect("nonempty");
        let integrated = integrate_forecast(next_diff, history, d);
        prop_assert!((integrated - series[n - 1]).abs() < 1e-9);
    }

    /// Fitted models produce symmetric intervals around the mean, and the
    /// interval contains the mean at every confidence level.
    #[test]
    fn forecast_interval_shape(series in series_strategy(), conf in 0.5f64..0.99) {
        let Ok(model) = ArimaModel::fit(&series, ArimaSpec::new(1, 0, 0).expect("order"))
        else {
            return Ok(()); // degenerate draw
        };
        let fc = model.forecaster(&series).expect("seeded");
        let f = fc.forecast(conf);
        prop_assert!(f.lower <= f.mean && f.mean <= f.upper);
        let spread_low = f.mean - f.lower;
        let spread_high = f.upper - f.mean;
        prop_assert!((spread_low - spread_high).abs() < 1e-9, "symmetric interval");
        prop_assert!(f.sigma >= 0.0);
    }

    /// Wider confidence ⇒ wider interval (monotonicity).
    #[test]
    fn interval_width_monotone_in_confidence(series in series_strategy()) {
        let Ok(model) = ArimaModel::fit(&series, ArimaSpec::new(1, 0, 0).expect("order"))
        else {
            return Ok(());
        };
        let fc = model.forecaster(&series).expect("seeded");
        let mut last_width = 0.0;
        for conf in [0.5, 0.8, 0.9, 0.95, 0.99] {
            let f = fc.forecast(conf);
            let width = f.upper - f.lower;
            prop_assert!(width >= last_width - 1e-12);
            last_width = width;
        }
    }

    /// ψ-weights of a guarded model are absolutely summable over a long
    /// horizon (stationarity guard at work), for pure AR fits.
    #[test]
    fn psi_weights_bounded(series in series_strategy()) {
        let Ok(model) = ArimaModel::fit(&series, ArimaSpec::new(2, 0, 0).expect("order"))
        else {
            return Ok(());
        };
        let psi = model.psi_weights(200);
        let total: f64 = psi.iter().map(|p| p.abs()).sum();
        prop_assert!(total.is_finite());
        prop_assert!(total < 1e6, "psi weights must not explode: {total}");
        // The tail decays for a stationary model.
        prop_assert!(psi[199].abs() <= psi.iter().map(|p| p.abs()).fold(0.0, f64::max) + 1e-12);
    }

    /// Statistical kernels stay within their ranges on arbitrary input.
    #[test]
    fn gamma_and_chi_squared_ranges(a in 0.1f64..20.0, x in 0.0f64..100.0, k in 1usize..50) {
        let p = gamma_p(a, x);
        prop_assert!((0.0..=1.0).contains(&p));
        let c = chi_squared_cdf(x, k);
        prop_assert!((0.0..=1.0).contains(&c));
    }

    /// Ljung–Box p-values are probabilities for any residual vector with
    /// variance.
    #[test]
    fn ljung_box_p_in_unit_interval(series in series_strategy(), lags in 1usize..30) {
        if series.len() <= lags {
            return Ok(());
        }
        let Ok(result) = ljung_box(&series, lags, 0) else {
            return Ok(()); // degenerate variance
        };
        prop_assert!((0.0..=1.0).contains(&result.p_value));
        prop_assert!(result.statistic >= 0.0);
        prop_assert!(result.degrees_of_freedom >= 1);
    }
}

/// Independent reimplementation of the pre-scratch (allocating) fitting
/// path, kept verbatim from the original sources: materialised design
/// matrices, per-call vectors, and a refit-free model finish. The
/// property tests below pin the scratch-based production path to this
/// arithmetic bit for bit.
mod legacy {
    use fdeta_arima::acf::{autocovariance, levinson_durbin};
    use fdeta_arima::diff::difference;
    use fdeta_arima::fit::FittedParams;
    use fdeta_arima::{ArimaError, ArimaModel, ArimaSpec};

    fn solve(mut a: Vec<f64>, mut b: Vec<f64>) -> Result<Vec<f64>, ArimaError> {
        let n = b.len();
        assert_eq!(a.len(), n * n, "matrix shape mismatch");
        for col in 0..n {
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for row in (col + 1)..n {
                let v = a[row * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < 1e-12 {
                return Err(ArimaError::SingularSystem);
            }
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
                b.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for row in (col + 1)..n {
                let factor = a[row * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for k in col..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
                b[row] -= factor * b[col];
            }
        }
        let mut x = vec![0.0; n];
        for row in (0..n).rev() {
            let mut sum = b[row];
            for k in (row + 1)..n {
                sum -= a[row * n + k] * x[k];
            }
            x[row] = sum / a[row * n + row];
        }
        Ok(x)
    }

    fn least_squares(x: &[f64], y: &[f64], cols: usize) -> Result<Vec<f64>, ArimaError> {
        let rows = y.len();
        assert_eq!(x.len(), rows * cols, "design matrix shape mismatch");
        if rows < cols {
            return Err(ArimaError::SeriesTooShort {
                required: cols,
                available: rows,
            });
        }
        let mut xtx = vec![0.0; cols * cols];
        let mut xty = vec![0.0; cols];
        for r in 0..rows {
            let row = &x[r * cols..(r + 1) * cols];
            for i in 0..cols {
                xty[i] += row[i] * y[r];
                for j in i..cols {
                    xtx[i * cols + j] += row[i] * row[j];
                }
            }
        }
        for i in 0..cols {
            for j in 0..i {
                xtx[i * cols + j] = xtx[j * cols + i];
            }
        }
        let scale = (0..cols).map(|i| xtx[i * cols + i]).fold(0.0f64, f64::max);
        let ridge = scale.max(1.0) * 1e-10;
        for i in 0..cols {
            xtx[i * cols + i] += ridge;
        }
        solve(xtx, xty)
    }

    fn check_finite(series: &[f64]) -> Result<(), ArimaError> {
        for (i, &v) in series.iter().enumerate() {
            if !v.is_finite() {
                return Err(ArimaError::NonFiniteValue { index: i });
            }
        }
        Ok(())
    }

    fn check_nondegenerate(series: &[f64]) -> Result<(), ArimaError> {
        let n = series.len() as f64;
        let mean = series.iter().sum::<f64>() / n;
        let var = series.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let scale = series.iter().map(|v| v.abs()).fold(1.0f64, f64::max);
        if var <= scale * scale * 1e-20 {
            return Err(ArimaError::SingularSystem);
        }
        Ok(())
    }

    fn conditional_sigma2(series: &[f64], intercept: f64, phi: &[f64], theta: &[f64]) -> f64 {
        let start = phi.len().max(theta.len());
        if series.len() <= start {
            return 0.0;
        }
        let mut errs = vec![0.0; series.len()];
        let mut sum_sq = 0.0;
        for t in start..series.len() {
            let mut pred = intercept;
            for (lag, coeff) in phi.iter().enumerate() {
                pred += coeff * series[t - 1 - lag];
            }
            for (lag, coeff) in theta.iter().enumerate() {
                pred += coeff * errs[t - 1 - lag];
            }
            let resid = series[t] - pred;
            errs[t] = resid;
            sum_sq += resid * resid;
        }
        sum_sq / (series.len() - start) as f64
    }

    pub fn fit_ar(series: &[f64], p: usize) -> Result<FittedParams, ArimaError> {
        check_finite(series)?;
        let n = series.len();
        if n < p + 2 {
            return Err(ArimaError::SeriesTooShort {
                required: p + 2,
                available: n,
            });
        }
        if p > 0 {
            check_nondegenerate(series)?;
        }
        if p == 0 {
            let mean = series.iter().sum::<f64>() / n as f64;
            let residuals: Vec<f64> = series.iter().map(|v| v - mean).collect();
            let sigma2 = residuals.iter().map(|r| r * r).sum::<f64>() / n as f64;
            return Ok(FittedParams {
                intercept: mean,
                phi: vec![],
                theta: vec![],
                sigma2,
                residuals,
            });
        }
        let rows = n - p;
        let cols = p + 1;
        let mut design = Vec::with_capacity(rows * cols);
        let mut target = Vec::with_capacity(rows);
        for t in p..n {
            design.push(1.0);
            for lag in 1..=p {
                design.push(series[t - lag]);
            }
            target.push(series[t]);
        }
        let beta = least_squares(&design, &target, cols)?;
        let intercept = beta[0];
        let phi = beta[1..].to_vec();
        let mut residuals = Vec::with_capacity(rows);
        for t in p..n {
            let mut pred = intercept;
            for (lag, coeff) in phi.iter().enumerate() {
                pred += coeff * series[t - 1 - lag];
            }
            residuals.push(series[t] - pred);
        }
        let sigma2 = residuals.iter().map(|r| r * r).sum::<f64>() / rows as f64;
        Ok(FittedParams {
            intercept,
            phi,
            theta: vec![],
            sigma2,
            residuals,
        })
    }

    pub fn hannan_rissanen(series: &[f64], p: usize, q: usize) -> Result<FittedParams, ArimaError> {
        if q == 0 {
            return fit_ar(series, p);
        }
        check_finite(series)?;
        check_nondegenerate(series)?;
        let n = series.len();
        let min_len = (p + q + 2).max(20);
        if n < min_len {
            return Err(ArimaError::SeriesTooShort {
                required: min_len,
                available: n,
            });
        }
        let mean = series.iter().sum::<f64>() / n as f64;
        let centered: Vec<f64> = series.iter().map(|v| v - mean).collect();
        let long_order = ((n as f64).ln().ceil() as usize * 2)
            .max(p + q)
            .min(n / 4)
            .max(1);
        let gamma = autocovariance(&centered, long_order)?;
        let (long_phi, _) = levinson_durbin(&gamma, long_order)?;
        let mut innovations = vec![0.0; n];
        for t in long_order..n {
            let mut pred = 0.0;
            for (lag, coeff) in long_phi.iter().enumerate() {
                pred += coeff * centered[t - 1 - lag];
            }
            innovations[t] = centered[t] - pred;
        }
        let start = long_order.max(p).max(q);
        let rows = n - start;
        let cols = 1 + p + q;
        if rows < cols + 1 {
            return Err(ArimaError::SeriesTooShort {
                required: start + cols + 1,
                available: n,
            });
        }
        let mut design = Vec::with_capacity(rows * cols);
        let mut target = Vec::with_capacity(rows);
        for t in start..n {
            design.push(1.0);
            for lag in 1..=p {
                design.push(series[t - lag]);
            }
            for lag in 1..=q {
                design.push(innovations[t - lag]);
            }
            target.push(series[t]);
        }
        let beta = least_squares(&design, &target, cols)?;
        let intercept = beta[0];
        let phi = beta[1..1 + p].to_vec();
        let theta = beta[1 + p..].to_vec();
        let mut residuals = Vec::with_capacity(rows);
        let mut errs = innovations.clone();
        for t in start..n {
            let mut pred = intercept;
            for (lag, coeff) in phi.iter().enumerate() {
                pred += coeff * series[t - 1 - lag];
            }
            for (lag, coeff) in theta.iter().enumerate() {
                pred += coeff * errs[t - 1 - lag];
            }
            let resid = series[t] - pred;
            errs[t] = resid;
            residuals.push(resid);
        }
        let sigma2 = residuals.iter().map(|r| r * r).sum::<f64>() / rows as f64;
        Ok(FittedParams {
            intercept,
            phi,
            theta,
            sigma2,
            residuals,
        })
    }

    pub fn model_fit(series: &[f64], spec: ArimaSpec) -> Result<ArimaModel, ArimaError> {
        let w = difference(series, spec.d());
        let params = hannan_rissanen(&w, spec.p(), spec.q())?;
        let mut theta = params.theta;
        let theta_norm: f64 = theta.iter().map(|t| t.abs()).sum();
        if theta_norm >= 0.95 {
            let shrink = 0.95 / theta_norm;
            for t in &mut theta {
                *t *= shrink;
            }
        }
        let mut phi = params.phi;
        let mut intercept = params.intercept;
        let phi_norm: f64 = phi.iter().map(|p| p.abs()).sum();
        if phi_norm >= 0.98 {
            let shrink = 0.98 / phi_norm;
            let old_sum: f64 = phi.iter().sum();
            let mu = if (1.0 - old_sum).abs() > 1e-9 {
                intercept / (1.0 - old_sum)
            } else {
                intercept
            };
            for p in &mut phi {
                *p *= shrink;
            }
            let new_sum: f64 = phi.iter().sum();
            intercept = mu * (1.0 - new_sum);
        }
        let sigma2 = conditional_sigma2(&w, intercept, &phi, &theta);
        if !sigma2.is_finite() {
            return Err(ArimaError::SingularSystem);
        }
        ArimaModel::from_parts(spec, intercept, phi, theta, sigma2.max(1e-12))
    }
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The scratch-based `hannan_rissanen` / `fit_ar` must reproduce the
    /// legacy allocating path bit for bit across random series and
    /// `(p, q)` orders — including when one scratch is reused for the
    /// whole grid.
    #[test]
    fn scratch_fit_is_bit_identical_to_legacy(
        series in series_strategy(),
        max_p in 0usize..4,
        max_q in 0usize..3,
    ) {
        let mut scratch = fdeta_arima::FitScratch::new();
        for p in 0..=max_p {
            for q in 0..=max_q {
                let legacy = legacy::hannan_rissanen(&series, p, q);
                let current =
                    fdeta_arima::fit::hannan_rissanen_with(&mut scratch, &series, p, q);
                match (legacy, current) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(a.intercept.to_bits(), b.intercept.to_bits());
                        prop_assert_eq!(a.sigma2.to_bits(), b.sigma2.to_bits());
                        prop_assert_eq!(bits(&a.phi), bits(&b.phi));
                        prop_assert_eq!(bits(&a.theta), bits(&b.theta));
                        prop_assert_eq!(bits(&a.residuals), bits(&b.residuals));
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b),
                    (a, b) => prop_assert!(false, "paths diverged: {a:?} vs {b:?}"),
                }
            }
        }
    }

    /// `ArimaModel::fit_with` over a reused scratch must agree bit for bit
    /// with the legacy model fit (allocating estimation + guards) across
    /// random `(p, d, q)` specs.
    #[test]
    fn scratch_model_fit_is_bit_identical_to_legacy(
        series in series_strategy(),
        p in 0usize..4,
        d in 0usize..2,
        q in 0usize..3,
    ) {
        let Ok(spec) = ArimaSpec::new(p, d, q) else {
            return Ok(()); // (0, 0, 0) draw
        };
        let mut scratch = fdeta_arima::FitScratch::new();
        let legacy = legacy::model_fit(&series, spec);
        let current = ArimaModel::fit_with(&mut scratch, &series, spec);
        match (legacy, current) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.intercept().to_bits(), b.intercept().to_bits());
                prop_assert_eq!(a.sigma2().to_bits(), b.sigma2().to_bits());
                prop_assert_eq!(bits(a.phi()), bits(b.phi()));
                prop_assert_eq!(bits(a.theta()), bits(b.theta()));
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "paths diverged: {a:?} vs {b:?}"),
        }
    }

    /// `select_order` fits each candidate once and finishes the winner
    /// without refitting; the result must still be exactly what a direct
    /// fit of the winning spec produces, and reusing a scratch must not
    /// change the selection.
    #[test]
    fn select_order_single_pass_matches_direct_fit(
        series in series_strategy(),
        d in 0usize..2,
    ) {
        let Ok(selected) = fdeta_arima::select_order(&series, d, 2, 1) else {
            return Ok(()); // degenerate draw: no candidate fits
        };
        let direct = ArimaModel::fit(&series, selected.spec()).expect("winner refits");
        prop_assert_eq!(&selected, &direct);
        let mut scratch = fdeta_arima::FitScratch::new();
        let reused = fdeta_arima::select_order_with(&mut scratch, &series, d, 2, 1)
            .expect("same grid fits");
        prop_assert_eq!(&selected, &reused);
    }
}
